"""repro — reproduction of "Testing the Dependability and Performance of
Group Communication Based Database Replication Protocols" (Sousa,
Pereira, Soares, Correia Jr., Rocha, Oliveira, Moura — DSN 2005).

The package implements the paper's testing tool end to end: a
centralized simulation runtime executing **real** certification and
group-communication protocol code inside a simulated environment —
network, database engine and TPC-C traffic generator — with global
observation, control, and fault injection.

Quick start::

    from repro import Scenario, ScenarioConfig

    result = Scenario(ScenarioConfig(sites=3, clients=300,
                                     transactions=2000)).run()
    print(result.throughput_tpm(), result.abort_rate())
    result.check_safety()   # all replicas committed the same sequence

See ARCHITECTURE.md for the layer map, the per-protocol message-flow
walkthroughs and the crash → partition → heal → state transfer → live
recovery lifecycle, and README.md for the fault-action taxonomy and
the consolidated ``REPRO_*`` knob table.
"""

from .core import (
    CommitLog,
    CpuCostModel,
    FaultPlan,
    MetricsCollector,
    Scenario,
    ScenarioConfig,
    ScenarioResult,
    SimulationError,
    Simulator,
    bursty_loss,
    check_consistency,
    clock_drift,
    crash_recover,
    ecdf,
    partition_heal,
    qq_points,
    random_loss,
    scheduling_latency,
)
from .analysis import (
    AnalysisError,
    ResultSet,
    available_metrics,
    metric_value,
)
from .campaigns import (
    CampaignSpec,
    available_campaigns,
    get_campaign,
    register_campaign,
)
from .gcs import GcsConfig, RecoveryEvent
from .protocols import (
    ReplicationProtocol,
    available_protocols,
    register_protocol,
)
from .runner import CampaignError, CampaignResult, run_campaign
from .tpcc import ProfileSet, TpccWorkload, default_profiles

__version__ = "1.0.0"

__all__ = [
    "CommitLog",
    "CpuCostModel",
    "FaultPlan",
    "MetricsCollector",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "SimulationError",
    "Simulator",
    "bursty_loss",
    "check_consistency",
    "clock_drift",
    "crash_recover",
    "ecdf",
    "partition_heal",
    "qq_points",
    "random_loss",
    "scheduling_latency",
    "AnalysisError",
    "ResultSet",
    "available_metrics",
    "metric_value",
    "CampaignSpec",
    "available_campaigns",
    "get_campaign",
    "register_campaign",
    "GcsConfig",
    "RecoveryEvent",
    "ReplicationProtocol",
    "available_protocols",
    "register_protocol",
    "CampaignError",
    "CampaignResult",
    "run_campaign",
    "ProfileSet",
    "TpccWorkload",
    "default_profiles",
    "__version__",
]
