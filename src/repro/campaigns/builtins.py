"""The built-in campaigns, as declarative specs.

These reproduce — cell for cell, label for label — the grids the runner
CLI has always shipped (``smoke``, ``fig5``, ``fig7``, ``recovery``;
previously hard-coded builder functions), plus ``safety``, the §5.3
fault matrix the fault-injection example runs.  A legacy-parity unit
test (``tests/unit/test_campaign_spec.py``) pins each spec's expansion
against the removed builders' output, so historical artifact
directories keep resuming.

Every spec leaves ``transactions`` at ``None`` (the ``REPRO_SCALE``-\
scaled paper count) and sweeps only the default protocol; the CLI's
``--protocol`` / ``--set`` and the composition helpers widen them.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.scenarios import CLIENT_LEVELS, SYSTEM_CONFIGS, safety_fault_plans
from .registry import register_campaign
from .spec import DEFAULT_PROTOCOL, CampaignSpec


def _smoke_spec() -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        description=(
            "tiny CI grid: centralized and replicated cells plus one "
            "crash->recover rejoin cell per protocol"
        ),
        axes=[("transactions", (None,)), ("seed", (42,))],
        children=(
            CampaignSpec(
                name="smoke-centralized",
                kind="performance",
                label="1x1cpu c{clients}",
                template={"sites": 1, "cpus_per_site": 1},
                axes=[("clients", (40, 80))],
            ),
            CampaignSpec(
                name="smoke-replicated",
                axes=[("protocol", (DEFAULT_PROTOCOL,))],
                children=(
                    CampaignSpec(
                        name="smoke-replicated-cells",
                        kind="performance",
                        label="{protocol_prefix}3x1cpu c{clients}",
                        template={"sites": 3, "cpus_per_site": 1},
                        axes=[("clients", (40, 80))],
                    ),
                    CampaignSpec(
                        name="smoke-recovery",
                        kind="fault",
                        label="{protocol_prefix}recovery c{clients}",
                        template={"fault_at": 5.0, "repair_after": 3.0},
                        axes=[
                            ("fault", ("crash-recover",)),
                            ("clients", (40,)),
                        ],
                    ),
                ),
            ),
        ),
    )


def _fig5_spec() -> CampaignSpec:
    centralized = tuple(sc for sc in SYSTEM_CONFIGS if sc[1] == 1)
    replicated = tuple(sc for sc in SYSTEM_CONFIGS if sc[1] > 1)
    return CampaignSpec(
        name="fig5",
        description=(
            "the Figure 5/6 performance sweep: centralized 1/3/6-CPU "
            "baselines and replicated 3/6-site systems, 100-2000 clients"
        ),
        axes=[("transactions", (None,)), ("seed", (42,))],
        children=(
            CampaignSpec(
                name="fig5-centralized",
                kind="performance",
                label="{system} c{clients}",
                axes=[("system", centralized), ("clients", CLIENT_LEVELS)],
            ),
            CampaignSpec(
                name="fig5-replicated",
                kind="performance",
                label="{protocol_prefix}{system} c{clients}",
                axes=[
                    ("system", replicated),
                    ("protocol", (DEFAULT_PROTOCOL,)),
                    ("clients", CLIENT_LEVELS),
                ],
            ),
        ),
    )


def _fig7_spec() -> CampaignSpec:
    return CampaignSpec(
        name="fig7",
        description=(
            "the Figure 7 / Table 2 fault grid: no faults vs 5% random "
            "vs 5% bursty loss under the prototype GCS configuration"
        ),
        kind="fault",
        label="{protocol_prefix}{fault}",
        axes=[
            ("transactions", (None,)),
            ("seed", (42,)),
            ("protocol", (DEFAULT_PROTOCOL,)),
            ("fault", ("none", "random", "bursty")),
        ],
    )


def _recovery_spec() -> CampaignSpec:
    # Early fault times + a moderate population keep the leave/rejoin
    # cycle inside the run even at small transaction counts.
    return CampaignSpec(
        name="recovery",
        description=(
            "recovery fault-loads: a member leaves (crash or partition) "
            "and rejoins via view-synchronous state transfer mid-campaign"
        ),
        kind="fault",
        label="{protocol_prefix}{fault}",
        template={"clients": 100, "fault_at": 5.0, "repair_after": 5.0},
        axes=[
            ("transactions", (None,)),
            ("seed", (42,)),
            ("protocol", (DEFAULT_PROTOCOL,)),
            ("fault", ("crash-recover", "partition-heal")),
        ],
    )


def _scale_out_spec() -> CampaignSpec:
    # 3000 clients drive the 6-site system past its full-replication
    # saturation point (the one total-order stream is the bottleneck),
    # which is where splitting into per-fragment groups pays off; 300
    # warehouses divide evenly by every swept fragment count, so both
    # placements balance exactly.  fragments=1 is the full-replication
    # baseline the scale-out curve is read against; no faults, so
    # 2-site groups (fragments=3) are fine.
    return CampaignSpec(
        name="scale-out",
        description=(
            "partial-replication scale-out: the 6-site system driven "
            "past full-replication saturation under the partial "
            "protocol with 1/2/3 per-fragment groups and both data "
            "placements, against the fully replicated baseline"
        ),
        kind="performance",
        label="{protocol_prefix}f{fragments} {placement} c{clients}",
        template={"sites": 6, "cpus_per_site": 1, "clients": 3000},
        axes=[
            ("transactions", (None,)),
            ("seed", (42,)),
            ("protocol", ("partial",)),
            ("fragments", (1, 2, 3)),
            ("placement", ("range", "round-robin")),
        ],
    )


def _safety_spec() -> CampaignSpec:
    return CampaignSpec(
        name="safety",
        description=(
            "the full §5.3 safety matrix: five paper fault types plus "
            "the recovery fault-loads, member and sequencer variants"
        ),
        kind="safety",
        label="{protocol_prefix}{fault}",
        template={
            "sites": 3,
            "clients": 90,
            "seed": 123,
            "plan_seed": 7,
            "max_sim_time": 600.0,
        },
        axes=[
            ("transactions", (None,)),
            ("protocol", (DEFAULT_PROTOCOL,)),
            ("fault", tuple(sorted(safety_fault_plans()))),
        ],
    )


def _safety_monitored_spec() -> CampaignSpec:
    # The safety matrix, re-run with every runtime invariant monitor
    # wired into the event path (a ``monitors`` axis on top of the
    # ``safety`` spec, which stays byte-identical for legacy parity).
    # Clean protocol code must come back with zero violations on every
    # cell; CI asserts exactly that over the artifact store.
    return replace(
        _safety_spec().with_axis("monitors", ("all",)),
        name="safety-monitored",
        description=(
            "the §5.3 safety matrix with all runtime invariant monitors "
            "enabled: online 1SR, view synchrony, primary component and "
            "GCS ordering checks over every fault-load"
        ),
    )


for _build in (
    _smoke_spec,
    _fig5_spec,
    _fig7_spec,
    _recovery_spec,
    _scale_out_spec,
    _safety_spec,
    _safety_monitored_spec,
):
    register_campaign(_build())
