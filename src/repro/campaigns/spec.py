"""Declarative campaign specifications: composable sweep axes.

A :class:`CampaignSpec` is a first-class, serializable description of
an experiment grid — the artifact the paper's methodology crosses
workloads, fault-loads and protocols with.  A spec is a small tree:

* a **leaf** carries a ``kind`` (which config builder makes its cells),
  a ``label`` template, fixed ``template`` bindings and swept ``axes``;
  expansion crosses the axes (outermost axis first, in declaration
  order) and yields one labelled
  :class:`~repro.core.experiment.ScenarioConfig` per combination;
* a **group** carries axes and ordered ``children``; its axes are
  crossed *over* the children, so several differently-shaped sub-grids
  can share a sweep (e.g. the smoke campaign's per-protocol block of
  replicated cells plus one recovery cell).

Expansion is deterministic: the same spec produces the same labels and
configs in the same order in any process.  Specs round-trip through
``to_dict``/``from_dict`` JSON, so a campaign can be exported, diffed,
edited and re-run from a file; :meth:`CampaignSpec.spec_hash` gives the
canonical content hash recorded in campaign artifacts for provenance.

**Axes.**  An axis binds one parameter name to a tuple of values.  Any
name a cell kind understands can be swept: ``protocol``, ``sites``,
``cpus_per_site``, ``clients``, ``transactions``, ``seed``, ``fault``
(loss model / fault-load), ``rate``, ``system`` (a Figure-5-style
``[label, sites, cpus_per_site]`` triple) — plus any
:class:`ScenarioConfig` field, which passes through as an override
(e.g. ``sample_interval``).  A ``transactions`` value of ``None``
resolves to the ``REPRO_SCALE``-scaled paper count at expansion time.

**Cell kinds.**

* ``"performance"`` — :func:`repro.core.scenarios.performance_config`;
  the per-cell seed is ``seed + clients`` (decorrelating load points,
  as every legacy grid did) unless ``seed_per_clients`` is bound false;
* ``"fault"`` — :func:`repro.core.scenarios.fault_config`; ``fault``
  names the loss model / fault-load (``none`` / ``random`` / ``bursty``
  / ``crash-recover`` / ``partition-heal``);
* ``"safety"`` — one cell per entry of
  :func:`repro.core.scenarios.safety_fault_plans`; ``fault`` names the
  plan, ``plan_seed`` seeds the plan construction.

**Labels.**  A leaf's ``label`` template formats axis/template bindings
(``"{system} c{clients}"``).  The ``{protocol_prefix}`` placeholder
implements the stable protocol-prefix rule: it is empty when the
effective protocol sweep is exactly the default protocol (so historical
artifact directories recorded before protocols became an axis still
resume), and ``"<protocol> "`` otherwise.  Any swept axis with more
than one value that the template does not mention is appended as
``" name=value"`` automatically, so widening a spec with
:meth:`with_axis` can never silently collide labels — and expansion
rejects duplicates outright.

**Composition.**  :meth:`merge` concatenates grids, :meth:`restrict`
slices axis values down, :meth:`with_axis` sweeps a parameter wherever
the grid binds it (replacing axes in place, superseding template
bindings; a parameter bound nowhere becomes a new root-level sweep) —
deriving grids from grids without touching the registered originals.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.experiment import ScenarioConfig
from ..core.scenarios import (
    fault_config,
    performance_config,
    safety_fault_plans,
    scaled_transactions,
)

__all__ = [
    "Axis",
    "CampaignSpec",
    "CampaignSpecError",
    "DEFAULT_PROTOCOL",
    "SPEC_FORMAT",
    "parse_axis_override",
]

#: Serialization format tag; bump when the spec layout changes.
SPEC_FORMAT = "repro.campaign_spec/1"

#: The protocol whose lone sweeps keep protocol-free labels.
DEFAULT_PROTOCOL = "dbsm"


class CampaignSpecError(ValueError):
    """A spec cannot be built, parsed, composed or expanded."""


def _freeze(value):
    """Lists → tuples, recursively (hashable, comparable storage)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Tuples → lists, recursively (JSON-ready)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class Axis:
    """One swept parameter: a name bound to an ordered value tuple."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignSpecError("axis names must be non-empty strings")
        values = tuple(_freeze(v) for v in self.values)
        if not values:
            raise CampaignSpecError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", values)


@dataclass
class CampaignSpec:
    """A declarative, composable, serializable experiment grid."""

    name: str
    description: str = ""
    #: Leaf cell builder: "performance" | "fault" | "safety" (None: group).
    kind: Optional[str] = None
    #: Leaf label template, e.g. ``"{protocol_prefix}{system} c{clients}"``.
    label: Optional[str] = None
    #: Swept parameters, outermost first.  Accepts ``Axis`` instances or
    #: ``(name, values)`` pairs; normalized to a tuple of ``Axis``.
    axes: Tuple[Axis, ...] = ()
    #: Fixed parameter bindings (JSON-scalar values).
    template: Dict[str, object] = field(default_factory=dict)
    #: Ordered sub-grids; a node with children crosses its axes over them.
    children: Tuple["CampaignSpec", ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignSpecError("campaign names must be non-empty strings")
        self.axes = tuple(
            axis if isinstance(axis, Axis) else Axis(axis[0], tuple(axis[1]))
            for axis in self.axes
        )
        seen = set()
        for axis in self.axes:
            if axis.name in seen:
                raise CampaignSpecError(
                    f"campaign {self.name!r} declares axis {axis.name!r} twice"
                )
            seen.add(axis.name)
        self.template = {
            str(k): _freeze(v) for k, v in dict(self.template).items()
        }
        self.children = tuple(self.children)
        if self.children:
            if self.kind is not None or self.label is not None:
                raise CampaignSpecError(
                    f"campaign {self.name!r} has children and therefore "
                    "cannot carry a cell kind or label itself"
                )
        else:
            if self.kind not in _CELL_KINDS:
                raise CampaignSpecError(
                    f"campaign {self.name!r}: unknown cell kind {self.kind!r} "
                    f"(expected one of {sorted(_CELL_KINDS)})"
                )
            if not self.label or not isinstance(self.label, str):
                raise CampaignSpecError(
                    f"campaign {self.name!r} needs a label template"
                )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(self) -> List[Tuple[str, ScenarioConfig]]:
        """The grid: ``[(label, ScenarioConfig)]``, deterministic order."""
        return [(label, config) for label, config, _ in self.expand_cells()]

    def expand_cells(self) -> List[Tuple[str, ScenarioConfig, Dict[str, object]]]:
        """The grid with per-cell axis provenance.

        Like :meth:`expand`, but each cell additionally carries the
        display-ready parameter bindings that produced it — every swept
        axis value plus the template bindings, with ``system`` triples
        reduced to their display label and ``None`` values (the
        "resolve at expansion time" markers) omitted.  This is how the
        analysis layer (:mod:`repro.analysis`) recovers campaign-axis
        tags for cells loaded back from an artifact store."""
        cells = list(self._expand({}, {}))
        seen: set = set()
        duplicates = []
        for label, _, _ in cells:
            if label in seen:
                duplicates.append(label)
            seen.add(label)
        if duplicates:
            raise CampaignSpecError(
                f"campaign {self.name!r} expands to duplicate labels: "
                f"{sorted(set(duplicates))} — mention the distinguishing "
                "axis in the label template"
            )
        return cells

    def labels(self) -> List[str]:
        return [label for label, _ in self.expand()]

    def _expand(
        self,
        bindings: Dict[str, object],
        axis_values: Dict[str, Tuple[object, ...]],
    ) -> Iterator[Tuple[str, ScenarioConfig, Dict[str, object]]]:
        bindings = {**bindings, **self.template}

        def sweep(depth, bindings, axis_values):
            if depth == len(self.axes):
                if self.children:
                    for child in self.children:
                        yield from child._expand(bindings, axis_values)
                else:
                    yield self._build_cell(bindings, axis_values)
                return
            axis = self.axes[depth]
            narrowed = {**axis_values, axis.name: axis.values}
            for value in axis.values:
                yield from sweep(
                    depth + 1, {**bindings, axis.name: value}, narrowed
                )

        yield from sweep(0, bindings, axis_values)

    # -- cell construction ---------------------------------------------
    def _build_cell(
        self,
        bindings: Dict[str, object],
        axis_values: Dict[str, Tuple[object, ...]],
    ) -> Tuple[str, ScenarioConfig, Dict[str, object]]:
        label = self._format_label(bindings, axis_values)
        axes = {
            name: _display_value(name, value)
            for name, value in bindings.items()
            if value is not None and name != "seed_per_clients"
        }
        params = dict(bindings)
        if "system" in params:
            system = params.pop("system")
            try:
                _, params["sites"], params["cpus_per_site"] = system
            except (TypeError, ValueError):
                raise CampaignSpecError(
                    f"campaign {self.name!r}: a 'system' value must be a "
                    f"[label, sites, cpus_per_site] triple, got {system!r}"
                ) from None
        try:
            config = _CELL_KINDS[self.kind](params)
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignSpecError(
                f"campaign {self.name!r}, cell {label!r}: {exc}"
            ) from exc
        return label, config, axes

    def _format_label(
        self,
        bindings: Dict[str, object],
        axis_values: Dict[str, Tuple[object, ...]],
    ) -> str:
        display = {
            name: _display_value(name, value)
            for name, value in bindings.items()
        }
        display["protocol_prefix"] = _protocol_prefix(bindings, axis_values)
        try:
            label = self.label.format(**display)
        except (KeyError, IndexError) as exc:
            raise CampaignSpecError(
                f"campaign {self.name!r}: label template {self.label!r} "
                f"references an unbound parameter ({exc})"
            ) from None
        # Swept-but-unmentioned axes are appended so no sweep can
        # silently fold distinct cells onto one label.
        for name, values in axis_values.items():
            if len(values) > 1 and not self._label_covers(name):
                label += f" {name}={_display_value(name, bindings[name])}"
        return label

    def _label_covers(self, name: str) -> bool:
        assert self.label is not None
        if "{" + name + "}" in self.label:
            return True
        return name == "protocol" and "{protocol_prefix}" in self.label

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def merge(
        self, *others: "CampaignSpec", name: Optional[str] = None
    ) -> "CampaignSpec":
        """Concatenate grids: a group whose children run in order."""
        if not others:
            raise CampaignSpecError("merge needs at least one other spec")
        children = (self,) + others
        return CampaignSpec(
            name=name or "+".join(spec.name for spec in children),
            description=f"merge of {', '.join(s.name for s in children)}",
            children=children,
        )

    def restrict(self, **axes: Iterable[object]) -> "CampaignSpec":
        """Slice axis values down (intersection, original order kept)."""
        requested = {
            name: tuple(_freeze(v) for v in values)
            for name, values in axes.items()
        }
        found: set = set()
        spec = self._restrict(requested, found)
        missing = set(requested) - found
        if missing:
            raise CampaignSpecError(
                f"campaign {self.name!r} has no axis named "
                f"{sorted(missing)!r} to restrict"
            )
        return spec

    def _restrict(self, requested, found) -> "CampaignSpec":
        new_axes = []
        for axis in self.axes:
            if axis.name in requested:
                found.add(axis.name)
                keep = tuple(
                    v for v in axis.values if v in requested[axis.name]
                )
                if not keep:
                    raise CampaignSpecError(
                        f"restricting axis {axis.name!r} to "
                        f"{requested[axis.name]!r} leaves no values "
                        f"(had {axis.values!r})"
                    )
                new_axes.append(Axis(axis.name, keep))
            else:
                new_axes.append(axis)
        return replace(
            self,
            axes=tuple(new_axes),
            children=tuple(c._restrict(requested, found) for c in self.children),
        )

    def with_axis(
        self, name: str, values: Iterable[object]
    ) -> "CampaignSpec":
        """Sweep ``name`` over ``values`` wherever the grid binds it:
        axes of that name are replaced in place (keeping their declared
        sweep position) and fixed ``template`` bindings become the
        swept axis at the node that bound them — so an override can
        never apply to only part of a composed grid.  Parts that never
        mention the parameter stay untouched (a protocol override
        leaves the protocol-free centralized baselines alone); if
        *nothing* mentions it, the axis is added as a new root-level
        sweep crossing the whole grid."""
        values = tuple(_freeze(v) for v in values)
        if not values:
            raise CampaignSpecError(f"axis {name!r} needs at least one value")
        if not self._mentions(name):
            return replace(self, axes=self.axes + (Axis(name, values),))
        return self._apply_axis(name, values, covered=False)

    def _mentions(self, name: str) -> bool:
        return (
            any(axis.name == name for axis in self.axes)
            or name in self.template
            or any(child._mentions(name) for child in self.children)
        )

    def _apply_axis(self, name, values, covered: bool) -> "CampaignSpec":
        has_axis = any(axis.name == name for axis in self.axes)
        axes = tuple(
            Axis(name, values) if axis.name == name else axis
            for axis in self.axes
        )
        template = self.template
        if name in template:
            template = {k: v for k, v in template.items() if k != name}
            if not covered and not has_axis:
                axes = axes + (Axis(name, values),)
                has_axis = True
        covered = covered or has_axis
        return replace(
            self,
            axes=axes,
            template=template,
            children=tuple(
                child._apply_axis(name, values, covered)
                for child in self.children
            ),
        )

    def _drop_template_key(self, name) -> "CampaignSpec":
        return replace(
            self,
            template={k: v for k, v in self.template.items() if k != name},
            children=tuple(
                c._drop_template_key(name) for c in self.children
            ),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def axis_summary(self) -> Dict[str, Tuple[object, ...]]:
        """Axis name → distinct values across the tree, first-seen order."""
        out: Dict[str, List[object]] = {}
        def walk(node: "CampaignSpec") -> None:
            for axis in node.axes:
                values = out.setdefault(axis.name, [])
                for value in axis.values:
                    if value not in values:
                        values.append(value)
            for child in node.children:
                walk(child)
        walk(self)
        return {name: tuple(values) for name, values in out.items()}

    # ------------------------------------------------------------------
    # serialization & provenance
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready encoding; exact ``from_dict`` round-trip."""
        data: Dict[str, object] = {
            "format": SPEC_FORMAT,
            "name": self.name,
            "description": self.description,
            "axes": [[axis.name, _thaw(axis.values)] for axis in self.axes],
            "template": {k: _thaw(v) for k, v in self.template.items()},
        }
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        else:
            data["kind"] = self.kind
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise CampaignSpecError(
                f"campaign spec must be an object, got {data!r}"
            )
        if data.get("format", SPEC_FORMAT) != SPEC_FORMAT:
            raise CampaignSpecError(
                f"unsupported campaign-spec format {data.get('format')!r} "
                f"(expected {SPEC_FORMAT!r})"
            )
        try:
            return cls(
                name=data["name"],
                description=data.get("description", ""),
                kind=data.get("kind"),
                label=data.get("label"),
                axes=tuple(
                    Axis(name, tuple(values))
                    for name, values in data.get("axes", [])
                ),
                template=dict(data.get("template", {})),
                children=tuple(
                    cls.from_dict(child) for child in data.get("children", [])
                ),
            )
        except (KeyError, TypeError) as exc:
            raise CampaignSpecError(f"malformed campaign spec: {exc}") from exc

    def spec_hash(self) -> str:
        """Canonical content hash (stable across processes and runs)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def manifest(self) -> Dict[str, object]:
        """The provenance record stored next to campaign artifacts."""
        return {
            "campaign": self.name,
            "spec_hash": self.spec_hash(),
            "spec": self.to_dict(),
        }


# ----------------------------------------------------------------------
# cell builders
# ----------------------------------------------------------------------
def _pop(params: Dict[str, object], names: Iterable[str]) -> Dict[str, object]:
    return {name: params.pop(name) for name in names if name in params}


def _build_performance(params: Dict[str, object]) -> ScenarioConfig:
    known = _pop(
        params,
        ("sites", "cpus_per_site", "clients", "transactions", "protocol"),
    )
    seed = params.pop("seed", 42)
    if params.pop("seed_per_clients", True):
        seed += known.get("clients", 100)
    return performance_config(
        known.pop("sites", 1),
        known.pop("cpus_per_site", 1),
        known.pop("clients", 100),
        seed=seed,
        **known,
        **params,
    )


def _require_fault(params: Dict[str, object]) -> str:
    try:
        return params.pop("fault")
    except KeyError:
        raise ValueError(
            "this cell kind needs a 'fault' binding (axis or template) "
            "naming the loss model / fault-load"
        ) from None


def _build_fault(params: Dict[str, object]) -> ScenarioConfig:
    kind = _require_fault(params)
    known = _pop(
        params,
        (
            "clients",
            "sites",
            "transactions",
            "seed",
            "rate",
            "protocol",
            "fault_at",
            "repair_after",
        ),
    )
    return fault_config(kind, **known, **params)


def _build_safety(params: Dict[str, object]) -> ScenarioConfig:
    kind = _require_fault(params)
    sites = params.pop("sites", 3)
    plans = safety_fault_plans(sites=sites, seed=params.pop("plan_seed", 5))
    if kind not in plans:
        raise ValueError(
            f"unknown safety fault-load {kind!r} "
            f"(expected one of {sorted(plans)})"
        )
    transactions = params.pop("transactions", None)
    return ScenarioConfig(
        sites=sites,
        cpus_per_site=params.pop("cpus_per_site", 1),
        clients=params.pop("clients", 100),
        transactions=(
            transactions if transactions is not None else scaled_transactions()
        ),
        seed=params.pop("seed", 42),
        protocol=params.pop("protocol", DEFAULT_PROTOCOL),
        faults=plans[kind],
        **params,
    )


_CELL_KINDS = {
    "performance": _build_performance,
    "fault": _build_fault,
    "safety": _build_safety,
}


# ----------------------------------------------------------------------
# label helpers
# ----------------------------------------------------------------------
def _display_value(name: str, value: object) -> object:
    if name == "system" and isinstance(value, (tuple, list)):
        return value[0]
    return value


def _protocol_prefix(
    bindings: Dict[str, object],
    axis_values: Dict[str, Tuple[object, ...]],
) -> str:
    """The stable protocol-prefix rule (ex ``_label_prefix``): empty when
    the effective sweep is exactly the default protocol, so artifact
    directories recorded before protocols became an axis still resume;
    otherwise the cell's protocol followed by a space."""
    protocol = bindings.get("protocol", DEFAULT_PROTOCOL)
    sweep = axis_values.get("protocol", (protocol,))
    if tuple(sweep) == (DEFAULT_PROTOCOL,):
        return ""
    return f"{protocol} "


# ----------------------------------------------------------------------
# CLI override parsing (``--set axis=v1,v2``)
# ----------------------------------------------------------------------
def parse_axis_override(text: str) -> Tuple[str, Tuple[object, ...]]:
    """Parse one ``axis=v1,v2,...`` override into ``(name, values)``.

    Values parse as JSON scalars where possible (``120`` → int,
    ``0.05`` → float, ``null`` → None, ``true``/``false`` → bool) and
    fall back to bare strings (``primary-copy``, ``none``).  A value
    part starting with ``[`` parses the whole right-hand side as one
    JSON array — the escape hatch for structured values such as
    ``system`` triples: ``--set 'system=[["3 Sites", 3, 1]]'``.
    """
    name, sep, raw = text.partition("=")
    name, raw = name.strip(), raw.strip()
    if not sep or not name or not raw:
        raise CampaignSpecError(
            f"expected axis=value[,value...], got {text!r}"
        )
    if raw.startswith("["):
        try:
            values = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CampaignSpecError(
                f"axis {name!r}: invalid JSON array {raw!r} ({exc})"
            ) from exc
        if not isinstance(values, list) or not values:
            raise CampaignSpecError(
                f"axis {name!r}: {raw!r} must be a non-empty JSON array"
            )
    else:
        values = [_parse_scalar(name, part) for part in raw.split(",")]
    return name, tuple(_freeze(v) for v in values)


def _parse_scalar(name: str, part: str) -> object:
    part = part.strip()
    if not part:
        raise CampaignSpecError(f"axis {name!r} has an empty value")
    try:
        return json.loads(part)
    except json.JSONDecodeError:
        return part
