"""The named-campaign registry: ``name -> CampaignSpec``.

Mirrors the replication-protocol registry (:mod:`repro.protocols.base`):
campaigns resolve by name everywhere — the runner CLI (``run smoke``),
``run_grid``, the benchmark grid — and registering a spec is all it
takes to make a new grid runnable, listable, describable and
exportable from the command line.

Built-in campaigns (:mod:`repro.campaigns.builtins`) register lazily on
first lookup.  Registration is per-process, like protocols: a custom
campaign only needs registering in the process that expands it —
worker processes receive already-expanded ``ScenarioConfig`` cells.
"""

from __future__ import annotations

import importlib
from typing import Dict, Tuple

from .spec import CampaignSpec

__all__ = [
    "available_campaigns",
    "get_campaign",
    "register_campaign",
]

_REGISTRY: Dict[str, CampaignSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        importlib.import_module(__package__ + ".builtins")


def register_campaign(spec: CampaignSpec, replace: bool = False) -> None:
    """Register ``spec`` under ``spec.name``.

    Raises :class:`ValueError` on a duplicate name unless ``replace``.
    """
    if not isinstance(spec, CampaignSpec):
        raise ValueError(f"expected a CampaignSpec, got {type(spec).__name__}")
    _ensure_builtins()
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"campaign {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def get_campaign(name: str) -> CampaignSpec:
    """The registered spec for ``name``; ValueError names the options."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r} "
            f"(available: {', '.join(available_campaigns())})"
        ) from None


def available_campaigns() -> Tuple[str, ...]:
    """Registered campaign names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))
