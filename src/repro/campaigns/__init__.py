"""Declarative campaign specs, a named-campaign registry, composition.

The paper's contribution is a testing *methodology* — crossing
workloads, fault-loads and protocols into comparison grids.  This
package makes the grid itself a first-class artifact: a
:class:`CampaignSpec` declares sweep axes and expands deterministically
into the labelled :class:`~repro.core.experiment.ScenarioConfig` cells
the runner executes; a registry maps campaign names to specs (the CLI's
``run``/``list``/``describe``/``export`` subcommands enumerate it); and
specs round-trip through JSON so a campaign can be saved, diffed,
sliced (``restrict``), widened (``with_axis``), concatenated
(``merge``) and re-run from a file.

**Contract.** ``get_campaign(name).expand()`` yields the same labelled
cells, in the same order, in every process; ``from_dict(to_dict(s))``
equals ``s``; ``spec_hash()`` identifies the spec content and is
recorded in campaign artifacts for provenance.

**Invariants.**

* *Legacy parity* — the built-in ``smoke``/``fig5``/``fig7``/
  ``recovery`` specs expand cell-for-cell identical (labels and config
  encodings) to the hard-coded grid builders they replaced, so existing
  artifact directories keep resuming;
* *Label safety* — expansion rejects duplicate labels, and any swept
  axis the label template omits is appended automatically;
* *Registry-complete* — everything the CLI can run is in the registry
  or a spec file; there are no private grids.

Quick start::

    from repro.campaigns import CampaignSpec, get_campaign
    from repro.runner import run_campaign

    spec = get_campaign("fig7").with_axis("protocol", ("dbsm", "primary-copy"))
    campaign = run_campaign(spec.expand(), workers=4,
                            artifact_dir="results/fig7",
                            manifest=spec.manifest())
"""

from .registry import available_campaigns, get_campaign, register_campaign
from .spec import (
    Axis,
    CampaignSpec,
    CampaignSpecError,
    DEFAULT_PROTOCOL,
    SPEC_FORMAT,
    parse_axis_override,
)

__all__ = [
    "Axis",
    "CampaignSpec",
    "CampaignSpecError",
    "DEFAULT_PROTOCOL",
    "SPEC_FORMAT",
    "available_campaigns",
    "get_campaign",
    "parse_axis_override",
    "register_campaign",
]
