"""The storage element of the database server model (paper §3.1, §4.1).

A storage device is defined by its per-request latency and the number of
concurrent requests it can serve; each request moves a single sector, so
peak bandwidth is configured indirectly as
``concurrency * sector_bytes / sector_latency``.  A cache-hit ratio
decides the probability that a read is served instantaneously without
consuming storage resources.

The paper's testbed — a fibre-channel RAID-5 box — measured 9.486 MB/s
of synchronous 4 KB writes under IOzone, and PostgreSQL showed a ≥ 98 %
cache-hit ratio, so the model was configured with a 100 % hit ratio
(reads free) and the write path sized to 9.486 MB/s.  Those are the
defaults here.
"""

from __future__ import annotations

import math
import random
from collections import deque
from heapq import heappush as _heappush
from typing import Callable, Deque, Optional, Tuple

from ..core.kernel import Entity, Signal, Simulator

__all__ = ["Storage", "StorageStats"]


class StorageStats:
    """Counters for bandwidth and utilization reporting (Figure 6(b))."""

    __slots__ = (
        "sectors_read",
        "sectors_written",
        "cache_hits",
        "busy_time",
        "bytes_transferred",
    )

    def __init__(self) -> None:
        self.sectors_read = 0
        self.sectors_written = 0
        self.cache_hits = 0
        self.busy_time = 0.0
        self.bytes_transferred = 0


class Storage(Entity):
    """Fixed-latency, bounded-concurrency sector store."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "disk",
        sector_latency: float = 1.727e-3,
        concurrency: int = 4,
        sector_bytes: int = 4096,
        cache_hit_ratio: float = 1.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(sim, name)
        if sector_latency <= 0 or concurrency < 1 or sector_bytes < 1:
            raise ValueError("invalid storage parameters")
        if not 0.0 <= cache_hit_ratio <= 1.0:
            raise ValueError("cache_hit_ratio must be in [0, 1]")
        self.sector_latency = sector_latency
        self.concurrency = concurrency
        self.sector_bytes = sector_bytes
        self.cache_hit_ratio = cache_hit_ratio
        self.rng = rng or random.Random(0)
        self.stats = StorageStats()
        self._busy_slots = 0
        #: Not-yet-started sectors as ``(kind, count, on_sector_done)``
        #: batches in FIFO order — sectors of one request stay contiguous,
        #: so batching preserves per-sector service order exactly.
        self._queue: Deque[Tuple[str, int, Callable[[], None]]] = deque()

    # ------------------------------------------------------------------
    # derived configuration
    # ------------------------------------------------------------------
    @property
    def max_bandwidth_bps(self) -> float:
        """Peak transfer rate in bytes/second (the indirect configuration
        knob the paper calibrates against IOzone)."""
        return self.concurrency * self.sector_bytes / self.sector_latency

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def read(self, nbytes: int) -> Signal:
        """Fetch ``nbytes``; returns a signal fired on completion.

        With probability ``cache_hit_ratio`` the read is a cache hit and
        completes on the next simulation event without touching the
        device.
        """
        done = Signal(self.sim, latch=True)
        if nbytes <= 0 or self.rng.random() < self.cache_hit_ratio:
            self.stats.cache_hits += 1
            self.call(0.0, done.fire, None)
            return done
        self._submit_sectors(self._sectors_for(nbytes), "read", done)
        return done

    def write(self, nbytes: int) -> Signal:
        """Write ``nbytes`` through to the device (never cached — the
        paper's workload uses synchronous commit writes)."""
        done = Signal(self.sim, latch=True)
        if nbytes <= 0:
            self.call(0.0, done.fire, None)
            return done
        self._submit_sectors(self._sectors_for(nbytes), "write", done)
        return done

    def write_sectors(self, sectors: int) -> Signal:
        """Write ``sectors`` whole sectors (commit-time page flushes)."""
        done = Signal(self.sim, latch=True)
        if sectors <= 0:
            self.call(0.0, done.fire, None)
            return done
        self._submit_sectors(sectors, "write", done)
        return done

    def utilization(self, elapsed: float) -> float:
        """Fraction of the device's total slot-time spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / (self.concurrency * elapsed))

    def queue_depth(self) -> int:
        """Sectors waiting for a free slot."""
        return sum(count for _, count, _ in self._queue)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sectors_for(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.sector_bytes))

    def _submit_sectors(self, sectors: int, kind: str, done: Signal) -> None:
        remaining = {"count": sectors}

        def on_sector_done() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                done.fire(None)

        free = self.concurrency - self._busy_slots
        if free > 0:
            started = sectors if sectors < free else free
            self._start_batch(kind, started, on_sector_done)
            sectors -= started
        if sectors:
            self._queue.append((kind, sectors, on_sector_done))

    def _start_batch(self, kind: str, count: int, on_done: Callable[[], None]) -> None:
        """Occupy ``count`` free slots with same-kind sectors.

        All ``count`` sectors start now and finish together at
        ``now + sector_latency``, so they share **one** completion event
        instead of one per sector — under commit-flush load (requests of
        tens of sectors) this is the single largest event population.
        Per-sector service order is unchanged: slots are interchangeable,
        service times are identical, and the batch covers exactly the
        sectors the per-sector scheme would have started at this instant.
        """
        self._busy_slots += count
        stats = self.stats
        # Accumulated one sector at a time on purpose: ``busy_time`` is
        # reported in resource samples, and ``lat * count`` rounds
        # differently from ``count`` repeated additions — the batch must
        # be bit-identical to the per-sector scheme it replaces.
        busy = stats.busy_time
        lat = self.sector_latency
        for _ in range(count):
            busy += lat
        stats.busy_time = busy
        stats.bytes_transferred += self.sector_bytes * count
        if kind == "read":
            stats.sectors_read += count
        else:
            stats.sectors_written += count
        # Inlined fire-and-forget schedule (see Simulator.call).
        sim = self.sim
        sim._seq += 1
        _heappush(
            sim._queue,
            (sim._now + self.sector_latency, sim._seq, self._finish_batch, (count, on_done)),
        )

    def _finish_batch(self, count: int, on_done: Callable[[], None]) -> None:
        self._busy_slots -= count
        for _ in range(count):
            on_done()
        queue = self._queue
        concurrency = self.concurrency
        while queue and self._busy_slots < concurrency:
            kind, waiting, queued_on_done = queue.popleft()
            free = concurrency - self._busy_slots
            started = waiting if waiting < free else free
            self._start_batch(kind, started, queued_on_done)
            if waiting > started:
                queue.appendleft((kind, waiting - started, queued_on_done))
                break
