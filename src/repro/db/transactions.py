"""The transaction model of the simulated database server (paper §3.1).

A transaction is a sequence of operations, each one of: fetch a data
item, do some processing, or write back a data item.  All items accessed
are known before execution starts (which is what lets the lock manager
acquire locks atomically and skip deadlock detection), and per-operation
processing times come from profiling a real database engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

__all__ = [
    "OpKind",
    "Operation",
    "TransactionSpec",
    "Transaction",
    "TxStatus",
    "Outcome",
    "reset_tx_counter",
]


class OpKind(Enum):
    """The three operation kinds of the server model."""

    FETCH = "fetch"
    PROCESS = "process"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class Operation:
    """One step of a transaction.

    ``item`` identifies the tuple for FETCH/WRITE; ``cpu_time`` is the
    profiled processing duration for PROCESS (seconds of the reference
    CPU); ``nbytes`` sizes the storage transfer for FETCH/WRITE.
    """

    kind: OpKind
    item: Optional[int] = None
    cpu_time: float = 0.0
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.kind is OpKind.PROCESS and self.cpu_time < 0:
            raise ValueError("cpu_time must be non-negative")
        if self.kind in (OpKind.FETCH, OpKind.WRITE) and self.item is None:
            raise ValueError(f"{self.kind.value} requires an item")


@dataclass(frozen=True, slots=True)
class TransactionSpec:
    """The full, pre-known description of one transaction.

    ``read_set`` and ``write_set`` are sorted tuples of 64-bit item ids
    (the representation the certification prototype marshals);
    ``write_sizes`` maps written items to their value sizes in bytes so
    messages and storage transfers match real traffic volumes.
    ``commit_cpu`` is the profiled CPU cost of the commit operation
    (observed to be < 2 ms and near-constant across classes, §4.1);
    ``commit_sectors`` is the number of storage sectors flushed at commit
    (0 for read-only transactions, whose commits do no I/O).
    """

    tx_class: str
    operations: Tuple[Operation, ...]
    read_set: Tuple[int, ...]
    write_set: Tuple[int, ...]
    write_sizes: Dict[int, int] = field(default_factory=dict)
    commit_cpu: float = 2e-3
    commit_sectors: int = 1
    #: The transaction rolls itself back at the end of execution (e.g.
    #: TPC-C's mandated 1 % of neworders hitting an unused item id, and
    #: the constant per-class offsets observed in the paper's Table 1 —
    #: see repro.tpcc.workload for the calibration rationale).
    intrinsic_abort: bool = False

    def __post_init__(self) -> None:
        if tuple(sorted(self.read_set)) != self.read_set:
            raise ValueError("read_set must be sorted")
        if tuple(sorted(self.write_set)) != self.write_set:
            raise ValueError("write_set must be sorted")

    @property
    def readonly(self) -> bool:
        return not self.write_set

    def total_cpu(self) -> float:
        """Profiled processing time, excluding commit."""
        return sum(op.cpu_time for op in self.operations if op.kind is OpKind.PROCESS)

    def write_bytes(self) -> int:
        return sum(self.write_sizes.get(item, 0) for item in self.write_set)


class TxStatus(Enum):
    """Lifecycle stages of a transaction at a replica (paper §1, §3.1)."""

    PENDING = "pending"
    EXECUTING = "executing"
    COMMITTING = "committing"  # submitted to the distributed termination protocol
    APPLYING = "applying"  # certified; writing back
    COMMITTED = "committed"
    ABORTED = "aborted"


class Outcome(Enum):
    COMMIT = "commit"
    ABORT = "abort"


_tx_counter = itertools.count(1)


def reset_tx_counter() -> None:
    """Restart transaction ids at 1.

    Called by :class:`~repro.core.experiment.Scenario` before each run so
    a cell's transaction ids — which appear in its metrics records — are
    a pure function of the cell's config, not of how many cells ran
    earlier in the process.  That is what makes campaign results
    bit-identical between sequential execution and a worker pool.
    """
    global _tx_counter
    _tx_counter = itertools.count(1)


class Transaction:
    """Mutable runtime state of a transaction instance at one site."""

    __slots__ = (
        "tx_id",
        "spec",
        "site",
        "remote",
        "status",
        "start_seq",
        "global_seq",
        "submit_time",
        "end_time",
        "certify_submit_time",
        "certify_end_time",
        "abort_reason",
    )

    def __init__(self, spec: TransactionSpec, site: str, remote: bool = False):
        self.tx_id: int = next(_tx_counter)
        self.spec = spec
        self.site = site
        self.remote = remote
        self.status = TxStatus.PENDING
        #: Global commit sequence number observed when execution started —
        #: certification compares against write sets committed after this.
        self.start_seq: int = -1
        #: Global commit order assigned by certification (committed only).
        self.global_seq: int = -1
        self.submit_time: float = -1.0
        self.end_time: float = -1.0
        self.certify_submit_time: float = -1.0
        self.certify_end_time: float = -1.0
        self.abort_reason: str = ""

    @property
    def latency(self) -> float:
        return self.end_time - self.submit_time

    @property
    def certification_latency(self) -> float:
        """Time from multicast submission to certification outcome."""
        if self.certify_submit_time < 0 or self.certify_end_time < 0:
            return 0.0
        return self.certify_end_time - self.certify_submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tx {self.tx_id} {self.spec.tx_class} @{self.site} "
            f"{self.status.value}>"
        )
