"""Concurrency control: the PostgreSQL-flavoured multi-version policy.

The locking policy modeled here is the one the paper configures (§3.1):

* fetched items are ignored (readers never block or abort — multiversion);
* updated items are exclusively locked;
* all of a transaction's locks are acquired **atomically** and released
  atomically at commit or abort — possible because every accessed item is
  known beforehand, and it removes the need for deadlock detection;
* when a holder **commits**, every transaction waiting on any of its
  locks aborts (first-updater-wins write-write conflict);
* when a holder **aborts**, its locks pass to the next eligible waiters;
* **remotely certified** transactions preempt local holders that have not
  themselves been certified — those locals would fail certification
  anyway — but queue (with priority, in certification order) behind
  holders already applying a certified commit.

Notifications run on fresh simulation events (never re-entrantly inside
the caller's stack frame), so server processes observe lock grants,
aborts and preemptions as ordinary asynchronous wake-ups.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.kernel import Entity, Simulator
from .transactions import Transaction, TxStatus

__all__ = ["LockManager", "LockRequest", "GRANTED", "WW_ABORTED", "PREEMPTED"]

#: Wake-up values delivered to waiting/holding transactions.
GRANTED = "granted"
WW_ABORTED = "ww-aborted"  # a conflicting holder committed while we waited
PREEMPTED = "preempted"  # a remotely certified transaction took our locks


class LockRequest:
    """Book-keeping for one transaction's atomic lock acquisition."""

    __slots__ = ("tx", "items", "on_event", "granted", "remote")

    def __init__(
        self,
        tx: Transaction,
        items: Tuple[int, ...],
        on_event: Callable[[str], None],
        remote: bool,
    ):
        self.tx = tx
        self.items = items
        self.on_event = on_event
        self.granted = False
        self.remote = remote


class LockManager(Entity):
    """Exclusive write locks with atomic all-or-wait acquisition."""

    def __init__(self, sim: Simulator, name: str = "locks"):
        super().__init__(sim, name)
        self._holders: Dict[int, LockRequest] = {}
        self._waiting: List[LockRequest] = []
        self.stats = {
            "granted_immediate": 0,
            "granted_after_wait": 0,
            "ww_aborts": 0,
            "preemptions": 0,
        }

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def acquire(
        self,
        tx: Transaction,
        on_event: Callable[[str], None],
    ) -> LockRequest:
        """Atomically acquire ``tx``'s write set.

        ``on_event`` is eventually called exactly once while waiting/held
        is pending: with ``GRANTED`` when all locks are held, with
        ``WW_ABORTED`` if a conflicting holder commits first.  After the
        grant, the same callback may later fire with ``PREEMPTED`` if a
        remote certified transaction takes the locks away.
        """
        request = LockRequest(tx, tuple(tx.spec.write_set), on_event, remote=False)
        if self._all_free(request.items):
            self._grant(request, immediate=True)
        else:
            self._waiting.append(request)
        return request

    def acquire_remote(
        self,
        tx: Transaction,
        on_event: Callable[[str], None],
    ) -> LockRequest:
        """Acquire locks for a certified remote transaction.

        Local holders that are not yet certified are preempted and told
        to abort right away (they would abort in certification anyway,
        §3.1); holders already applying a certified commit are waited on.
        Remote requests queue ahead of local ones, in arrival order —
        which is certification order, keeping application deterministic.
        """
        request = LockRequest(tx, tuple(tx.spec.write_set), on_event, remote=True)
        self._preempt_conflicting_locals(request.items)
        if self._all_free(request.items):
            self._grant(request, immediate=True)
        else:
            insert_at = sum(1 for r in self._waiting if r.remote)
            self._waiting.insert(insert_at, request)
        return request

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def release_commit(self, request: LockRequest) -> None:
        """Release on commit: conflicting waiters abort (write-write)."""
        if not request.granted:
            self._remove_waiter(request)
            return
        released = self._release_items(request)
        if self._waiting:
            released_set = set(released)
            victims = [
                waiter
                for waiter in self._waiting
                if not waiter.remote and not released_set.isdisjoint(waiter.items)
            ]
            for victim in victims:
                self._waiting.remove(victim)
                self.stats["ww_aborts"] += 1
                self._notify(victim, WW_ABORTED)
            self._regrant()

    def release_abort(self, request: LockRequest) -> None:
        """Release on abort: locks pass to the next eligible waiters."""
        if not request.granted:
            self._remove_waiter(request)
            return
        self._release_items(request)
        if self._waiting:
            self._regrant()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def holder_of(self, item: int) -> Optional[Transaction]:
        request = self._holders.get(item)
        return request.tx if request else None

    def waiting_count(self) -> int:
        return len(self._waiting)

    def held_count(self) -> int:
        return len(self._holders)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _all_free(self, items: Tuple[int, ...]) -> bool:
        # Plain loop, not ``all(genexpr)``: this runs once per acquisition
        # and once per waiter per regrant pass, and the generator frame is
        # measurable at that rate.
        holders = self._holders
        for item in items:
            if item in holders:
                return False
        return True

    def _grant(self, request: LockRequest, immediate: bool) -> None:
        for item in request.items:
            assert item not in self._holders, f"double grant on {item}"
            self._holders[item] = request
        request.granted = True
        key = "granted_immediate" if immediate else "granted_after_wait"
        self.stats[key] += 1
        self._notify(request, GRANTED)

    def _release_items(self, request: LockRequest) -> Tuple[int, ...]:
        released = []
        holders = self._holders
        for item in request.items:
            if holders.get(item) is request:
                del holders[item]
                released.append(item)
        request.granted = False
        return tuple(released)

    def _remove_waiter(self, request: LockRequest) -> None:
        if request in self._waiting:
            self._waiting.remove(request)

    def _regrant(self) -> None:
        """Grant queued requests whose whole item set became free, in
        queue order (remote requests sit at the head)."""
        progress = True
        while progress:
            progress = False
            for waiter in list(self._waiting):
                if self._all_free(waiter.items):
                    self._waiting.remove(waiter)
                    self._grant(waiter, immediate=False)
                    progress = True
                    break

    def _preempt_conflicting_locals(self, items: Tuple[int, ...]) -> None:
        victims: List[LockRequest] = []
        for item in items:
            holder = self._holders.get(item)
            if holder is None or holder in victims:
                continue
            if holder.remote or holder.tx.status is TxStatus.APPLYING:
                continue  # certified work is awaited, never preempted
            victims.append(holder)
        for victim in victims:
            self._release_items(victim)
            self.stats["preemptions"] += 1
            self._notify(victim, PREEMPTED)
        # Local waiters on these items are also doomed: the remote write
        # will commit, which is exactly the first-updater-wins conflict.
        doomed = [
            waiter
            for waiter in self._waiting
            if not waiter.remote and any(item in items for item in waiter.items)
        ]
        for waiter in doomed:
            self._waiting.remove(waiter)
            self.stats["ww_aborts"] += 1
            self._notify(waiter, WW_ABORTED)

    def _notify(self, request: LockRequest, event: str) -> None:
        self.call(0.0, request.on_event, event)
