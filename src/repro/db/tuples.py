"""Tuple identifiers: 64-bit integers with the table id in the high bits.

The certification prototype (paper §3.3) assumes each read/written tuple
is identified by a 64-bit integer whose highest-order bits carry the
table identifier, so that comparing a tuple id against a whole-table
lock is a plain prefix check.  Row number 0 is reserved: an id whose row
part is zero denotes a lock on the *entire table* (the escalation target
when a read-set grows past the multicast-practical threshold).
"""

from __future__ import annotations

__all__ = [
    "TABLE_BITS",
    "ROW_BITS",
    "make_tuple_id",
    "table_of",
    "row_of",
    "table_lock_id",
    "is_table_lock",
    "covers",
]

#: Bits of the 64-bit id reserved for the table identifier.
TABLE_BITS = 16
#: Bits reserved for the row number.
ROW_BITS = 64 - TABLE_BITS

_ROW_MASK = (1 << ROW_BITS) - 1
_MAX_TABLE = (1 << TABLE_BITS) - 1


def make_tuple_id(table: int, row: int) -> int:
    """Encode ``(table, row)`` into one 64-bit identifier.

    ``row`` must be >= 1; row 0 is the whole-table lock (see
    :func:`table_lock_id`).
    """
    if not 0 < table <= _MAX_TABLE:
        raise ValueError(f"table id {table} out of range")
    if not 0 < row <= _ROW_MASK:
        raise ValueError(f"row {row} out of range")
    return (table << ROW_BITS) | row


def table_of(tuple_id: int) -> int:
    """The table identifier encoded in ``tuple_id``."""
    return tuple_id >> ROW_BITS


def row_of(tuple_id: int) -> int:
    """The row number encoded in ``tuple_id`` (0 for a table lock)."""
    return tuple_id & _ROW_MASK


def table_lock_id(table: int) -> int:
    """The identifier representing a lock on the whole ``table``."""
    if not 0 < table <= _MAX_TABLE:
        raise ValueError(f"table id {table} out of range")
    return table << ROW_BITS


def is_table_lock(tuple_id: int) -> bool:
    return (tuple_id & _ROW_MASK) == 0


def covers(lock_id: int, tuple_id: int) -> bool:
    """Does ``lock_id`` conflict-cover ``tuple_id``?

    A table lock covers every tuple of its table (and the table lock
    itself); a plain tuple id covers only itself.
    """
    if is_table_lock(lock_id):
        return table_of(lock_id) == table_of(tuple_id)
    return lock_id == tuple_id
