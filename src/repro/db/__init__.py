"""The simulated database server model (paper §3.1).

A server is a scheduler plus resources (CPUs, storage) plus a
concurrency-control policy; transactions are sequences of fetch /
process / write-back operations with profiled durations.

**Contract.** Execute a :class:`TransactionSpec` to a single terminal
outcome (commit or abort, reported once via ``on_done``), consuming
simulated CPU/storage time per the profiled costs, and hand committing
updates to the installed termination protocol for the distributed
decision.

**Invariants.**

* *Strict 2PL over write sets* — write locks are acquired atomically
  before execution and released only after commit/abort;
* *Remote priority* — an already-certified remote apply preempts local
  conflicting lock holders (they would fail certification anyway), so
  the commit order decided above is never blocked locally;
* *Watermark monotonicity* — ``applied_watermark`` only advances, and
  equals the highest global sequence below which everything is applied
  (the ``start_seq`` snapshot new transactions take).
"""

from .lock import GRANTED, PREEMPTED, WW_ABORTED, LockManager
from .server import DatabaseServer, LocalTermination, TerminationProtocol
from .storage import Storage
from .transactions import (
    Operation,
    OpKind,
    Outcome,
    Transaction,
    TransactionSpec,
    TxStatus,
)
from .tuples import (
    covers,
    is_table_lock,
    make_tuple_id,
    row_of,
    table_lock_id,
    table_of,
)

__all__ = [
    "GRANTED",
    "PREEMPTED",
    "WW_ABORTED",
    "LockManager",
    "DatabaseServer",
    "LocalTermination",
    "TerminationProtocol",
    "Storage",
    "Operation",
    "OpKind",
    "Outcome",
    "Transaction",
    "TransactionSpec",
    "TxStatus",
    "covers",
    "is_table_lock",
    "make_tuple_id",
    "row_of",
    "table_lock_id",
    "table_of",
]
