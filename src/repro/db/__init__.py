"""The simulated database server model (paper §3.1).

A server is a scheduler plus resources (CPUs, storage) plus a
concurrency-control policy; transactions are sequences of fetch /
process / write-back operations with profiled durations.
"""

from .lock import GRANTED, PREEMPTED, WW_ABORTED, LockManager
from .server import DatabaseServer, LocalTermination, TerminationProtocol
from .storage import Storage
from .transactions import (
    Operation,
    OpKind,
    Outcome,
    Transaction,
    TransactionSpec,
    TxStatus,
)
from .tuples import (
    covers,
    is_table_lock,
    make_tuple_id,
    row_of,
    table_lock_id,
    table_of,
)

__all__ = [
    "GRANTED",
    "PREEMPTED",
    "WW_ABORTED",
    "LockManager",
    "DatabaseServer",
    "LocalTermination",
    "TerminationProtocol",
    "Storage",
    "Operation",
    "OpKind",
    "Outcome",
    "Transaction",
    "TransactionSpec",
    "TxStatus",
    "covers",
    "is_table_lock",
    "make_tuple_id",
    "row_of",
    "table_lock_id",
    "table_of",
]
