"""The simulated database server (paper §3.1).

A server is a scheduler over a collection of resources — CPUs, storage —
plus a concurrency-control policy.  Transactions are driven as generator
processes: each operation (fetch / process / write-back) is scheduled on
the corresponding resource, the profiled processing times having been
obtained from a real engine.  When a commit operation is reached the
transaction enters the distributed termination protocol; certification is
real code running under the centralized runtime, so the server only sees
an asynchronous outcome.

Remotely initiated (certified) transactions are applied through
:meth:`DatabaseServer.apply_remote`: locks are acquired before writing to
disk, preempting local transactions that hold them — those would abort in
certification anyway.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.cpu import CpuPool, Job, SIM_JOB
from ..core.kernel import Entity, Signal, Simulator
from ..core.metrics import MetricsCollector, TxRecord
from .lock import GRANTED, PREEMPTED, WW_ABORTED, LockManager, LockRequest
from .storage import Storage
from .transactions import (
    OpKind,
    Outcome,
    Transaction,
    TransactionSpec,
    TxStatus,
)

__all__ = [
    "DatabaseServer",
    "TerminationProtocol",
    "LocalTermination",
    "WatermarkTracker",
]


class TerminationProtocol:
    """What the server needs from the distributed termination procedure.

    The replicated implementation (:class:`repro.dbsm.replica.Replica`)
    multicasts the transaction's data and certifies on delivery; the
    centralized stand-in below commits immediately.  Either way the
    server receives a latched signal fired with an :class:`Outcome`.
    """

    def submit(self, tx: Transaction) -> Signal:
        """Start termination for ``tx``; the signal fires with Outcome."""
        raise NotImplementedError

    def applied_watermark(self) -> int:
        """Highest global sequence number g such that every committed
        transaction with sequence <= g has been fully applied locally.
        New transactions snapshot this as their ``start_seq``."""
        raise NotImplementedError


class LocalTermination(TerminationProtocol):
    """Centralized termination: no replication, every update commits.

    Used for the 1/3/6-CPU single-site baselines of §5.1, where there is
    no certification and no group communication.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._next_seq = 0
        self._watermark_tracker = WatermarkTracker()

    def submit(self, tx: Transaction) -> Signal:
        signal = Signal(self.sim, latch=True)
        self._next_seq += 1
        tx.global_seq = self._next_seq
        self.sim.call(0.0, signal.fire, Outcome.COMMIT)
        return signal

    def applied_watermark(self) -> int:
        return self._watermark_tracker.watermark

    def mark_applied(self, global_seq: int) -> None:
        self._watermark_tracker.mark(global_seq)


class WatermarkTracker:
    """Advances a contiguous high-watermark over out-of-order completions.

    Shared by every termination protocol: committed sequence numbers are
    marked as their transactions finish applying (possibly out of
    order), and ``watermark`` is the highest ``g`` such that everything
    up to ``g`` has been applied — the ``start_seq`` snapshot new
    transactions take."""

    def __init__(self) -> None:
        self.watermark = 0
        self._pending: set = set()

    def mark(self, seq: int) -> None:
        self._pending.add(seq)
        while self.watermark + 1 in self._pending:
            self._pending.discard(self.watermark + 1)
            self.watermark += 1


class DatabaseServer(Entity):
    """One database site: CPUs + storage + locks + transaction driver."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpus: CpuPool,
        storage: Storage,
        locks: Optional[LockManager] = None,
        termination: Optional[TerminationProtocol] = None,
        metrics: Optional[MetricsCollector] = None,
    ):
        super().__init__(sim, name)
        self.cpus = cpus
        self.storage = storage
        self.locks = locks or LockManager(sim, f"{name}.locks")
        self.termination = termination or LocalTermination(sim)
        self.metrics = metrics or MetricsCollector()
        self.stats = {
            "local_committed": 0,
            "local_aborted": 0,
            "remote_applied": 0,
        }
        #: Invoked with (tx, global_seq) whenever a certified transaction
        #: (local or remote) finishes applying — the replica uses this to
        #: advance the applied watermark and the commit log.
        self.on_applied: Optional[Callable[[Transaction, int], None]] = None
        if isinstance(self.termination, LocalTermination):
            local = self.termination
            self.on_applied = lambda tx, seq: local.mark_applied(seq)

    # ------------------------------------------------------------------
    # local transactions (issued by clients attached to this site)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: TransactionSpec,
        on_done: Optional[Callable[[Transaction], None]] = None,
        submitted_at: Optional[float] = None,
    ) -> Transaction:
        """Start executing ``spec`` on behalf of a local client.

        ``on_done`` is called once, with the finished transaction, after
        commit or abort — the client model uses it to unblock.
        ``submitted_at`` backdates the transaction's recorded submission
        time — protocols that route requests over the network pass the
        instant the client issued the request, so transit time counts
        toward the measured latency."""
        tx = Transaction(spec, self.name)
        self.sim.process(
            self._run_local(tx, on_done, submitted_at), name=f"tx{tx.tx_id}"
        )
        return tx

    def _run_local(self, tx: Transaction, on_done, submitted_at=None):
        spec = tx.spec
        tx.submit_time = self.now if submitted_at is None else submitted_at
        tx.status = TxStatus.EXECUTING
        tx.start_seq = self.termination.applied_watermark()

        preempted = {"flag": False}
        request: Optional[LockRequest] = None

        # -- atomic lock acquisition over the (pre-known) write set -----
        if spec.write_set:
            acquire_signal = Signal(self.sim, latch=True)

            def on_lock_event(event: str) -> None:
                if not acquire_signal.fired:
                    acquire_signal.fire(event)
                elif event == PREEMPTED:
                    preempted["flag"] = True

            request = self.locks.acquire(tx, on_lock_event)
            event = yield acquire_signal
            if event == WW_ABORTED:
                self._finish_abort(tx, request, "ww-conflict", on_done)
                return
            assert event == GRANTED

        # -- execute the operation sequence ------------------------------
        for op in spec.operations:
            if preempted["flag"]:
                self._finish_abort(tx, request, "preempted", on_done)
                return
            if op.kind is OpKind.FETCH:
                yield self.storage.read(op.nbytes)
            elif op.kind is OpKind.PROCESS:
                yield self._cpu_job(op.cpu_time, spec.tx_class)
            else:  # WRITE: private version, applied at commit
                continue
        if preempted["flag"]:
            self._finish_abort(tx, request, "preempted", on_done)
            return
        if spec.intrinsic_abort:
            # The application rolls back at the end of execution (e.g.
            # TPC-C's invalid-item neworders); no certification happens.
            self._finish_abort(tx, request, "intrinsic", on_done)
            return

        # -- distributed termination -------------------------------------
        if spec.readonly:
            # Read-only transactions commit locally: commit costs CPU but
            # no I/O and no certification (§4.1, §5.1).
            yield self._cpu_job(spec.commit_cpu, "commit")
            tx.status = TxStatus.COMMITTED
            tx.end_time = self.now
            self._record(tx, "commit", on_done)
            return

        tx.status = TxStatus.COMMITTING
        tx.certify_submit_time = self.now
        outcome_signal = self.termination.submit(tx)
        outcome = yield outcome_signal
        tx.certify_end_time = self.now

        if outcome is not Outcome.COMMIT:
            reason = "preempted" if preempted["flag"] else "certification"
            self._finish_abort(tx, request, reason, on_done)
            return
        assert not preempted["flag"], (
            "a preempted transaction certified COMMIT — write sets must "
            "be covered by read sets for conflicting classes"
        )

        # -- apply: finish writing, then release locks (§3.1) -------------
        tx.status = TxStatus.APPLYING
        if spec.commit_sectors > 0:
            yield self.storage.write_sectors(spec.commit_sectors)
        yield self._cpu_job(spec.commit_cpu, "commit")
        if request is not None:
            self.locks.release_commit(request)
        tx.status = TxStatus.COMMITTED
        tx.end_time = self.now
        self.stats["local_committed"] += 1
        if self.on_applied is not None:
            self.on_applied(tx, tx.global_seq)
        self._record(tx, "commit", on_done)

    # ------------------------------------------------------------------
    # remote transactions (already certified elsewhere in total order)
    # ------------------------------------------------------------------
    def apply_remote(self, tx: Transaction) -> Signal:
        """Apply a certified remote transaction; returns a completion
        signal.  Must be called in certification order."""
        done = Signal(self.sim, latch=True)
        self.sim.process(self._run_remote(tx, done), name=f"remote{tx.tx_id}")
        return done

    def _run_remote(self, tx: Transaction, done: Signal):
        spec = tx.spec
        tx.status = TxStatus.APPLYING
        if spec.write_set:
            granted = Signal(self.sim, latch=True)
            request = self.locks.acquire_remote(tx, granted.fire)
            event = yield granted
            assert event == GRANTED
        else:
            request = None
        if spec.commit_sectors > 0:
            yield self.storage.write_sectors(spec.commit_sectors)
        yield self._cpu_job(spec.commit_cpu, "remote-commit")
        if request is not None:
            self.locks.release_commit(request)
        tx.status = TxStatus.COMMITTED
        tx.end_time = self.now
        self.stats["remote_applied"] += 1
        if self.on_applied is not None:
            self.on_applied(tx, tx.global_seq)
        done.fire(None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cpu_job(self, duration: float, tag: str) -> Signal:
        signal = Signal(self.sim, latch=True)
        if duration <= 0:
            self.call(0.0, signal.fire, None)
            return signal
        job = Job(
            SIM_JOB,
            duration=duration,
            on_complete=lambda: signal.fire(None),
            tag=tag,
        )
        self.cpus.submit(job)
        return signal

    def _finish_abort(
        self,
        tx: Transaction,
        request: Optional[LockRequest],
        reason: str,
        on_done,
    ) -> None:
        if request is not None:
            self.locks.release_abort(request)
        tx.status = TxStatus.ABORTED
        tx.abort_reason = reason
        tx.end_time = self.now
        self.stats["local_aborted"] += 1
        self._record(tx, "abort", on_done)

    def _record(self, tx: Transaction, outcome: str, on_done) -> None:
        self.metrics.record(
            TxRecord(
                tx_id=tx.tx_id,
                tx_class=tx.spec.tx_class,
                site=self.name,
                submit_time=tx.submit_time,
                end_time=tx.end_time,
                outcome=outcome,
                readonly=tx.spec.readonly,
                certification_latency=tx.certification_latency,
                abort_reason=tx.abort_reason,
            )
        )
        if on_done is not None:
            on_done(tx)
