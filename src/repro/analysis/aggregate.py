"""Aggregation arithmetic: group statistics and the Series/Table values.

Every derived view in :mod:`repro.analysis` bottoms out here: a group of
per-cell metric values is reduced to a :class:`Stat` (mean, min/max and
a seed-replicate 95 % confidence interval), and grouped/pivoted results
are carried as :class:`Series` (one axis) or :class:`Table` (two axes)
so renderers never re-derive numbers.

Conventions:

* ``NaN`` means *no data* (an empty cell or an unmatched row x column
  combination), never zero.  :func:`summarize` drops NaN inputs and
  reports how many finite replicates remain; a group with no finite
  values keeps NaN everywhere, so missing data stays visibly missing
  all the way to the rendered report.
* Aggregation is order-independent: values are sorted before summing,
  so the same group of cells produces bit-identical statistics whatever
  order the cells were loaded or executed in.
* The confidence interval is the small-sample Student-t interval over
  the replicates (typically one per seed): half-width
  ``t_{0.975, n-1} * s / sqrt(n)``; it is NaN for fewer than two
  replicates rather than a fake zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Delta", "Series", "Stat", "Table", "summarize", "t_critical_95"]

#: Two-sided 95 % Student-t critical values, indexed by degrees of
#: freedom 1..30; larger samples use the normal limit 1.960.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95 % t critical value for ``df`` degrees of freedom."""
    if df < 1:
        return math.nan
    if df <= len(_T_95):
        return _T_95[df - 1]
    return 1.960


@dataclass(frozen=True)
class Stat:
    """Summary of one group of replicate metric values."""

    mean: float
    n: int  # finite replicates the statistics are over
    minimum: float
    maximum: float
    #: Half-width of the 95 % confidence interval; NaN when n < 2.
    ci95: float

    @property
    def empty(self) -> bool:
        return self.n == 0


_NAN_STAT = Stat(math.nan, 0, math.nan, math.nan, math.nan)


def summarize(values: Iterable[float]) -> Stat:
    """Reduce replicate values to a :class:`Stat` (NaNs dropped).

    Sorting before summation makes the result independent of input
    order, so group-by output is deterministic across cell orderings.
    """
    finite = sorted(v for v in values if not math.isnan(v))
    n = len(finite)
    if n == 0:
        return _NAN_STAT
    mean = sum(finite) / n
    if n < 2:
        ci95 = math.nan
    else:
        variance = sum((v - mean) ** 2 for v in finite) / (n - 1)
        ci95 = t_critical_95(n - 1) * math.sqrt(variance / n)
    return Stat(mean, n, finite[0], finite[-1], ci95)


@dataclass
class Series:
    """One metric along one axis: ordered ``(key, Stat)`` points."""

    metric: str
    axis: str
    points: List[Tuple[object, Stat]]

    def keys(self) -> List[object]:
        return [key for key, _ in self.points]

    def means(self) -> List[float]:
        return [stat.mean for _, stat in self.points]

    def get(self, key: object) -> Stat:
        for k, stat in self.points:
            if k == key:
                return stat
        return _NAN_STAT


@dataclass
class Table:
    """One metric pivoted over a row axis and a column axis.

    ``rows`` and ``cols`` keep first-seen order from the originating
    :class:`~repro.analysis.resultset.ResultSet`, so a table built from
    a campaign spec renders in spec-expansion order.  Missing row x
    column combinations answer NaN.
    """

    metric: str
    row_axis: str
    col_axis: str
    rows: Tuple[object, ...]
    cols: Tuple[object, ...]
    cells: Dict[Tuple[object, object], Stat] = field(default_factory=dict)

    def stat(self, row: object, col: object) -> Stat:
        return self.cells.get((row, col), _NAN_STAT)

    def value(self, row: object, col: object) -> float:
        return self.stat(row, col).mean

    def column(self, col: object) -> List[float]:
        """Column means in row order (the figure-series view)."""
        return [self.value(row, col) for row in self.rows]

    def row_values(self, row: object) -> List[float]:
        return [self.value(row, col) for col in self.cols]

    def columns(self) -> Dict[object, List[float]]:
        return {col: self.column(col) for col in self.cols}


@dataclass(frozen=True)
class Delta:
    """One metric's baseline-vs-candidate pair in a comparison."""

    baseline: float
    candidate: float

    @property
    def absolute(self) -> float:
        return self.candidate - self.baseline

    @property
    def percent(self) -> float:
        """Relative change in percent; NaN when undefined."""
        if (
            math.isnan(self.baseline)
            or math.isnan(self.candidate)
            or self.baseline == 0.0
        ):
            return math.nan
        return 100.0 * (self.candidate - self.baseline) / abs(self.baseline)
