"""Renderers: aligned text, markdown, CSV and JSON views.

All output formatting of analysis values lives here — consumers
(runner summary, benchmarks, examples, the ``report`` subcommand)
never format a metric value themselves.

``format_table`` is the paper-style fixed-width layout the benchmark
suite has always printed (title line, right-justified columns,
two-space separators), kept bit-identical so benchmark logs and the
``report`` subcommand reproduce the historical output exactly.  NaN
values — the registry's "no data" marker — render as ``–`` in text and
markdown, an empty field in CSV, and ``null`` in JSON; never as a fake
zero.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Union

from .aggregate import Table
from .metrics import get_metric, metric_value

if TYPE_CHECKING:  # Comparison lives with ResultSet; avoid a cycle
    from .resultset import Comparison

__all__ = [
    "NO_DATA",
    "format_table",
    "render_csv",
    "render_markdown",
    "render_text",
    "summary_text",
    "table_grid",
    "table_payload",
]

#: How "no data" (NaN) renders in text and markdown output.
NO_DATA = "–"

Formatter = Union[str, Callable[[float], str]]


def _format_value(value: float, fmt: Formatter) -> str:
    if math.isnan(value):
        return NO_DATA
    if callable(fmt):
        return fmt(value)
    return fmt.format(value)


def _table_fmt(table: Table, fmt: Optional[Formatter]) -> Formatter:
    if fmt is not None:
        return fmt
    if table.metric:
        return get_metric(table.metric).fmt
    return "{:.4g}"


def format_table(title: str, headers: Sequence, rows: Iterable[Sequence]) -> str:
    """The paper-style fixed-width table as one printable string."""
    rows = [tuple(row) for row in rows]
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = ["", f"=== {title} ==="] if title else []
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _table_grid(
    table: Table,
    fmt: Optional[Formatter],
    row_header: Optional[str],
    col_names: Optional[Dict[object, str]],
    ci: bool,
) -> tuple:
    """(headers, rows) shared by the text/markdown/CSV renderers.

    Multi-metric tables (``col_axis == "metric"``) format each column
    with its own registered format unless ``fmt`` overrides.
    """
    renames = col_names or {}
    headers = (row_header or table.row_axis,) + tuple(
        str(renames.get(col, col)) for col in table.cols
    )

    def col_fmt(col: object) -> Formatter:
        if fmt is not None:
            return fmt
        if table.col_axis == "metric":
            return get_metric(str(col)).fmt
        return _table_fmt(table, None)

    rows = []
    for row in table.rows:
        cells = []
        for col in table.cols:
            stat = table.stat(row, col)
            text = _format_value(stat.mean, col_fmt(col))
            if ci and stat.n > 1 and not math.isnan(stat.ci95):
                text += f" ±{_format_value(stat.ci95, col_fmt(col))}"
            cells.append(text)
        rows.append((row,) + tuple(cells))
    return headers, rows


def table_grid(
    table: Table,
    fmt: Optional[Formatter] = None,
    row_header: Optional[str] = None,
    col_names: Optional[Dict[object, str]] = None,
    ci: bool = False,
) -> tuple:
    """``(headers, rows)`` with every value already display-formatted —
    the grid the text/markdown/CSV renderers share, exposed for
    consumers that lay the table out themselves (the HTML report)."""
    return _table_grid(table, fmt, row_header, col_names, ci)


def render_text(
    table: Table,
    title: Optional[str] = None,
    fmt: Optional[Formatter] = None,
    row_header: Optional[str] = None,
    col_names: Optional[Dict[object, str]] = None,
    ci: bool = False,
) -> str:
    """A :class:`Table` in the paper-style fixed-width layout.

    ``ci=True`` appends ``±halfwidth`` wherever a group has seed
    replicates (n > 1)."""
    headers, rows = _table_grid(table, fmt, row_header, col_names, ci)
    return format_table(title or "", headers, rows)


def render_markdown(
    table: Table,
    title: Optional[str] = None,
    fmt: Optional[Formatter] = None,
    row_header: Optional[str] = None,
    col_names: Optional[Dict[object, str]] = None,
    ci: bool = False,
) -> str:
    headers, rows = _table_grid(table, fmt, row_header, col_names, ci)
    lines = [f"### {title}", ""] if title else []
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def render_csv(
    table: Table,
    row_header: Optional[str] = None,
    col_names: Optional[Dict[object, str]] = None,
) -> str:
    """Raw means as CSV (NaN -> empty field); no display formatting."""
    renames = col_names or {}

    def field(value: object) -> str:
        text = "" if isinstance(value, float) and math.isnan(value) else str(value)
        if any(c in text for c in ',"\n'):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [
        ",".join(
            field(h)
            for h in (row_header or table.row_axis,)
            + tuple(str(renames.get(c, c)) for c in table.cols)
        )
    ]
    for row in table.rows:
        lines.append(
            ",".join(
                [field(row)] + [field(table.value(row, col)) for col in table.cols]
            )
        )
    return "\n".join(lines)


def _json_value(value: float) -> Optional[float]:
    return None if math.isnan(value) else value


def table_payload(table: Table) -> Dict[str, object]:
    """A :class:`Table` as a JSON-ready payload (NaN -> null)."""
    return {
        "metric": table.metric or None,
        "row_axis": table.row_axis,
        "col_axis": table.col_axis,
        "rows": list(table.rows),
        "cols": list(table.cols),
        "values": [
            [_json_value(table.value(row, col)) for col in table.cols]
            for row in table.rows
        ],
        "ci95": [
            [_json_value(table.stat(row, col).ci95) for col in table.cols]
            for row in table.rows
        ],
        "n": [
            [table.stat(row, col).n for col in table.cols]
            for row in table.rows
        ],
    }


def render_comparison(
    comparison: "Comparison",
    title: Optional[str] = None,
    markdown: bool = False,
) -> str:
    """Baseline / candidate / Δ% columns per metric."""
    headers = ("cell",)
    for metric in comparison.metrics:
        headers += (f"{metric} base", "cand", "Δ%")
    rows = []
    for label, deltas in comparison.rows:
        cells: List[str] = [label]
        for metric in comparison.metrics:
            fmt = get_metric(metric).fmt
            delta = deltas[metric]
            cells.append(_format_value(delta.baseline, fmt))
            cells.append(_format_value(delta.candidate, fmt))
            cells.append(_format_value(delta.percent, "{:+.1f}"))
        rows.append(tuple(cells))
    sel = (
        f"baseline {_sel_text(comparison.baseline_sel)} vs "
        f"candidate {_sel_text(comparison.candidate_sel)}"
    )
    if markdown:
        lines = [f"### {title or sel}", ""]
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join(" --- " for _ in headers) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        if comparison.unmatched:
            lines += ["", f"unmatched baseline cells: "
                          f"{', '.join(comparison.unmatched)}"]
        return "\n".join(lines)
    text = format_table(title or sel, headers, rows)
    if comparison.unmatched:
        text += (
            f"\n\nunmatched baseline cells: {', '.join(comparison.unmatched)}"
        )
    return text


def _sel_text(selection: Dict[str, object]) -> str:
    return ",".join(f"{k}={v}" for k, v in selection.items())


def comparison_payload(comparison: "Comparison") -> Dict[str, object]:
    return {
        "baseline": comparison.baseline_sel,
        "candidate": comparison.candidate_sel,
        "metrics": list(comparison.metrics),
        "rows": [
            {
                "cell": label,
                "deltas": {
                    metric: {
                        "baseline": _json_value(delta.baseline),
                        "candidate": _json_value(delta.candidate),
                        "percent": _json_value(delta.percent),
                    }
                    for metric, delta in deltas.items()
                },
            }
            for label, deltas in comparison.rows
        ],
        "unmatched": list(comparison.unmatched),
    }


# ----------------------------------------------------------------------
# the runner summary (bit-identical to the historical formatter)
# ----------------------------------------------------------------------
def _summary_value(result, metric: str, spec: str, suffix: str = "") -> str:
    value = metric_value(result, metric)
    if math.isnan(value):
        width = int(spec.split(".")[0])
        return f"{NO_DATA:>{width}s}{suffix}"
    return f"{value:{spec}}{suffix}"


def summary_text(cells: Iterable) -> str:
    """The campaign summary table: one row per cell plus the recovery
    sub-table.  ``cells`` are :class:`~repro.runner.CampaignCell`-shaped
    objects (``label`` / ``result`` / ``source``, optional ``status``).

    Every number goes through the metric registry; the layout is the
    byte-for-byte historical ``python -m repro.runner`` summary, so
    reports over an artifact directory reproduce a resumed run's output
    exactly.
    """
    lines = [
        "",
        f"{'cell':<28s} {'status':<8s} {'tpm':>8s} {'latency':>9s} "
        f"{'abort':>7s} {'cpu':>6s} {'net KB/s':>9s} {'src':>10s}",
    ]
    recovered = []
    for cell in cells:
        status = getattr(cell, "status", "ok")
        if status != "ok":
            lines.append(
                f"{cell.label:<28s} {'FAILED':<8s}  (see traceback below)"
            )
            continue
        result = cell.result
        source = getattr(cell, "source", "artifact")
        lines.append(
            f"{cell.label:<28s} {'ok':<8s} "
            f"{_summary_value(result, 'throughput_tpm', '8.1f')} "
            f"{_summary_value(result, 'mean_latency_ms', '7.1f', 'ms')} "
            f"{_summary_value(result, 'abort_rate', '6.2f', '%')} "
            + _cpu_percent(result)
            + f" {_summary_value(result, 'net_kbps', '9.1f')} {source:>10s}"
        )
        recovered.extend(
            (cell.label, event) for event in result.completed_rejoins()
        )
    if recovered:
        lines.append("")
        lines.append(
            f"{'recovery':<28s} {'site':>5s} {'rejoin':>8s} "
            f"{'backlog':>8s} {'snapshot':>9s} {'orphans':>8s}"
        )
        for label, event in recovered:
            lines.append(
                f"{label:<28s} {event.site:>5d} "
                f"{event.time_to_rejoin():7.2f}s "
                f"{event.backlog_replayed:8d} "
                f"{event.snapshot_bytes:8d}B "
                f"{event.orphaned_commits:8d}"
            )
    return "\n".join(lines)


def _cpu_percent(result) -> str:
    value = metric_value(result, "cpu_total")
    if math.isnan(value):
        return f"{NO_DATA:>5s}%"
    return f"{value * 100:5.1f}%"
