"""ResultSet: the queryable view over a campaign's results.

One object, three sources — a campaign artifact directory (loaded
through its ``campaign.json`` manifest, with each cell tagged with the
campaign-axis values recovered from spec provenance), an in-memory
:class:`~repro.runner.CampaignResult`, or explicit ``(label, result,
axes)`` triples — answering the same grouping, pivoting and comparison
questions either way.

Provenance is checked loudly: a manifest whose recorded ``spec_hash``
does not match its own spec encoding, or a cell artifact stamped with a
different spec hash than the manifest, raises :class:`AnalysisError`
instead of silently mixing campaign revisions into one report.
Artifact directories without a manifest (hand-labelled ``run_campaign``
output) still load — cells then carry only the axis tags derivable
from their stored configuration.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..campaigns.spec import CampaignSpec
from ..core.experiment import ScenarioConfig, ScenarioResult
from ..runner.store import MANIFEST_NAME, ArtifactStore
from .aggregate import Delta, Series, Stat, Table, summarize
from .metrics import metric_value

__all__ = ["AnalysisError", "Comparison", "ResultCell", "ResultSet"]


class AnalysisError(ValueError):
    """A result set cannot be loaded or a query cannot be answered."""


#: ScenarioConfig fields always usable as axis tags.
_CONFIG_AXES = (
    "protocol",
    "sites",
    "cpus_per_site",
    "clients",
    "transactions",
    "seed",
)


def _config_axes(config: ScenarioConfig) -> Dict[str, object]:
    return {name: getattr(config, name) for name in _CONFIG_AXES}


@dataclass
class ResultCell:
    """One labelled result with its campaign-axis tags."""

    label: str
    result: ScenarioResult
    #: Axis name -> display value (``system`` triples reduced to their
    #: label, config-derived tags always present).
    axes: Dict[str, object] = field(default_factory=dict)
    source: str = "memory"  # "memory" | "artifact"

    def value(self, metric: str) -> float:
        return metric_value(self.result, metric)


@dataclass
class Comparison:
    """Baseline-vs-candidate deltas, paired on the remaining axes."""

    baseline_sel: Dict[str, object]
    candidate_sel: Dict[str, object]
    metrics: Tuple[str, ...]
    #: ``(pair label, {metric: Delta})`` in baseline first-seen order.
    rows: List[Tuple[str, Dict[str, Delta]]]
    #: Baseline pair keys with no matching candidate cell.
    unmatched: List[str]


class ResultSet:
    """Labelled, axis-tagged scenario results plus the query surface."""

    def __init__(
        self,
        cells: Iterable[ResultCell],
        name: str = "",
        spec_hash: Optional[str] = None,
    ):
        self.cells: List[ResultCell] = list(cells)
        self.name = name
        self.spec_hash = spec_hash
        #: Labels the originating spec expands to but the artifact store
        #: had no completed result for (partial campaigns).
        self.missing: List[str] = []
        seen: set = set()
        for cell in self.cells:
            if cell.label in seen:
                raise AnalysisError(f"duplicate cell label: {cell.label!r}")
            seen.add(cell.label)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_results(
        cls,
        items: Iterable[Tuple[str, ScenarioResult, Dict[str, object]]],
        name: str = "",
    ) -> "ResultSet":
        """Wrap ``(label, result, extra_axes)`` triples; config-derived
        axis tags are filled in automatically."""
        cells = [
            ResultCell(
                label,
                result,
                {**_config_axes(result.config), **dict(axes)},
            )
            for label, result, axes in items
        ]
        return cls(cells, name=name)

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[str, ScenarioResult]],
        name: str = "",
    ) -> "ResultSet":
        """Wrap plain ``(label, result)`` pairs (config-derived tags only)."""
        return cls.from_results(
            ((label, result, {}) for label, result in pairs), name=name
        )

    @classmethod
    def from_campaign(
        cls,
        campaign,
        spec: Optional[CampaignSpec] = None,
        name: str = "",
    ) -> "ResultSet":
        """Wrap in-memory campaign output.

        ``campaign`` is a :class:`~repro.runner.CampaignResult` (failed
        cells raise, exactly like ``pairs()``) or an iterable of
        ``(label, result)`` pairs.  With ``spec`` given, each cell is
        additionally tagged with the spec's axis bindings for its label.
        """
        sources: Dict[str, str] = {}
        if hasattr(campaign, "pairs"):
            sources = {c.label: c.source for c in campaign.cells}
            pairs = campaign.pairs()
        else:
            pairs = list(campaign)
        spec_axes: Dict[str, Dict[str, object]] = {}
        spec_hash = None
        if spec is not None:
            spec_axes = {
                label: axes for label, _, axes in spec.expand_cells()
            }
            spec_hash = spec.spec_hash()
            name = name or spec.name
        cells = [
            ResultCell(
                label,
                result,
                {
                    **spec_axes.get(label, {}),
                    **_config_axes(result.config),
                },
                source=sources.get(label, "memory"),
            )
            for label, result in pairs
        ]
        return cls(cells, name=name, spec_hash=spec_hash)

    @classmethod
    def from_artifacts(cls, root: Union[str, Path]) -> "ResultSet":
        """Load a campaign artifact directory.

        With a ``campaign.json`` manifest, cells load in spec-expansion
        order and carry the spec's axis bindings; without one, every
        ``*.json`` cell artifact loads in filename order with
        config-derived tags only.  Spec-hash mismatches — a manifest
        whose hash does not match its own spec, or a cell stamped under
        a different hash than the manifest — raise loudly.
        """
        root = Path(root)
        if not root.is_dir():
            raise AnalysisError(f"no artifact directory at {root}")
        store = ArtifactStore(root)
        manifest = store.load_manifest()
        if manifest is None:
            return cls._from_unmanifested(root)
        try:
            spec = CampaignSpec.from_dict(manifest["spec"])
        except (KeyError, ValueError) as exc:
            raise AnalysisError(
                f"{root / MANIFEST_NAME}: unusable campaign manifest ({exc})"
            ) from exc
        recorded = manifest.get("spec_hash")
        if recorded != spec.spec_hash():
            raise AnalysisError(
                f"{root / MANIFEST_NAME}: recorded spec hash {recorded!r} "
                f"does not match the manifest's own spec "
                f"({spec.spec_hash()!r}) — the manifest was edited or "
                "corrupted; re-run the campaign to refresh provenance"
            )
        cells: List[ResultCell] = []
        missing: List[str] = []
        for label, _config, axes in spec.expand_cells():
            data = cls._read_cell(store.path_for(label))
            if data is None:
                missing.append(label)
                continue
            cell_hash = data.get("spec_hash")
            if cell_hash is not None and cell_hash != recorded:
                raise AnalysisError(
                    f"cell {label!r} in {root} was recorded under spec "
                    f"hash {cell_hash!r} but the campaign manifest says "
                    f"{recorded!r} — artifacts from different campaign "
                    "revisions are mixed; re-run the campaign"
                )
            result = ScenarioResult.from_dict(data["result"])
            cells.append(
                ResultCell(
                    label,
                    result,
                    {**axes, **_config_axes(result.config)},
                    source="artifact",
                )
            )
        if not cells:
            raise AnalysisError(
                f"{root} holds no completed cell artifacts for campaign "
                f"{spec.name!r} ({len(missing)} cell(s) missing)"
            )
        out = cls(cells, name=str(manifest.get("campaign", spec.name)),
                  spec_hash=recorded)
        out.missing = missing
        return out

    @classmethod
    def _from_unmanifested(cls, root: Path) -> "ResultSet":
        """Manifest-less store: load every readable cell artifact in
        filename order; stray non-cell JSON files (notes, redirected
        reports, ...) are skipped, mirroring ``ArtifactStore.load``'s
        tolerance."""
        cells = []
        for path in sorted(root.glob("*.json")):
            if path.name == MANIFEST_NAME:
                continue
            try:
                data = cls._read_cell(path)
                if data is None:
                    continue
                result = ScenarioResult.from_dict(data["result"])
            except (AnalysisError, ValueError, KeyError, TypeError):
                continue
            cells.append(
                ResultCell(
                    str(data.get("label", path.stem)),
                    result,
                    _config_axes(result.config),
                    source="artifact",
                )
            )
        if not cells:
            raise AnalysisError(
                f"{root} holds no readable cell artifacts "
                f"(and no {MANIFEST_NAME} manifest)"
            )
        return cls(cells, name=root.name)

    @staticmethod
    def _read_cell(path: Path) -> Optional[dict]:
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise AnalysisError(f"{path}: unreadable cell artifact ({exc})")
        if not isinstance(data, dict) or "result" not in data:
            raise AnalysisError(f"{path}: not a cell artifact")
        return data

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[ResultCell]:
        return iter(self.cells)

    def labels(self) -> List[str]:
        return [cell.label for cell in self.cells]

    def get(self, label: str) -> ResultCell:
        for cell in self.cells:
            if cell.label == label:
                return cell
        raise AnalysisError(
            f"no cell labelled {label!r} (have: {', '.join(self.labels())})"
        )

    def value(self, label: str, metric: str) -> float:
        return self.get(label).value(metric)

    def axis_values(self, axis: str) -> List[object]:
        """Distinct values of ``axis``, first-seen order; cells without
        the axis are skipped."""
        out: List[object] = []
        for cell in self.cells:
            if axis in cell.axes and cell.axes[axis] not in out:
                out.append(cell.axes[axis])
        return out

    def select(self, **axes) -> "ResultSet":
        """Cells whose tags match every constraint (tuple/list/set
        values mean membership)."""

        def match(cell: ResultCell) -> bool:
            for name, wanted in axes.items():
                if name not in cell.axes:
                    return False
                have = cell.axes[name]
                if isinstance(wanted, (list, tuple, set, frozenset)):
                    if have not in wanted:
                        return False
                elif have != wanted:
                    return False
            return True

        out = ResultSet(
            [c for c in self.cells if match(c)],
            name=self.name,
            spec_hash=self.spec_hash,
        )
        out.missing = list(self.missing)
        return out

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def group_by(self, *axes: str, metric: str) -> Series:
        """One point per distinct axis-value combination (first-seen
        order), aggregated over the matching cells' replicates."""
        if not axes:
            raise AnalysisError("group_by needs at least one axis")
        groups: Dict[object, List[float]] = {}
        order: List[object] = []
        for cell in self.cells:
            if any(axis not in cell.axes for axis in axes):
                continue
            key = (
                cell.axes[axes[0]]
                if len(axes) == 1
                else tuple(cell.axes[axis] for axis in axes)
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(cell.value(metric))
        return Series(
            metric=metric,
            axis=",".join(axes),
            points=[(key, summarize(groups[key])) for key in order],
        )

    def pivot(self, row_axis: str, col_axis: str, metric: str) -> Table:
        """``metric`` over ``row_axis`` x ``col_axis``; both orders are
        first-seen, missing combinations stay NaN."""
        rows: List[object] = []
        cols: List[object] = []
        groups: Dict[Tuple[object, object], List[float]] = {}
        for cell in self.cells:
            if row_axis not in cell.axes or col_axis not in cell.axes:
                continue
            row, col = cell.axes[row_axis], cell.axes[col_axis]
            if row not in rows:
                rows.append(row)
            if col not in cols:
                cols.append(col)
            groups.setdefault((row, col), []).append(cell.value(metric))
        return Table(
            metric=metric,
            row_axis=row_axis,
            col_axis=col_axis,
            rows=tuple(rows),
            cols=tuple(cols),
            cells={key: summarize(values) for key, values in groups.items()},
        )

    def table(
        self,
        metrics: Iterable[str],
        by: Optional[str] = None,
    ) -> Table:
        """Metrics as columns: one row per cell label (default) or per
        value of the ``by`` axis (aggregated)."""
        metrics = tuple(metrics)
        if not metrics:
            raise AnalysisError("table needs at least one metric")
        if by is None:
            rows = tuple(self.labels())
            cells = {
                (cell.label, metric): summarize([cell.value(metric)])
                for cell in self.cells
                for metric in metrics
            }
            row_axis = "cell"
        else:
            series_by_metric = {
                metric: self.group_by(by, metric=metric) for metric in metrics
            }
            rows = tuple(self.axis_values(by))
            cells = {
                (row, metric): series_by_metric[metric].get(row)
                for row in rows
                for metric in metrics
            }
            row_axis = by
        return Table(
            metric="",
            row_axis=row_axis,
            col_axis="metric",
            rows=rows,
            cols=metrics,
            cells=cells,
        )

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def compare(
        self,
        baseline: Dict[str, object],
        candidate: Dict[str, object],
        metrics: Iterable[str],
    ) -> Comparison:
        """Delta table between two selections, paired on every axis the
        selectors don't fix (the protocol-comparison and
        regression-check primitive)."""
        metrics = tuple(metrics)
        base = self.select(**baseline)
        cand = self.select(**candidate)
        if not base.cells:
            raise AnalysisError(f"baseline selection {baseline!r} is empty")
        if not cand.cells:
            raise AnalysisError(f"candidate selection {candidate!r} is empty")
        fixed = set(baseline) | set(candidate)
        # Pair on the axes that vary *within* a selection.  Axes that
        # only differ between the selections (sites for a centralized-
        # vs-replicated comparison, say) are consequences of the
        # selectors, not pairing dimensions — keying on them would
        # match nothing.
        _missing = object()
        varying: set = set()
        for side in (base.cells, cand.cells):
            for name in {axis for cell in side for axis in cell.axes}:
                if name in fixed:
                    continue
                values = {cell.axes.get(name, _missing) for cell in side}
                if len(values) > 1:
                    varying.add(name)

        def pair_key(cell: ResultCell) -> Tuple[Tuple[str, object], ...]:
            return tuple(
                sorted(
                    (name, value)
                    for name, value in cell.axes.items()
                    if name in varying
                )
            )

        def grouped(rs: "ResultSet") -> Dict[Tuple, List[ResultCell]]:
            out: Dict[Tuple, List[ResultCell]] = {}
            for cell in rs.cells:
                out.setdefault(pair_key(cell), []).append(cell)
            return out

        base_groups = grouped(base)
        cand_groups = grouped(cand)
        rows: List[Tuple[str, Dict[str, Delta]]] = []
        unmatched: List[str] = []
        for key, base_cells in base_groups.items():
            label = (
                ", ".join(f"{name}={value}" for name, value in key)
                or "(all)"
            )
            if key not in cand_groups:
                unmatched.append(label)
                continue
            cand_cells = cand_groups[key]
            deltas = {}
            for metric in metrics:
                deltas[metric] = Delta(
                    summarize(c.value(metric) for c in base_cells).mean,
                    summarize(c.value(metric) for c in cand_cells).mean,
                )
            rows.append((label, deltas))
        return Comparison(
            baseline_sel=dict(baseline),
            candidate_sel=dict(candidate),
            metrics=metrics,
            rows=rows,
            unmatched=unmatched,
        )
