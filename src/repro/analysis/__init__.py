"""repro.analysis — the unified results-analysis API.

Every result-consuming layer — the runner summary, the figure/table
benchmarks, the examples, ``RegressionSuite`` and the ``report``
subcommand — derives and formats its numbers through this package;
nothing outside it re-implements a metric or a table.

Contract:

* **Metrics are named.**  ``metric_value(result, "throughput_tpm")``
  is the only way a number leaves a
  :class:`~repro.core.experiment.ScenarioResult`; names resolve through
  the registry (:mod:`repro.analysis.metrics`), including parameterized
  families such as ``abort_rate[payment-long]``.  Empty underlying data
  yields NaN, never a fake zero; renderers show NaN as ``–`` (text),
  an empty field (CSV) or ``null`` (JSON).
* **Cells are axis-tagged.**  A :class:`ResultSet` tags each cell with
  its campaign-axis values (protocol, sites, clients, fault, system,
  seed, ...) — recovered from spec provenance for artifact stores,
  from the spec or the config for in-memory runs — and ``group_by`` /
  ``pivot`` / ``compare`` operate on those tags.  Loading an artifact
  store whose spec hashes disagree raises :class:`AnalysisError`.
* **Aggregation is deterministic.**  Group statistics (mean, min/max,
  seed-replicate 95 % CI) are independent of cell ordering; row and
  column orders are first-seen, i.e. spec-expansion order.
* **Presentation is canonical.**  Figures 5-7 and Tables 1-2 are named
  builders (:mod:`repro.analysis.figures`) whose rendered text is
  byte-identical to the historical benchmark output, and
  :func:`summary_text` is the byte-identical runner summary.
"""

from .aggregate import Delta, Series, Stat, Table, summarize, t_critical_95
from .figures import (
    ECDF_PROBS,
    FIGURES,
    TABLE1_COLUMNS,
    TX_CLASSES,
    class_abort_table,
    ecdf_quantile_table,
    figure_table,
    render_figure,
)
from .metrics import (
    HEADLINE_METRICS,
    Metric,
    MetricError,
    available_metric_families,
    available_metrics,
    get_metric,
    metric_value,
    register_metric,
    register_metric_family,
)
from .render import (
    comparison_payload,
    format_table,
    render_comparison,
    render_csv,
    render_markdown,
    render_text,
    summary_text,
    table_payload,
)
from .report import load_resultset, run_report
from .resultset import AnalysisError, Comparison, ResultCell, ResultSet

__all__ = [
    "AnalysisError",
    "Comparison",
    "Delta",
    "ECDF_PROBS",
    "FIGURES",
    "HEADLINE_METRICS",
    "Metric",
    "MetricError",
    "ResultCell",
    "ResultSet",
    "Series",
    "Stat",
    "TABLE1_COLUMNS",
    "TX_CLASSES",
    "Table",
    "available_metric_families",
    "available_metrics",
    "class_abort_table",
    "comparison_payload",
    "ecdf_quantile_table",
    "figure_table",
    "format_table",
    "render_comparison",
    "table_payload",
    "get_metric",
    "load_resultset",
    "metric_value",
    "register_metric",
    "register_metric_family",
    "render_csv",
    "render_figure",
    "render_markdown",
    "render_text",
    "run_report",
    "summarize",
    "summary_text",
    "t_critical_95",
]
