"""The named metric registry: ``name -> typed extractor``.

Mirrors the replication-protocol and campaign registries: every number a
report, benchmark, example or regression check derives from a
:class:`~repro.core.experiment.ScenarioResult` is a registered
:class:`Metric`, so CLIs and docs reference metrics by string and the
derivation lives in exactly one place.

Conventions:

* Extractors return ``float``; an extractor whose underlying data is
  absent (no transactions of the class, no resource samples, no
  completed rejoin, ...) returns ``math.nan`` — *not* ``0.0`` — so
  reports render a dash instead of a fake zero.
* Names are flat strings (``throughput_tpm``); parameterized families
  use ``base[arg]`` (``abort_rate[payment-long]``) and resolve through
  :func:`get_metric` like any other name.
* Each metric carries its unit and a default text format so renderers
  never invent either.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.experiment import ScenarioResult
from ..core.metrics import quantiles
from ..monitors import applicable_monitors

__all__ = [
    "HEADLINE_METRICS",
    "Metric",
    "MetricError",
    "available_metric_families",
    "available_metrics",
    "get_metric",
    "metric_value",
    "register_metric",
    "register_metric_family",
]


class MetricError(ValueError):
    """An unknown metric name or an invalid registration."""


@dataclass(frozen=True)
class Metric:
    """One named, typed extractor over a ScenarioResult."""

    name: str
    unit: str
    description: str
    extract: Callable[[ScenarioResult], float]
    fmt: str = "{:.1f}"

    def __call__(self, result: ScenarioResult) -> float:
        return float(self.extract(result))


_REGISTRY: Dict[str, Metric] = {}
#: Parameterized families: base name -> (unit, description, fmt, factory).
_FAMILIES: Dict[str, Tuple[str, str, str, Callable[[str], Callable]]] = {}

_FAMILY_NAME = re.compile(r"^(?P<base>[A-Za-z0-9_]+)\[(?P<arg>[^\]]+)\]$")


def register_metric(metric: Metric, replace: bool = False) -> Metric:
    """Register ``metric`` under ``metric.name``; duplicate names raise
    unless ``replace``."""
    if not isinstance(metric, Metric):
        raise MetricError(f"expected a Metric, got {type(metric).__name__}")
    if metric.name in _REGISTRY and not replace:
        raise MetricError(f"metric {metric.name!r} is already registered")
    _REGISTRY[metric.name] = metric
    return metric


def register_metric_family(
    base: str,
    unit: str,
    description: str,
    factory: Callable[[str], Callable[[ScenarioResult], float]],
    fmt: str = "{:.2f}",
    replace: bool = False,
) -> None:
    """Register a ``base[arg]`` family; ``factory(arg)`` builds the
    extractor for one concrete argument."""
    if base in _FAMILIES and not replace:
        raise MetricError(f"metric family {base!r} is already registered")
    _FAMILIES[base] = (unit, description, fmt, factory)


def get_metric(name: str) -> Metric:
    """Resolve ``name`` (plain or ``family[arg]``); MetricError names
    the available options on a miss."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    match = _FAMILY_NAME.match(name)
    if match and match.group("base") in _FAMILIES:
        unit, description, fmt, factory = _FAMILIES[match.group("base")]
        arg = match.group("arg")
        return Metric(
            name=name,
            unit=unit,
            description=f"{description} ({arg})",
            extract=factory(arg),
            fmt=fmt,
        )
    raise MetricError(
        f"unknown metric {name!r} (available: "
        f"{', '.join(available_metrics())}; families: "
        f"{', '.join(f'{base}[...]' for base in sorted(_FAMILIES))})"
    )


def available_metrics() -> Tuple[str, ...]:
    """Registered plain metric names, in registration order."""
    return tuple(_REGISTRY)


def available_metric_families() -> Tuple[str, ...]:
    """Registered parameterized family base names, sorted."""
    return tuple(sorted(_FAMILIES))


def metric_value(result: ScenarioResult, name: str) -> float:
    """``get_metric(name)(result)`` — the one-call form."""
    return get_metric(name)(result)


# ----------------------------------------------------------------------
# extractors
# ----------------------------------------------------------------------
def _latency_quantile_ms(p: float) -> Callable[[ScenarioResult], float]:
    def extract(result: ScenarioResult) -> float:
        return quantiles(result.metrics.latencies(), (p,))[0] * 1000.0

    return extract


def _cert_quantile_ms(p: float) -> Callable[[ScenarioResult], float]:
    def extract(result: ScenarioResult) -> float:
        certs = result.metrics.certification_latencies()
        return quantiles(certs, (p,))[0] * 1000.0

    return extract


def _throughput(result: ScenarioResult) -> float:
    if not result.metrics.records:
        return math.nan
    return result.metrics.throughput_tpm()


def _mean_latency_ms(result: ScenarioResult) -> float:
    values = result.metrics.latencies()
    if not values:
        return math.nan
    return sum(values) / len(values) * 1000.0


def _abort_rate(result: ScenarioResult) -> float:
    if not result.metrics.records:
        return math.nan
    return result.metrics.abort_rate()


def _abort_rate_for(tx_class: str) -> Callable[[ScenarioResult], float]:
    def extract(result: ScenarioResult) -> float:
        if tx_class == "All":
            return _abort_rate(result)
        if not result.metrics.select(tx_class=tx_class):
            return math.nan
        return result.metrics.abort_rate(tx_class)

    return extract


def _cert_mean_ms(result: ScenarioResult) -> float:
    certs = result.metrics.certification_latencies()
    if not certs:
        return math.nan
    return sum(certs) / len(certs) * 1000.0


def _sampled(
    f: Callable[[ScenarioResult], float]
) -> Callable[[ScenarioResult], float]:
    """NaN when the run produced no resource samples at all."""

    def extract(result: ScenarioResult) -> float:
        if not getattr(result.sampler, "samples", None):
            return math.nan
        return f(result)

    return extract


def _violations(result: ScenarioResult) -> float:
    # NaN (not 0) when the cell ran without any armed monitor: "nothing
    # was checked" must render as a dash, never as a clean zero.  The
    # applicability rules (centralized baselines, monitors that don't
    # understand per-fragment groups) live in ``applicable_monitors``,
    # the same decision that armed — or skipped — them during the run.
    if not applicable_monitors(result.config):
        return math.nan
    return float(len(result.violations))


def _violations_for(monitor: str) -> Callable[[ScenarioResult], float]:
    def extract(result: ScenarioResult) -> float:
        if monitor not in applicable_monitors(result.config):
            return math.nan
        return float(
            sum(1 for v in result.violations if v.monitor == monitor)
        )

    return extract


def _rejoins(
    f: Callable[[Sequence], float]
) -> Callable[[ScenarioResult], float]:
    """NaN when the run completed no rejoin (nothing to measure)."""

    def extract(result: ScenarioResult) -> float:
        events = result.completed_rejoins()
        if not events:
            return math.nan
        return float(f(events))

    return extract


#: The default report columns (the runner summary's headline numbers).
HEADLINE_METRICS = (
    "throughput_tpm",
    "mean_latency_ms",
    "abort_rate",
    "cpu_total",
    "net_kbps",
)

for _metric in (
    Metric(
        "throughput_tpm",
        "tpm",
        "committed transactions per minute",
        _throughput,
        "{:.1f}",
    ),
    Metric(
        "mean_latency_ms",
        "ms",
        "mean committed-transaction latency",
        _mean_latency_ms,
        "{:.1f}",
    ),
    Metric(
        "p50_latency_ms",
        "ms",
        "median committed-transaction latency",
        _latency_quantile_ms(0.50),
        "{:.1f}",
    ),
    Metric(
        "p95_latency_ms",
        "ms",
        "95th-percentile committed-transaction latency",
        _latency_quantile_ms(0.95),
        "{:.1f}",
    ),
    Metric(
        "p99_latency_ms",
        "ms",
        "99th-percentile committed-transaction latency",
        _latency_quantile_ms(0.99),
        "{:.1f}",
    ),
    Metric(
        "abort_rate",
        "%",
        "aborted fraction of all transactions",
        _abort_rate,
        "{:.2f}",
    ),
    Metric(
        "cert_latency_ms",
        "ms",
        "mean certification latency (replicated runs)",
        _cert_mean_ms,
        "{:.1f}",
    ),
    Metric(
        "cert_p50_ms",
        "ms",
        "median certification latency",
        _cert_quantile_ms(0.50),
        "{:.1f}",
    ),
    Metric(
        "cert_p99_ms",
        "ms",
        "99th-percentile certification latency",
        _cert_quantile_ms(0.99),
        "{:.1f}",
    ),
    Metric(
        "cpu_total",
        "0..1",
        "steady-state CPU usage across sites",
        _sampled(lambda r: r.cpu_usage()[0]),
        "{:.3f}",
    ),
    Metric(
        "cpu_protocol",
        "0..1",
        "steady-state CPU usage by real protocol jobs",
        _sampled(lambda r: r.cpu_usage()[1]),
        "{:.4f}",
    ),
    Metric(
        "disk",
        "0..1",
        "steady-state storage utilization",
        _sampled(lambda r: r.disk_usage()),
        "{:.3f}",
    ),
    Metric(
        "net_kbps",
        "KB/s",
        "steady-state fabric traffic",
        _sampled(lambda r: r.network_kbps()),
        "{:.1f}",
    ),
    Metric(
        "net_msgs",
        "packets",
        "total fabric packets transferred",
        lambda r: float(r.capture.total_packets),
        "{:.0f}",
    ),
    Metric(
        "time_to_rejoin",
        "s",
        "mean rejoin-start to live (completed rejoins)",
        _rejoins(lambda es: sum(e.time_to_rejoin() for e in es) / len(es)),
        "{:.2f}",
    ),
    Metric(
        "backlog_replayed",
        "msgs",
        "ordered messages replayed at rejoin install",
        _rejoins(lambda es: sum(e.backlog_replayed for e in es)),
        "{:.0f}",
    ),
    Metric(
        "snapshot_bytes",
        "B",
        "state-transfer snapshot volume",
        _rejoins(lambda es: sum(e.snapshot_bytes for e in es)),
        "{:.0f}",
    ),
    Metric(
        "orphaned_commits",
        "txs",
        "previous-incarnation commits absent from the adopted snapshot",
        _rejoins(lambda es: sum(e.orphaned_commits for e in es)),
        "{:.0f}",
    ),
    Metric(
        "records",
        "txs",
        "transactions completed (commit + abort)",
        lambda r: float(len(r.metrics.records)),
        "{:.0f}",
    ),
    Metric(
        "sim_time",
        "s",
        "simulated seconds the run covered",
        lambda r: float(r.sim_time),
        "{:.1f}",
    ),
    Metric(
        "violations",
        "count",
        "invariant violations flagged by the enabled runtime monitors",
        _violations,
        "{:.0f}",
    ),
):
    register_metric(_metric)

register_metric_family(
    "abort_rate",
    "%",
    "aborted fraction of one transaction class",
    _abort_rate_for,
    fmt="{:.2f}",
)

register_metric_family(
    "violations",
    "count",
    "invariant violations flagged by one runtime monitor",
    _violations_for,
    fmt="{:.0f}",
)
