"""The ``report`` subcommand: artifact directory -> rendered analysis.

``python -m repro.runner report <artifact-dir|campaign>`` loads a
:class:`~repro.analysis.resultset.ResultSet` (a campaign name resolves
to ``REPRO_ARTIFACT_DIR/<campaign>``, the same rule ``run`` uses) and
renders one view:

* default — the campaign summary table, byte-identical to the summary a
  resumed ``run`` prints from the same artifacts;
* ``--figure fig5a|...|table2`` — a paper figure/table, byte-identical
  to the benchmark suite's printed output;
* ``--metric M --by AXIS`` — metrics aggregated along one campaign axis
  (with seed-replicate 95 % CIs where there are replicates);
* ``--metric M --pivot ROW,COL`` — one metric over two axes;
* ``--compare AXIS=BASE,CAND`` — delta table between two slices;
* ``--format text|markdown|csv|json`` — the output encoding.  JSON is
  the machine view: the per-cell metrics/axis-tags payload (plus the
  requested table when a view was selected); CI asserts its schema so
  the artifact -> report path cannot silently rot.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.env import env_str
from .figures import FIGURES, figure_table, render_figure
from .metrics import HEADLINE_METRICS, available_metrics
from .render import (
    comparison_payload,
    render_comparison,
    render_csv,
    render_markdown,
    render_text,
    summary_text,
    table_payload,
)
from .resultset import AnalysisError, ResultSet

__all__ = ["load_resultset", "run_report"]


def load_resultset(target: str) -> ResultSet:
    """Resolve ``target`` — an artifact directory, or a campaign name
    under ``REPRO_ARTIFACT_DIR`` — and load it."""
    path = Path(target)
    if path.is_dir():
        return ResultSet.from_artifacts(path)
    root = env_str("REPRO_ARTIFACT_DIR")
    if root is not None and (Path(root) / target).is_dir():
        return ResultSet.from_artifacts(Path(root) / target)
    hint = (
        f"no directory {root}/{target}"
        if root is not None
        else "REPRO_ARTIFACT_DIR is not set"
    )
    raise AnalysisError(
        f"cannot locate results for {target!r}: not a directory, and {hint}"
    )


def _parse_value(raw: str) -> object:
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _cells_payload(rs: ResultSet, metrics: Sequence[str]) -> Dict[str, object]:
    def sanitize(value: float) -> Optional[float]:
        return None if isinstance(value, float) and math.isnan(value) else value

    return {
        "campaign": rs.name,
        "spec_hash": rs.spec_hash,
        "metrics": list(metrics),
        "cells": [
            {
                "label": cell.label,
                "source": cell.source,
                "axes": dict(cell.axes),
                "metrics": {
                    name: sanitize(cell.value(name)) for name in metrics
                },
            }
            for cell in rs.cells
        ],
        "missing": list(rs.missing),
    }


def run_report(
    target: str,
    metrics: Optional[List[str]] = None,
    by: Optional[str] = None,
    pivot: Optional[str] = None,
    compare: Optional[str] = None,
    figure: Optional[str] = None,
    fmt: str = "text",
) -> str:
    """Execute one report invocation; returns the text to print."""
    selected = sum(x is not None for x in (by, pivot, compare, figure))
    if selected > 1:
        raise AnalysisError(
            "--by, --pivot, --compare and --figure are mutually exclusive"
        )
    rs = load_resultset(target)
    chosen = tuple(metrics) if metrics else HEADLINE_METRICS

    if figure is not None:
        table = figure_table(rs, figure)
        if fmt == "json":
            payload = _cells_payload(rs, chosen)
            payload["figure"] = figure
            payload["table"] = table_payload(table)
            return json.dumps(payload, indent=2)
        # text output keeps the historical leading blank line, so it is
        # byte-identical to what the benchmark suite prints
        return render_figure(table, figure, fmt=fmt)

    if pivot is not None:
        row_axis, sep, col_axis = pivot.partition(",")
        if not sep or not row_axis.strip() or not col_axis.strip():
            raise AnalysisError(f"expected --pivot ROW,COL, got {pivot!r}")
        if len(chosen) != 1:
            raise AnalysisError(
                "--pivot needs exactly one --metric to tabulate"
            )
        table = rs.pivot(row_axis.strip(), col_axis.strip(), chosen[0])
        if fmt == "json":
            payload = _cells_payload(rs, chosen)
            payload["table"] = table_payload(table)
            return json.dumps(payload, indent=2)
        if fmt == "markdown":
            return render_markdown(table, title=chosen[0], ci=True)
        if fmt == "csv":
            return render_csv(table)
        return render_text(table, title=chosen[0], ci=True)

    if compare is not None:
        axis, sep, values = compare.partition("=")
        pair = values.split(",") if sep else []
        if not sep or len(pair) != 2:
            raise AnalysisError(
                f"expected --compare AXIS=BASELINE,CANDIDATE, got {compare!r}"
            )
        comparison = rs.compare(
            {axis.strip(): _parse_value(pair[0].strip())},
            {axis.strip(): _parse_value(pair[1].strip())},
            chosen,
        )
        if fmt == "json":
            payload = _cells_payload(rs, chosen)
            payload["comparison"] = comparison_payload(comparison)
            return json.dumps(payload, indent=2)
        return render_comparison(comparison, markdown=(fmt == "markdown"))

    if by is not None:
        table = rs.table(chosen, by=by)
        if fmt == "json":
            payload = _cells_payload(rs, chosen)
            payload["table"] = table_payload(table)
            return json.dumps(payload, indent=2)
        if fmt == "markdown":
            return render_markdown(table, ci=True)
        if fmt == "csv":
            return render_csv(table)
        return render_text(table, ci=True)

    # default view
    if fmt == "json":
        return json.dumps(
            _cells_payload(rs, metrics or available_metrics()), indent=2
        )
    if fmt in ("markdown", "csv"):
        table = rs.table(chosen)
        return (
            render_markdown(table, ci=False)
            if fmt == "markdown"
            else render_csv(table)
        )
    if metrics:
        # an explicit metric selection must not be silently dropped:
        # render the per-cell metrics table instead of the fixed summary
        return render_text(rs.table(chosen))
    return summary_text(rs.cells)
