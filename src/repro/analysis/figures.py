"""Paper-figure series builders: Figures 5-7 and Tables 1-2 as data.

Each figure the paper's evaluation prints is one named
:class:`Figure`: a builder from a :class:`~repro.analysis.resultset.ResultSet`
to a :class:`~repro.analysis.aggregate.Table`, plus the exact title,
value format and column display names the benchmark suite has always
printed — so ``benchmarks/test_fig*`` and ``python -m repro.runner
report --figure`` produce byte-identical tables from the same results.

Axis conventions: performance-grid cells carry ``system`` (the Figure 5
curve label) and ``clients``; fault-grid cells carry ``fault``
(``none`` / ``random`` / ``bursty``).  Cells missing a figure's axes
are simply not part of that figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.metrics import quantiles
from .aggregate import Stat, Table, summarize
from .render import render_csv, render_markdown, render_text
from .resultset import AnalysisError, ResultSet

__all__ = [
    "ECDF_PROBS",
    "FIGURES",
    "Figure",
    "TABLE1_COLUMNS",
    "TX_CLASSES",
    "class_abort_table",
    "ecdf_quantile_table",
    "figure_table",
    "render_figure",
]

#: The quantiles the Figure 7 ECDF tables report.
ECDF_PROBS = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)

#: Table 1's matched-load columns: (column label, system, clients).
TABLE1_COLUMNS = (
    ("500c x 1CPU", "1 CPU", 500),
    ("1000c x 3CPU", "3 CPU", 1000),
    ("1000c x 3Sites", "3 Sites", 1000),
    ("1500c x 6CPU", "6 CPU", 1500),
    ("1500c x 6Sites", "6 Sites", 1500),
)

#: Table 1/2 row order (paper order, "All" last).
TX_CLASSES = (
    "delivery",
    "neworder",
    "payment-long",
    "payment-short",
    "orderstatus-long",
    "orderstatus-short",
    "stocklevel",
    "All",
)

#: Figure 7's fault-kind display names.
_FIG7_NAMES = {"none": "no faults", "random": "random 5%", "bursty": "bursty 5%"}


@dataclass(frozen=True)
class Figure:
    """One named derived view with its canonical presentation."""

    key: str
    title: str
    build: Callable[[ResultSet], Table]
    #: Value format: a format string or ``value -> str`` callable.
    fmt: object = "{:.1f}"
    #: Column display renames (axis value -> printed header).
    col_names: Optional[Dict[object, str]] = None
    #: Printed name of the row-key column.
    row_header: Optional[str] = None


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def ecdf_quantile_table(
    rs: ResultSet,
    col_axis: str = "fault",
    probs: Tuple[float, ...] = ECDF_PROBS,
    source: str = "latency",
) -> Table:
    """Latency-distribution quantiles: one row per prob (``p50`` style
    labels), one column per ``col_axis`` value.  ``source`` picks the
    sample list: ``"latency"`` (committed transactions) or
    ``"certification"``."""
    if source == "latency":
        samples = lambda r: r.metrics.latencies()
    elif source == "certification":
        samples = lambda r: r.metrics.certification_latencies()
    else:
        raise AnalysisError(f"unknown ECDF source {source!r}")
    rows = tuple(f"p{int(p * 100):02d}" for p in probs)
    cols = tuple(rs.axis_values(col_axis))
    cells: Dict[Tuple[object, object], Stat] = {}
    for col in cols:
        values: list = []
        for cell in rs.select(**{col_axis: col}):
            values.extend(samples(cell.result))
        qs = quantiles(values, probs)
        for row, q in zip(rows, qs):
            cells[(row, col)] = summarize([q])
    return Table(
        metric="",
        row_axis="quantile",
        col_axis=col_axis,
        rows=rows,
        cols=cols,
        cells=cells,
    )


def class_abort_table(
    rs: ResultSet,
    col_axis: str,
    classes: Tuple[str, ...] = TX_CLASSES,
) -> Table:
    """Per-class abort rates (the Tables 1/2 shape): one row per
    transaction class plus ``All``, one column per ``col_axis`` value."""
    cols = tuple(rs.axis_values(col_axis))
    cells: Dict[Tuple[object, object], Stat] = {}
    for col in cols:
        sub = rs.select(**{col_axis: col})
        for tx_class in classes:
            cells[(tx_class, col)] = summarize(
                cell.value(f"abort_rate[{tx_class}]") for cell in sub
            )
    return Table(
        metric="abort_rate",
        row_axis="transaction",
        col_axis=col_axis,
        rows=tuple(classes),
        cols=cols,
        cells=cells,
    )


def _table1(rs: ResultSet) -> Table:
    """Table 1 from a Figure 5 grid: the matched-load column selection.

    Every paper column is always present; a column whose cells are
    missing from the grid renders as NaN dashes — visibly incomplete —
    rather than silently narrowing the table."""
    cells: Dict[Tuple[object, object], Stat] = {}
    for column, system, clients in TABLE1_COLUMNS:
        sub = rs.select(system=system, clients=clients)
        for tx_class in TX_CLASSES:
            cells[(tx_class, column)] = summarize(
                cell.value(f"abort_rate[{tx_class}]") for cell in sub
            )
    return Table(
        metric="abort_rate",
        row_axis="transaction",
        col_axis="column",
        rows=TX_CLASSES,
        cols=tuple(column for column, _, _ in TABLE1_COLUMNS),
        cells=cells,
    )


def _fig5(metric: str) -> Callable[[ResultSet], Table]:
    return lambda rs: rs.pivot("clients", "system", metric)


def _fig6c(rs: ResultSet) -> Table:
    return rs.select(system=("3 Sites", "6 Sites")).pivot(
        "clients", "system", "net_kbps"
    )


def _fig7c(rs: ResultSet) -> Table:
    return rs.table(("cpu_protocol",), by="fault")


def _table2(rs: ResultSet) -> Table:
    return class_abort_table(rs, "fault")


def _scaleout(rs: ResultSet) -> Table:
    return rs.pivot("fragments", "placement", "throughput_tpm")


FIGURES: Dict[str, Figure] = {
    figure.key: figure
    for figure in (
        Figure(
            "fig5a",
            "Figure 5(a): throughput (committed tpm)",
            _fig5("throughput_tpm"),
            "{:.1f}",
        ),
        Figure(
            "fig5b",
            "Figure 5(b): mean latency (ms)",
            _fig5("mean_latency_ms"),
            "{:.1f}",
        ),
        Figure(
            "fig5c",
            "Figure 5(c): abort rate (%)",
            _fig5("abort_rate"),
            "{:.2f}",
        ),
        Figure(
            "fig6a",
            "Figure 6(a): CPU usage (%)",
            _fig5("cpu_total"),
            lambda v: f"{v * 100:5.1f}",
        ),
        Figure(
            "fig6b",
            "Figure 6(b): disk bandwidth usage (%)",
            _fig5("disk"),
            lambda v: f"{v * 100:5.1f}",
        ),
        Figure(
            "fig6c",
            "Figure 6(c): network traffic (KB/s)",
            _fig6c,
            "{:7.1f}",
        ),
        Figure(
            "fig7a",
            "Figure 7(a): transaction latency ECDF quantiles (ms)",
            lambda rs: ecdf_quantile_table(rs, "fault", source="latency"),
            lambda v: f"{v * 1000:8.1f}",
            col_names=dict(_FIG7_NAMES),
            row_header="quantile",
        ),
        Figure(
            "fig7b",
            "Figure 7(b): certification latency ECDF quantiles (ms)",
            lambda rs: ecdf_quantile_table(rs, "fault", source="certification"),
            lambda v: f"{v * 1000:8.1f}",
            col_names=dict(_FIG7_NAMES),
            row_header="quantile",
        ),
        Figure(
            "fig7c",
            "Figure 7(c): CPU usage by protocol jobs (%)",
            _fig7c,
            lambda v: f"{v * 100:5.2f}",
            col_names={"cpu_protocol": "usage"},
            row_header="run",
        ),
        Figure(
            "scaleout",
            "Scale-out: throughput (committed tpm) vs fragment count",
            _scaleout,
            "{:.1f}",
            row_header="fragments",
        ),
        Figure(
            "table1",
            "Table 1: abort rates (%)",
            _table1,
            "{:6.2f}",
            row_header="transaction",
        ),
        Figure(
            "table2",
            "Table 2: abort rates with 3 sites and 1000 clients (%)",
            _table2,
            "{:6.2f}",
            col_names={"none": "no losses", "random": "random 5%",
                       "bursty": "bursty 5%"},
            row_header="transaction",
        ),
    )
}


def figure_table(rs: ResultSet, key: str) -> Table:
    """Build the named figure's table over ``rs``."""
    try:
        figure = FIGURES[key]
    except KeyError:
        raise AnalysisError(
            f"unknown figure {key!r} (available: {', '.join(sorted(FIGURES))})"
        ) from None
    return figure.build(rs)


def render_figure(
    table: Table, key: str, fmt: str = "text"
) -> str:
    """Render a figure table in its canonical presentation."""
    figure = FIGURES[key]
    if fmt == "text":
        return render_text(
            table,
            title=figure.title,
            fmt=figure.fmt,
            row_header=figure.row_header,
            col_names=figure.col_names,
        )
    if fmt == "markdown":
        return render_markdown(
            table,
            title=figure.title,
            fmt=figure.fmt,
            row_header=figure.row_header,
            col_names=figure.col_names,
        )
    if fmt == "csv":
        return render_csv(
            table, row_header=figure.row_header, col_names=figure.col_names
        )
    raise AnalysisError(f"unknown figure format {fmt!r}")
