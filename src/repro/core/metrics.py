"""Observation: per-transaction logs and resource-usage sampling.

The client model logs, for every transaction, the time at which it was
submitted, the time at which it terminated, the outcome and an
identifier (paper §3.2); latency, throughput and abort rate can then be
computed for one or many users and for all or a subclass of the
transactions.  The simulation runtime additionally logs the usage and
queue lengths of every resource (§3.1), which is how Figures 6 and 7(c)
are produced.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .kernel import Entity, Simulator

__all__ = [
    "TxRecord",
    "MetricsCollector",
    "ResourceSample",
    "ResourceSampler",
    "SampleSeries",
    "ecdf",
    "quantiles",
    "qq_points",
]

#: Column order of the compact list encoding used by ``TxRecord.to_list``
#: (one row per record keeps result artifacts small — grids log many
#: thousands of transactions).
TX_RECORD_FIELDS = (
    "tx_id",
    "tx_class",
    "site",
    "submit_time",
    "end_time",
    "outcome",
    "readonly",
    "certification_latency",
    "abort_reason",
)


@dataclass(frozen=True, slots=True)
class TxRecord:
    """One finished transaction as seen by its issuing client."""

    tx_id: int
    tx_class: str
    site: str
    submit_time: float
    end_time: float
    outcome: str  # "commit" | "abort"
    readonly: bool
    certification_latency: float = 0.0
    abort_reason: str = ""

    @property
    def latency(self) -> float:
        return self.end_time - self.submit_time

    @property
    def committed(self) -> bool:
        return self.outcome == "commit"

    def to_list(self) -> List:
        """Compact row encoding, columns as in ``TX_RECORD_FIELDS``."""
        return [getattr(self, name) for name in TX_RECORD_FIELDS]

    @classmethod
    def from_list(cls, row: Sequence) -> "TxRecord":
        return cls(
            tx_id=int(row[0]),
            tx_class=str(row[1]),
            site=str(row[2]),
            submit_time=float(row[3]),
            end_time=float(row[4]),
            outcome=str(row[5]),
            readonly=bool(row[6]),
            certification_latency=float(row[7]),
            abort_reason=str(row[8]),
        )


class MetricsCollector:
    """Accumulates transaction records and answers the paper's questions."""

    def __init__(self) -> None:
        self.records: List[TxRecord] = []

    def record(self, record: TxRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    # selections
    # ------------------------------------------------------------------
    def select(
        self,
        tx_class: Optional[str] = None,
        outcome: Optional[str] = None,
        site: Optional[str] = None,
        predicate: Optional[Callable[[TxRecord], bool]] = None,
    ) -> List[TxRecord]:
        out = []
        for r in self.records:
            if tx_class is not None and r.tx_class != tx_class:
                continue
            if outcome is not None and r.outcome != outcome:
                continue
            if site is not None and r.site != site:
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return out

    def classes(self) -> Tuple[str, ...]:
        return tuple(sorted({r.tx_class for r in self.records}))

    # ------------------------------------------------------------------
    # headline statistics
    # ------------------------------------------------------------------
    def throughput_tpm(self, elapsed: Optional[float] = None) -> float:
        """Committed transactions per minute.

        ``elapsed`` defaults to the span between the first submission and
        the last completion (aborted transactions are not resubmitted,
        §5.1, so they simply don't count)."""
        committed = [r for r in self.records if r.committed]
        if not committed:
            return 0.0
        if elapsed is None:
            start = min(r.submit_time for r in self.records)
            end = max(r.end_time for r in self.records)
            elapsed = end - start
        if elapsed <= 0:
            return 0.0
        return len(committed) * 60.0 / elapsed

    def abort_rate(self, tx_class: Optional[str] = None) -> float:
        """Fraction (0-100 %) of transactions of ``tx_class`` aborted."""
        selected = self.select(tx_class=tx_class)
        if not selected:
            return 0.0
        aborted = sum(1 for r in selected if not r.committed)
        return 100.0 * aborted / len(selected)

    def abort_rate_table(self) -> Dict[str, float]:
        """Per-class abort rates plus the 'All' row of Tables 1 and 2."""
        table = {cls: self.abort_rate(cls) for cls in self.classes()}
        table["All"] = self.abort_rate()
        return table

    def latencies(
        self, tx_class: Optional[str] = None, committed_only: bool = True
    ) -> List[float]:
        outcome = "commit" if committed_only else None
        return [r.latency for r in self.select(tx_class=tx_class, outcome=outcome)]

    def mean_latency(self, tx_class: Optional[str] = None) -> float:
        values = self.latencies(tx_class)
        return sum(values) / len(values) if values else 0.0

    def certification_latencies(self) -> List[float]:
        return [
            r.certification_latency
            for r in self.records
            if r.certification_latency > 0
        ]

    # ------------------------------------------------------------------
    # serialization (runner artifacts, cross-process result transfer)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "fields": list(TX_RECORD_FIELDS),
            "records": [r.to_list() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsCollector":
        fields = tuple(data.get("fields", TX_RECORD_FIELDS))
        if fields != TX_RECORD_FIELDS:
            raise ValueError(f"unknown record encoding: {fields}")
        collector = cls()
        collector.records = [TxRecord.from_list(row) for row in data["records"]]
        return collector


# ----------------------------------------------------------------------
# distribution helpers (Figures 4 and 7)
# ----------------------------------------------------------------------
def ecdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF: sorted values and cumulative ratios (Figure 7)."""
    ordered = sorted(values)
    n = len(ordered)
    ratios = [(i + 1) / n for i in range(n)]
    return ordered, ratios


def ecdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of ``values`` less than or equal to ``x``."""
    ordered = sorted(values)
    return bisect.bisect_right(ordered, x) / len(ordered) if ordered else 0.0


def quantiles(values: Sequence[float], probs: Iterable[float]) -> List[float]:
    """Linear-interpolation quantiles of ``values`` at ``probs``."""
    ordered = sorted(values)
    if not ordered:
        return [math.nan for _ in probs]
    out = []
    n = len(ordered)
    for p in probs:
        if not 0.0 <= p <= 1.0:
            raise ValueError("quantile probs must be in [0, 1]")
        pos = p * (n - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        value = ordered[lo] * (1 - frac) + ordered[hi] * frac
        # interpolation between in-range values can escape the range by
        # one ulp; clamp so quantiles always lie within the sample
        out.append(min(max(value, ordered[lo]), ordered[hi]))
    return out


def qq_points(
    sample_a: Sequence[float], sample_b: Sequence[float], points: int = 50
) -> List[Tuple[float, float]]:
    """Quantile-quantile pairs for the Figure 4 validation plots.

    Returns ``points`` (quantile-of-a, quantile-of-b) pairs; a model that
    approximates the real system puts these near the diagonal."""
    probs = [i / (points - 1) for i in range(points)]
    qa = quantiles(sample_a, probs)
    qb = quantiles(sample_b, probs)
    return list(zip(qa, qb))


# ----------------------------------------------------------------------
# resource usage sampling (Figure 6)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ResourceSample:
    """Per-interval resource usage (not cumulative): each sample covers
    the window ending at ``time``."""

    time: float
    cpu_total: float  # mean across sampled CPU pools, 0..1
    cpu_real: float  # fraction spent in real (protocol) jobs
    disk: float  # storage utilization, 0..1
    net_bytes: int  # fabric bytes transferred during the window

    def to_list(self) -> List:
        return [self.time, self.cpu_total, self.cpu_real, self.disk, self.net_bytes]

    @classmethod
    def from_list(cls, row: Sequence) -> "ResourceSample":
        return cls(
            time=float(row[0]),
            cpu_total=float(row[1]),
            cpu_real=float(row[2]),
            disk=float(row[3]),
            net_bytes=int(row[4]),
        )


class SampleSeries:
    """A finished sequence of :class:`ResourceSample` plus its interval.

    This is the serializable, simulator-free view of a run's resource
    usage: :class:`ResourceSampler` produces one (``series()``) and
    deserialized :class:`~repro.core.experiment.ScenarioResult` objects
    carry one in the sampler slot — both answer the same steady-state
    questions with identical arithmetic.
    """

    def __init__(self, samples: Sequence[ResourceSample], interval: float):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.samples: List[ResourceSample] = list(samples)
        self.interval = interval

    # -- steady-state statistics (first/last 20 % trimmed, >=1 kept) ----
    def _steady_window(self) -> List[ResourceSample]:
        n = len(self.samples)
        if n == 0:
            return []
        lo = n // 5
        hi = max(lo + 1, n - n // 5)
        return self.samples[lo:hi]

    def mean_cpu(self) -> Tuple[float, float]:
        """Steady-state (total, real-job) CPU usage, 0..1."""
        window = self._steady_window()
        if not window:
            return 0.0, 0.0
        total = sum(s.cpu_total for s in window) / len(window)
        real = sum(s.cpu_real for s in window) / len(window)
        return total, real

    def mean_disk(self) -> float:
        window = self._steady_window()
        if not window:
            return 0.0
        return sum(s.disk for s in window) / len(window)

    def net_kbytes_per_second(self) -> float:
        window = self._steady_window()
        if not window:
            return 0.0
        per_second = sum(s.net_bytes for s in window) / (
            len(window) * self.interval
        )
        return per_second / 1024.0

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "samples": [s.to_list() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SampleSeries":
        return cls(
            [ResourceSample.from_list(row) for row in data["samples"]],
            float(data["interval"]),
        )


class ResourceSampler(Entity):
    """Samples CPU/disk/network usage per interval during a run.

    Utilizations are interval deltas of the resources' busy-time
    counters, so ramp-up and drain phases do not dilute steady-state
    readings; the ``steady_*`` accessors additionally trim the first and
    last fifth of the samples (the paper's runs discard warm-up too).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float = 1.0,
        cpu_pools: Sequence[object] = (),
        storages: Sequence[object] = (),
        capture: Optional[object] = None,
    ):
        super().__init__(sim, "sampler")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.cpu_pools = list(cpu_pools)
        self.storages = list(storages)
        self.capture = capture
        self.samples: List[ResourceSample] = []
        self._started = False
        self._last_cpu: List[Tuple[float, float]] = []
        self._last_disk: List[float] = []
        self._last_net = 0

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._last_cpu = [self._pool_busy(pool) for pool in self.cpu_pools]
        self._last_disk = [s.stats.busy_time for s in self.storages]
        self._last_net = self.capture.total_bytes if self.capture else 0
        self.call(self.interval, self._tick)

    def _pool_busy(self, pool) -> Tuple[float, float]:
        """(sim, real) cumulative busy seconds over a pool's CPUs,
        including the running slice of in-progress jobs.

        Reads the counters directly — no ``dict`` copy per CPU per tick;
        sampling must stay invisible next to the work it observes."""
        sim_busy = real_busy = 0.0
        now = self.now
        for cpu in pool.cpus:
            counters = cpu.busy_time
            sim_part = counters["sim"]
            real_part = counters["real"]
            current = cpu._current
            if current is not None:
                if current.kind == "sim":
                    sim_part = sim_part + (now - cpu._current_started)
                else:
                    real_part = real_part + (now - cpu._current_started)
            sim_busy += sim_part
            real_busy += real_part
        return sim_busy, real_busy

    def _tick(self) -> None:
        # Running sums instead of per-tick fraction lists: same additions
        # in the same order as summing the lists, no allocation.
        cpu_total = cpu_real = 0.0
        if self.cpu_pools:
            total_sum = real_sum = 0.0
            last_cpu = self._last_cpu
            for i, pool in enumerate(self.cpu_pools):
                now_busy = self._pool_busy(pool)
                window = self.interval * len(pool.cpus)
                delta_sim = now_busy[0] - last_cpu[i][0]
                delta_real = now_busy[1] - last_cpu[i][1]
                last_cpu[i] = now_busy
                total_sum += (delta_sim + delta_real) / window
                real_sum += delta_real / window
            cpu_total = total_sum / len(self.cpu_pools)
            cpu_real = real_sum / len(self.cpu_pools)
        disk = 0.0
        if self.storages:
            disk_sum = 0.0
            last_disk = self._last_disk
            for i, storage in enumerate(self.storages):
                busy = storage.stats.busy_time
                window = self.interval * storage.concurrency
                disk_sum += min(1.0, (busy - last_disk[i]) / window)
                last_disk[i] = busy
            disk = disk_sum / len(self.storages)
        net_now = self.capture.total_bytes if self.capture else 0
        net_delta = net_now - self._last_net
        self._last_net = net_now
        self.samples.append(
            ResourceSample(self.now, cpu_total, cpu_real, disk, net_delta)
        )
        self.call(self.interval, self._tick)

    # ------------------------------------------------------------------
    def series(self) -> SampleSeries:
        """The samples as a simulator-free :class:`SampleSeries`."""
        return SampleSeries(self.samples, self.interval)

    def _steady_window(self) -> List[ResourceSample]:
        """Samples with the first and last 20 % trimmed (>=1 retained)."""
        return self.series()._steady_window()

    def mean_cpu(self) -> Tuple[float, float]:
        """Steady-state (total, real-job) CPU usage, 0..1."""
        return self.series().mean_cpu()

    def mean_disk(self) -> float:
        return self.series().mean_disk()

    def net_kbytes_per_second(self) -> float:
        return self.series().net_kbytes_per_second()
