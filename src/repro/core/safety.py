"""Off-line safety checking (paper §5.3).

After a simulation finishes, all operational sites must have committed
**exactly the same sequence of transactions**; this is the consistency
condition the DBSM approach guarantees and the property the fault
campaigns verify.  Each replica appends every certified-commit decision
to a :class:`CommitLog`; :func:`check_consistency` compares logs after
the run, tolerating only a *prefix* relationship for sites that crashed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "CommitLog",
    "SafetyViolation",
    "check_consistency",
    "describe_divergence",
]


@dataclass
class CommitLog:
    """The ordered commit decisions taken at one site."""

    site: str
    #: (global sequence number, transaction id) in decision order.
    entries: List[Tuple[int, int]] = field(default_factory=list)
    crashed: bool = False

    def append(self, global_seq: int, tx_id: int) -> None:
        if self.entries and global_seq <= self.entries[-1][0]:
            raise SafetyViolation(
                f"{self.site}: commit sequence not monotonic "
                f"({global_seq} after {self.entries[-1][0]})"
            )
        self.entries.append((global_seq, tx_id))

    def sequence(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self.entries)

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "entries": [list(entry) for entry in self.entries],
            "crashed": self.crashed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CommitLog":
        return cls(
            site=str(data["site"]),
            entries=[(int(seq), int(tx)) for seq, tx in data["entries"]],
            crashed=bool(data["crashed"]),
        )


class SafetyViolation(AssertionError):
    """Raised when replicas disagree on the committed sequence."""


def check_consistency(logs: Sequence[CommitLog]) -> Dict[str, int]:
    """Verify all operational sites committed the same sequence.

    Crashed sites must have committed a *prefix* of the agreed sequence
    (they stopped mid-stream, which is fine); operational sites must
    match exactly.  Returns ``{site: committed_count}`` on success and
    raises :class:`SafetyViolation` otherwise.
    """
    operational = [log for log in logs if not log.crashed]
    if not operational:
        return {log.site: len(log.entries) for log in logs}

    reference = operational[0].sequence()
    for log in operational[1:]:
        if log.sequence() != reference:
            raise SafetyViolation(
                f"{log.site} and {operational[0].site} committed different "
                f"sequences: {_diff(reference, log.sequence())}"
            )
    for log in logs:
        if not log.crashed:
            continue
        seq = log.sequence()
        if seq != reference[: len(seq)]:
            raise SafetyViolation(
                f"crashed site {log.site} is not a prefix of the agreed "
                f"sequence: {_diff(reference[:len(seq)], seq)}"
            )
    return {log.site: len(log.entries) for log in logs}


def describe_divergence(
    a: Tuple[Tuple[int, int], ...], b: Tuple[Tuple[int, int], ...]
) -> str:
    """Human-readable first divergence between two commit sequences.

    Shared by the post-hoc check above and the streaming
    ``one-copy-sr`` monitor (:mod:`repro.monitors.serializability`), so
    both report a disagreement in the same vocabulary."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return f"first divergence at index {i}: {ea} vs {eb}"
    return f"length mismatch: {len(a)} vs {len(b)}"


_diff = describe_divergence
