"""Simulation core: kernel, centralized runtime, faults, observation.

The SSF-style discrete-event kernel, the centralized simulation runtime
that executes real protocol code on simulated CPUs (the paper's §2
contribution), the runtime abstraction protocol code is written against,
fault injection, metrics, safety checking and scenario assembly.
"""

from .clock import CostModelTimer, CpuCostModel, ProfilingTimer, WallClockTimer
from .cpu import CpuPool, Job, REAL_JOB, SIM_JOB, SimulatedCpu
from .csrt import MEASURED, MODELED, RuntimeInterceptor, SiteRuntime
from .experiment import Scenario, ScenarioConfig, ScenarioResult, Site
from .faults import (
    FaultInjector,
    FaultPlan,
    bursty_loss,
    clock_drift,
    random_loss,
    scheduling_latency,
)
from .kernel import MS, US, Entity, Event, Process, Signal, SimulationError, Simulator
from .metrics import (
    MetricsCollector,
    ResourceSampler,
    SampleSeries,
    TxRecord,
    ecdf,
    qq_points,
    quantiles,
)
from .regression import Regression, RegressionSuite, ScenarioBaseline
from .runtime_api import (
    NativeProtocolRuntime,
    ProtocolRuntime,
    SimulatedProtocolRuntime,
)
from .safety import CommitLog, SafetyViolation, check_consistency

__all__ = [
    "CostModelTimer",
    "CpuCostModel",
    "ProfilingTimer",
    "WallClockTimer",
    "CpuPool",
    "Job",
    "REAL_JOB",
    "SIM_JOB",
    "SimulatedCpu",
    "MEASURED",
    "MODELED",
    "RuntimeInterceptor",
    "SiteRuntime",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "Site",
    "FaultInjector",
    "FaultPlan",
    "bursty_loss",
    "clock_drift",
    "random_loss",
    "scheduling_latency",
    "MS",
    "US",
    "Entity",
    "Event",
    "Process",
    "Signal",
    "SimulationError",
    "Simulator",
    "MetricsCollector",
    "ResourceSampler",
    "SampleSeries",
    "TxRecord",
    "ecdf",
    "qq_points",
    "quantiles",
    "NativeProtocolRuntime",
    "ProtocolRuntime",
    "SimulatedProtocolRuntime",
    "CommitLog",
    "SafetyViolation",
    "check_consistency",
    "Regression",
    "RegressionSuite",
    "ScenarioBaseline",
]
