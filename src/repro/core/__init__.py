"""Simulation core: kernel, centralized runtime, faults, observation.

The SSF-style discrete-event kernel, the centralized simulation runtime
that executes real protocol code on simulated CPUs (the paper's §2
contribution), the runtime abstraction protocol code is written against,
fault injection, metrics, safety checking and scenario assembly.

**Contract.** Build an experiment from a declarative
:class:`ScenarioConfig`, run it to completion, and return a
:class:`ScenarioResult` carrying every observable the paper's figures
need — with faults (crash / recover / partition / heal plus the rate
faults) injected only through the runtime boundary.

**Invariants.**

* *Determinism* — under the modeled clock, a run is a pure function of
  ``(config, seed)``: bit-identical timings, outcomes and commit logs
  on every execution path (direct, ``workers=1``, process pool);
* *Faithful accounting* — real protocol code is charged to the
  simulated CPU it ran on, with the Δ1 correction for events it
  schedules (Figure 1(b));
* *Safety checkable* — every commit decision of every site is in the
  result's commit logs, so §5.3 consistency (operational sites
  identical; crashed sites a prefix; rejoined sites bit-identical) is
  decidable off-line.
"""

from .clock import CostModelTimer, CpuCostModel, ProfilingTimer, WallClockTimer
from .cpu import CpuPool, Job, REAL_JOB, SIM_JOB, SimulatedCpu
from .csrt import MEASURED, MODELED, RuntimeInterceptor, SiteRuntime
from .experiment import Scenario, ScenarioConfig, ScenarioResult, Site
from .faults import (
    FAULT_ACTIONS,
    FaultInjector,
    FaultPlan,
    bursty_loss,
    clock_drift,
    crash_recover,
    partition_heal,
    random_loss,
    scheduling_latency,
)
from .kernel import MS, US, Entity, Event, Process, Signal, SimulationError, Simulator
from .metrics import (
    MetricsCollector,
    ResourceSampler,
    SampleSeries,
    TxRecord,
    ecdf,
    qq_points,
    quantiles,
)
from .regression import Regression, RegressionSuite, ScenarioBaseline
from .runtime_api import (
    NativeProtocolRuntime,
    ProtocolRuntime,
    SimulatedProtocolRuntime,
)
from .safety import CommitLog, SafetyViolation, check_consistency

__all__ = [
    "CostModelTimer",
    "CpuCostModel",
    "ProfilingTimer",
    "WallClockTimer",
    "CpuPool",
    "Job",
    "REAL_JOB",
    "SIM_JOB",
    "SimulatedCpu",
    "MEASURED",
    "MODELED",
    "RuntimeInterceptor",
    "SiteRuntime",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "Site",
    "FAULT_ACTIONS",
    "FaultInjector",
    "FaultPlan",
    "bursty_loss",
    "clock_drift",
    "crash_recover",
    "partition_heal",
    "random_loss",
    "scheduling_latency",
    "MS",
    "US",
    "Entity",
    "Event",
    "Process",
    "Signal",
    "SimulationError",
    "Simulator",
    "MetricsCollector",
    "ResourceSampler",
    "SampleSeries",
    "TxRecord",
    "ecdf",
    "qq_points",
    "quantiles",
    "NativeProtocolRuntime",
    "ProtocolRuntime",
    "SimulatedProtocolRuntime",
    "CommitLog",
    "SafetyViolation",
    "check_consistency",
    "Regression",
    "RegressionSuite",
    "ScenarioBaseline",
]
