"""Simulated CPUs: the resource real and simulated jobs compete for.

The paper (§2.2) models a CPU as a boolean busy flag plus a queue of
pending jobs with durations.  Simulated jobs (transaction processing
operations) have durations known in advance; real jobs (protocol code) are
executed when dequeued and their *measured* duration keeps the CPU busy.
Real jobs have priority: a running simulated job is preempted — its
remaining duration is put back at the head of the queue — so protocol code
is never delayed behind modeled transaction work (§3.1).

Per-kind busy-time accounting feeds the resource-usage results of
Figures 6(a) and 7(c).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import Callable, Deque, List, Optional

from .kernel import Entity, Event, Simulator

__all__ = ["Job", "SimulatedCpu", "CpuPool", "SIM_JOB", "REAL_JOB"]

#: Kind marker for modeled jobs with a pre-known duration.
SIM_JOB = "sim"
#: Kind marker for real protocol code measured at execution time.
REAL_JOB = "real"


class Job:
    """A unit of CPU work.

    For ``SIM_JOB`` the ``duration`` is fixed up front and ``on_complete``
    fires when it has been fully served.  For ``REAL_JOB`` the ``execute``
    callable runs the real code and returns the measured duration; the CPU
    is then held busy for that long before ``on_complete`` fires.
    """

    __slots__ = ("kind", "duration", "execute", "on_complete", "tag", "preemptions")

    def __init__(
        self,
        kind: str,
        duration: float = 0.0,
        execute: Optional[Callable[[], float]] = None,
        on_complete: Optional[Callable[[], None]] = None,
        tag: str = "",
    ):
        if kind not in (SIM_JOB, REAL_JOB):
            raise ValueError(f"unknown job kind {kind!r}")
        if kind == REAL_JOB and execute is None:
            raise ValueError("real jobs require an execute callable")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.kind = kind
        self.duration = duration
        self.execute = execute
        self.on_complete = on_complete
        self.tag = tag
        self.preemptions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.kind} tag={self.tag!r} d={self.duration:.6f}>"


class SimulatedCpu(Entity):
    """One processor: busy flag, priority queues, preemption, accounting."""

    def __init__(self, sim: Simulator, name: str = "cpu", speed_scale: float = 1.0):
        super().__init__(sim, name)
        if speed_scale <= 0:
            raise ValueError("speed_scale must be positive")
        #: Durations of *simulated* jobs are divided by this factor, so a
        #: ``speed_scale`` of 2.0 models a CPU twice as fast as profiled.
        self.speed_scale = speed_scale
        self._real_queue: Deque[Job] = deque()
        self._sim_queue: Deque[Job] = deque()
        self._current: Optional[Job] = None
        self._current_started = 0.0
        self._end_event: Optional[Event] = None
        #: Cumulative busy seconds by job kind, for utilization reports.
        self.busy_time = {SIM_JOB: 0.0, REAL_JOB: 0.0}
        self.jobs_completed = {SIM_JOB: 0, REAL_JOB: 0}

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def current_kind(self) -> Optional[str]:
        return self._current.kind if self._current else None

    def queue_length(self) -> int:
        return len(self._real_queue) + len(self._sim_queue)

    def submit(self, job: Job) -> None:
        """Enqueue ``job`` and dispatch, preempting a simulated job if the
        newcomer is real code and the CPU is busy with modeled work."""
        if job.kind == REAL_JOB:
            self._real_queue.append(job)
            if self._current is not None and self._current.kind == SIM_JOB:
                self._preempt_current()
        else:
            self._sim_queue.append(job)
        self._dispatch()

    def utilization(self, elapsed: float) -> dict:
        """Fraction of ``elapsed`` spent busy, split by job kind.

        Includes the in-progress slice of the currently running job so
        sampling mid-run does not under-report.
        """
        busy = dict(self.busy_time)
        if self._current is not None:
            busy[self._current.kind] += self.now - self._current_started
        if elapsed <= 0:
            return {SIM_JOB: 0.0, REAL_JOB: 0.0, "total": 0.0}
        sim_frac = busy[SIM_JOB] / elapsed
        real_frac = busy[REAL_JOB] / elapsed
        return {SIM_JOB: sim_frac, REAL_JOB: real_frac, "total": sim_frac + real_frac}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _preempt_current(self) -> None:
        """Push the running simulated job back with its remaining duration."""
        job = self._current
        assert job is not None and job.kind == SIM_JOB
        assert self._end_event is not None
        self._end_event.cancel()
        served = self.now - self._current_started
        self.busy_time[SIM_JOB] += served
        remaining = max(0.0, (self._end_event.time - self.now)) * self.speed_scale
        job.duration = remaining
        job.preemptions += 1
        self._sim_queue.appendleft(job)
        self._current = None
        self._end_event = None

    def _dispatch(self) -> None:
        if self._current is not None:
            return
        if self._real_queue:
            job = self._real_queue.popleft()
        elif self._sim_queue:
            job = self._sim_queue.popleft()
        else:
            return
        self._current = job
        self._current_started = self.sim._now
        if job.kind == REAL_JOB:
            assert job.execute is not None
            duration = job.execute()
            if duration < 0:
                raise ValueError("measured duration must be non-negative")
            # Real jobs are never preempted (only modeled work is), so
            # their completion needs no cancellable handle.  Inlined
            # fire-and-forget schedule (see Simulator.call): job
            # completions are the single largest event population.
            sim = self.sim
            sim._seq += 1
            _heappush(
                sim._queue, (sim._now + duration, sim._seq, self._complete, (job,))
            )
        else:
            duration = job.duration / self.speed_scale
            self._end_event = self.schedule(duration, self._complete, job)

    def _complete(self, job: Job) -> None:
        assert self._current is job
        self.busy_time[job.kind] += self.sim._now - self._current_started
        self.jobs_completed[job.kind] += 1
        self._current = None
        self._end_event = None
        if job.on_complete is not None:
            job.on_complete()
        self._dispatch()


class CpuPool(Entity):
    """A set of identical CPUs served round-robin (§3.1).

    Placement prefers an idle CPU; failing that, a real job preempts the
    CPU running modeled work, and modeled jobs go to the shortest queue
    with a rotating tie-break so load spreads evenly.
    """

    def __init__(
        self,
        sim: Simulator,
        count: int = 1,
        name: str = "cpus",
        speed_scale: float = 1.0,
    ):
        super().__init__(sim, name)
        if count < 1:
            raise ValueError("need at least one CPU")
        self.cpus: List[SimulatedCpu] = [
            SimulatedCpu(sim, f"{name}[{i}]", speed_scale) for i in range(count)
        ]
        self._rr = 0

    def __len__(self) -> int:
        return len(self.cpus)

    def submit(self, job: Job) -> SimulatedCpu:
        """Place ``job`` on a CPU and return the chosen CPU."""
        cpu = self._choose(job)
        cpu.submit(job)
        return cpu

    def _choose(self, job: Job) -> SimulatedCpu:
        n = len(self.cpus)
        if n == 1:
            # Single-CPU pool (the common configuration): every branch
            # below resolves to that CPU with ``_rr`` left at 0, so the
            # scans are pure overhead on the per-job hot path.
            return self.cpus[0]
        # First choice: an idle CPU, scanning from the rotation point.
        for offset in range(n):
            cpu = self.cpus[(self._rr + offset) % n]
            if not cpu.busy and cpu.queue_length() == 0:
                self._rr = (self._rr + offset + 1) % n
                return cpu
        if job.kind == REAL_JOB:
            # Prefer a CPU running modeled work (it will be preempted)
            # over one already running real code.
            for offset in range(n):
                cpu = self.cpus[(self._rr + offset) % n]
                if cpu.current_kind == SIM_JOB:
                    self._rr = (self._rr + offset + 1) % n
                    return cpu
        best = min(
            range(n),
            key=lambda i: (
                self.cpus[(self._rr + i) % n].queue_length(),
                i,
            ),
        )
        chosen = self.cpus[(self._rr + best) % n]
        self._rr = (self._rr + best + 1) % n
        return chosen

    def utilization(self, elapsed: float) -> dict:
        """Average utilization across all CPUs, split by job kind."""
        totals = {SIM_JOB: 0.0, REAL_JOB: 0.0, "total": 0.0}
        for cpu in self.cpus:
            part = cpu.utilization(elapsed)
            for key in totals:
                totals[key] += part[key]
        return {key: value / len(self.cpus) for key, value in totals.items()}
