"""Automated regression testing over load and fault scenarios (paper §7).

The paper's closing observation: "As different components are modified
by separate developers, the ability to autonomously run a set of
realistic load and fault scenarios and automatically check for
performance or reliability regressions has proved invaluable."  This
module is that harness: a :class:`RegressionSuite` owns a set of named
scenarios, records baseline metrics to JSON, and on later runs replays
the same scenarios and flags

* **reliability regressions** — a safety violation, or a scenario that
  no longer completes its transactions; these always fail;
* **performance regressions** — headline metrics drifting past a
  per-metric relative tolerance against the recorded baseline.

Determinism of the cost-model clock makes the comparison sharp: a clean
tree reproduces its baseline bit-for-bit, so any drift is a real change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import math

from .experiment import Scenario, ScenarioConfig, ScenarioResult
from .safety import SafetyViolation

__all__ = ["RegressionSuite", "Regression", "ScenarioBaseline"]

#: Metrics captured per scenario and their default relative tolerances.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "throughput_tpm": 0.10,
    "mean_latency": 0.15,
    "abort_rate": 0.25,
    "cert_p99": 0.35,
    "protocol_cpu": 0.30,
}
#: Baseline key -> (registered metric name, unit conversion into the
#: historical baseline-file unit).  Extraction goes through the
#: :mod:`repro.analysis` metric registry; the keys (and units: seconds,
#: fractions) are unchanged so recorded baseline files stay comparable.
_BASELINE_SOURCES: Dict[str, Tuple[str, float]] = {
    "throughput_tpm": ("throughput_tpm", 1.0),
    "mean_latency": ("mean_latency_ms", 1e-3),
    "abort_rate": ("abort_rate", 1.0),
    "cert_p99": ("cert_p99_ms", 1e-3),
    "protocol_cpu": ("cpu_protocol", 1.0),
}
#: Metrics where only growth (resp. shrinkage) is a regression.
_HIGHER_IS_BETTER = {"throughput_tpm"}
_ABSOLUTE_FLOOR = {
    # ignore drift below these absolute values (noise around zero)
    "abort_rate": 0.5,  # percentage points
    "cert_p99": 0.002,  # seconds
    "protocol_cpu": 0.002,  # fraction
}


@dataclass(frozen=True)
class Regression:
    """One detected regression."""

    scenario: str
    metric: str
    baseline: float
    measured: float
    kind: str  # "performance" | "reliability"

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.scenario}.{self.metric}: "
            f"baseline {self.baseline:.4g}, measured {self.measured:.4g}"
        )


@dataclass
class ScenarioBaseline:
    """Recorded metrics of one scenario run."""

    name: str
    metrics: Dict[str, float]
    completed: int

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "metrics": self.metrics,
            "completed": self.completed,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ScenarioBaseline":
        return cls(
            name=str(data["name"]),
            metrics={k: float(v) for k, v in dict(data["metrics"]).items()},
            completed=int(data["completed"]),
        )


class RegressionSuite:
    """A set of named scenarios with record/check semantics."""

    def __init__(
        self,
        scenarios: Dict[str, ScenarioConfig],
        tolerances: Optional[Dict[str, float]] = None,
        workers: Optional[int] = None,
    ):
        if not scenarios:
            raise ValueError("a regression suite needs at least one scenario")
        self.scenarios = dict(scenarios)
        self.tolerances = dict(DEFAULT_TOLERANCES)
        if tolerances:
            self.tolerances.update(tolerances)
        #: Worker processes for record/check sweeps (None: REPRO_WORKERS
        #: or sequential); determinism is per-scenario, so parallel and
        #: sequential sweeps see identical metrics.
        self.workers = workers

    @classmethod
    def from_campaign(
        cls,
        spec,
        tolerances: Optional[Dict[str, float]] = None,
        workers: Optional[int] = None,
    ) -> "RegressionSuite":
        """A suite over a :class:`~repro.campaigns.CampaignSpec`: one
        named scenario per expanded cell, so the regression matrix is
        declared (and persisted/diffed) the same way campaigns are."""
        return cls(dict(spec.expand()), tolerances=tolerances, workers=workers)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @staticmethod
    def baseline_from(name: str, result: ScenarioResult) -> ScenarioBaseline:
        """Extract the recorded metric set from a finished run.

        Values come from the :mod:`repro.analysis` metric registry (the
        one derivation every consumer shares); NaN — the registry's
        "no data" marker, e.g. no certifications in a centralized run —
        is stored as the historical ``0.0`` so baseline files stay
        valid JSON and keep comparing exactly as before."""
        from ..analysis.metrics import metric_value  # analysis sits above core

        metrics = {}
        for key, (metric, factor) in _BASELINE_SOURCES.items():
            value = metric_value(result, metric) * factor
            metrics[key] = 0.0 if math.isnan(value) else value
        return ScenarioBaseline(
            name=name,
            metrics=metrics,
            completed=len(result.metrics.records),
        )

    def run_scenario(self, name: str) -> Tuple[ScenarioBaseline, ScenarioResult]:
        config = self.scenarios[name]
        result = Scenario(config).run()
        return self.baseline_from(name, result), result

    def _run_all(
        self, names: Optional[List[str]] = None
    ) -> Dict[str, Tuple[ScenarioBaseline, ScenarioResult]]:
        """Run the named scenarios (default: all, possibly in parallel),
        in sorted name order."""
        from ..runner import run_campaign  # local: avoids an import cycle

        if names is None:
            names = sorted(self.scenarios)
        labelled = [(name, self.scenarios[name]) for name in names]
        campaign = run_campaign(labelled, workers=self.workers)
        return {
            name: (self.baseline_from(name, result), result)
            for name, result in campaign.pairs()
        }

    def record(self, path: Union[str, Path]) -> Dict[str, ScenarioBaseline]:
        """Run every scenario and write the baseline file."""
        baselines = {}
        for name, (baseline, result) in self._run_all().items():
            result.check_safety()
            baselines[name] = baseline
        payload = {name: b.to_json() for name, b in baselines.items()}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
        return baselines

    def check(self, path: Union[str, Path]) -> List[Regression]:
        """Replay every scenario against the recorded baselines.

        Returns the list of regressions (empty = clean).  Reliability
        problems — safety violations, incomplete runs, scenarios missing
        from the baseline file — are reported as ``kind="reliability"``.
        """
        stored = {
            name: ScenarioBaseline.from_json(data)
            for name, data in json.loads(Path(path).read_text()).items()
        }
        findings: List[Regression] = []
        # scenarios missing from the baseline file are findings, not
        # runs — only replay what there is a baseline to compare against
        runs = self._run_all(
            [name for name in sorted(self.scenarios) if name in stored]
        )
        for name in sorted(self.scenarios):
            if name not in stored:
                findings.append(
                    Regression(name, "baseline", 0.0, 0.0, "reliability")
                )
                continue
            baseline = stored[name]
            measured, result = runs[name]
            try:
                result.check_safety()
            except SafetyViolation:
                findings.append(
                    Regression(name, "safety", 1.0, 0.0, "reliability")
                )
                continue
            if measured.completed < baseline.completed * 0.9:
                findings.append(
                    Regression(
                        name,
                        "completed",
                        baseline.completed,
                        measured.completed,
                        "reliability",
                    )
                )
            findings.extend(self._compare(name, baseline, measured))
        return findings

    # ------------------------------------------------------------------
    def _compare(
        self,
        name: str,
        baseline: ScenarioBaseline,
        measured: ScenarioBaseline,
    ) -> List[Regression]:
        findings = []
        for metric, tolerance in self.tolerances.items():
            if metric not in baseline.metrics or metric not in measured.metrics:
                continue
            base = baseline.metrics[metric]
            now = measured.metrics[metric]
            floor = _ABSOLUTE_FLOOR.get(metric, 0.0)
            if abs(now - base) <= floor:
                continue
            if metric in _HIGHER_IS_BETTER:
                regressed = now < base * (1.0 - tolerance)
            else:
                regressed = now > base * (1.0 + tolerance) + floor
            if regressed:
                findings.append(
                    Regression(name, metric, base, now, "performance")
                )
        return findings
