"""Profiling timers for real code running under the centralized runtime.

The paper times real protocol code with the Linux ``perfctr`` virtualized
CPU cycle counters (nanosecond resolution on the 1 GHz Pentium III) and
charges the measured duration to the simulated CPU.  Two backends are
provided here:

* :class:`WallClockTimer` — the paper's mechanism, using
  ``time.perf_counter_ns``.  The measured time can be *scaled* to simulate
  a processor other than the host (paper §2.3).
* :class:`CostModelTimer` — a deterministic substitute.  Real code still
  executes for its side effects, but the duration charged is computed from
  a :class:`CpuCostModel` (fixed + per-byte overheads — exactly the four
  parameters the paper calibrates in §4.1) plus any explicit
  :meth:`ProfilingTimer.charge` calls made from hot loops.

Both backends implement the pause/resume protocol of Figure 1(b): the
clock is stopped while real code re-enters the simulation runtime, so the
time spent scheduling events is not billed to the job, and the elapsed
time Δ accumulated so far is available for correcting event delays
(δ′q = Δ1 + δq).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

__all__ = ["ProfilingTimer", "WallClockTimer", "CostModelTimer", "CpuCostModel"]


class ProfilingTimer:
    """Abstract timer measuring the duration of one real-code job.

    Lifecycle: ``start`` → (``pause``/``resume``)* → ``stop``.  The value
    of :meth:`elapsed` is the job duration *excluding* paused intervals.
    """

    def start(self) -> None:
        raise NotImplementedError

    def pause(self) -> None:
        """Stop accumulating (real code re-entered the simulation runtime)."""
        raise NotImplementedError

    def resume(self) -> None:
        """Continue accumulating (control returned to real code)."""
        raise NotImplementedError

    def stop(self) -> float:
        """Finish the measurement and return the total elapsed seconds."""
        raise NotImplementedError

    def elapsed(self) -> float:
        """Elapsed seconds accumulated so far (Δ1 in Figure 1(b))."""
        raise NotImplementedError

    def charge(self, seconds: float) -> None:
        """Explicitly account ``seconds`` of work.

        A no-op for the wall-clock backend (work is measured, not
        declared); the cost-model backend accumulates it.
        """


class WallClockTimer(ProfilingTimer):
    """Measures real executions with the host's monotonic clock.

    ``scale`` converts host-CPU seconds into simulated-CPU seconds; e.g.
    ``scale=2.0`` simulates a processor half as fast as the host.
    """

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self._accumulated_ns = 0
        self._started_at: Optional[int] = None
        self._running = False

    def start(self) -> None:
        self._accumulated_ns = 0
        self._started_at = time.perf_counter_ns()
        self._running = True

    def pause(self) -> None:
        if not self._running or self._started_at is None:
            return
        self._accumulated_ns += time.perf_counter_ns() - self._started_at
        self._started_at = None

    def resume(self) -> None:
        if not self._running:
            return
        self._started_at = time.perf_counter_ns()

    def stop(self) -> float:
        self.pause()
        self._running = False
        return self.elapsed()

    def elapsed(self) -> float:
        total_ns = self._accumulated_ns
        if self._started_at is not None:
            total_ns += time.perf_counter_ns() - self._started_at
        return total_ns * 1e-9 * self.scale

    def charge(self, seconds: float) -> None:
        # Work is measured by the clock; explicit charges are ignored so
        # protocol code can be written once for both backends.
        return None


class CostModelTimer(ProfilingTimer):
    """Deterministic timer: elapsed time is declared, not measured.

    The per-job entry cost is charged by the runtime when the job starts
    (from the :class:`CpuCostModel`); protocol hot loops may add explicit
    :meth:`charge` calls (e.g. per certified tuple).  ``pause``/``resume``
    only toggle whether charges are accepted, which catches accounting
    bugs where simulation-side code charges the real job by accident.
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._running = False
        self._paused = False

    def start(self) -> None:
        self._accumulated = 0.0
        self._running = True
        self._paused = False

    def pause(self) -> None:
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def stop(self) -> float:
        self._running = False
        return self._accumulated

    def elapsed(self) -> float:
        return self._accumulated

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        if self._running and not self._paused:
            self._accumulated += seconds


class CpuCostModel:
    """Fixed + variable CPU overheads per job tag.

    The paper calibrates the centralized runtime with four parameters —
    fixed and variable (per byte) CPU overhead on message send and on
    message receive — measured with a network-flooding benchmark (§4.1).
    This class generalizes that to arbitrary job tags so the same model
    covers certification, marshaling, and timer callbacks.

    Default values approximate the paper's Pentium III 1 GHz testbed:
    a UDP send costs ~20 µs + ~9 ns/byte (≈ 470 Mbit/s peak write
    bandwidth at 4 KB messages, Figure 3(a)), a receive ~15 µs + 6 ns/byte.
    """

    #: Tag for the CPU work of pushing a datagram into the stack.
    SEND = "send"
    #: Tag for the CPU work of receiving a datagram from the stack.
    RECV = "recv"
    #: Tag for general protocol timer callbacks (stability rounds etc.).
    TIMER = "timer"
    #: Tag for jobs whose cost is charged entirely inside the job body
    #: (e.g. benchmark drivers calling rt_send, which charges SEND).
    NOOP = "noop"

    _DEFAULTS: Dict[str, Tuple[float, float]] = {
        SEND: (20e-6, 9e-9),
        RECV: (15e-6, 6e-9),
        TIMER: (5e-6, 0.0),
        NOOP: (0.0, 0.0),
    }

    def __init__(self, overrides: Optional[Dict[str, Tuple[float, float]]] = None):
        self._costs: Dict[str, Tuple[float, float]] = dict(self._DEFAULTS)
        if overrides:
            for tag, (fixed, per_byte) in overrides.items():
                self.register(tag, fixed, per_byte)

    def register(self, tag: str, fixed: float, per_byte: float = 0.0) -> None:
        """Set the cost parameters for ``tag``."""
        if fixed < 0 or per_byte < 0:
            raise ValueError("costs must be non-negative")
        self._costs[tag] = (fixed, per_byte)

    def cost(self, tag: str, nbytes: int = 0) -> float:
        """CPU seconds consumed by a ``tag`` job over ``nbytes`` bytes.

        Unknown tags fall back to the TIMER cost so experiments do not
        silently run free of CPU accounting.
        """
        fixed, per_byte = self._costs.get(tag, self._costs[self.TIMER])
        return fixed + per_byte * nbytes

    def tags(self) -> Tuple[str, ...]:
        return tuple(self._costs)
