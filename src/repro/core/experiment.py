"""Scenario assembly: the replicated database model of Figure 2.

One :class:`Scenario` builds an entire experiment from a declarative
:class:`ScenarioConfig`: the SSF-style simulator, the network fabric,
per-site CPU pools / storage / lock manager / database server, the
centralized runtime, GCS stack and replication protocol (for replicated
configurations — looked up by name in :mod:`repro.protocols`, so the
same grid runs under any registered protocol), the TPC-C client
population, fault injectors, and the observation machinery.  ``Scenario.run()`` executes until the configured number of
transactions completed (plus a drain window) and returns a
:class:`ScenarioResult` with every log the paper's figures need.

Centralized baselines (``sites=1``) run without any replication or
group-communication machinery, exactly like the paper's 1/3/6-CPU
single-site reference curves.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..db.lock import LockManager
from ..db.server import DatabaseServer
from ..db.storage import Storage
from ..db.transactions import reset_tx_counter
from ..gcs.config import GcsConfig
from ..gcs.stack import GroupCommunication
from ..gcs.statetransfer import RecoveryEvent
from ..monitors import InvariantViolation, build_hub, resolve_monitors
from ..net.address import Endpoint, GroupAddress
from ..net.capture import PacketCapture
from ..net.network import Network
from ..net.udp import UdpSocket
from ..placement import PLACEMENT_POLICIES, fragment_of_site, sites_of_fragment
from ..protocols.base import (
    ProtocolContext,
    ProtocolGroup,
    ReplicationProtocol,
    build_protocol,
)
from ..tpcc.client import ClientPool
from ..tpcc.profiles import ProfileSet, default_profiles
from ..tpcc.schema import warehouses_for_clients
from ..tpcc.workload import TpccWorkload
from .clock import CpuCostModel
from .cpu import CpuPool
from .csrt import MODELED, SiteRuntime
from .faults import FaultInjector, FaultPlan
from .kernel import Simulator
from .metrics import MetricsCollector, ResourceSampler, SampleSeries
from .rng import derive_rng, derive_seed
from .runtime_api import SimulatedProtocolRuntime
from .safety import CommitLog, check_consistency

__all__ = ["ScenarioConfig", "Scenario", "ScenarioResult", "Site"]

_GROUP_PORT = 7000

#: Artifact format tag; bump when the serialized layout changes.
RESULT_FORMAT = "repro.scenario_result/1"


@dataclass
class ScenarioConfig:
    """Everything that defines one experiment run."""

    sites: int = 1
    cpus_per_site: int = 1
    clients: int = 100
    #: Stop after this many client transactions completed (commit+abort).
    transactions: int = 2000
    seed: int = 42
    #: Replication protocol wired behind replicated configurations
    #: (``sites > 1``); see :mod:`repro.protocols`.  Centralized
    #: baselines ignore it.
    protocol: str = "dbsm"
    #: Number of data fragments (partial replication).  ``1`` — the
    #: default — is full replication: one global group, any protocol.
    #: ``fragments > 1`` splits the warehouses across per-fragment
    #: replica groups, each with its own GCS stack; only the
    #: ``"partial"`` protocol understands that topology.
    fragments: int = 1
    #: Warehouse->fragment placement policy (:mod:`repro.placement`).
    #: Ignored while ``fragments == 1``.
    placement: str = "range"
    #: Runtime invariant monitors wired into the event path (names from
    #: :mod:`repro.monitors`, or ``"all"``).  Empty — the default —
    #: means monitoring is off and the run is bit-identical to the
    #: pre-monitor code path; centralized baselines ignore it like
    #: they ignore ``protocol``.
    monitors: Tuple[str, ...] = ()
    profiles: Optional[ProfileSet] = None
    gcs: GcsConfig = field(default_factory=GcsConfig)
    #: Site index -> fault plan (sites without an entry run fault-free).
    faults: Dict[int, FaultPlan] = field(default_factory=dict)
    clock_mode: str = MODELED
    #: Storage calibration (§4.1): 9.486 MB/s via 4 concurrent 4 KB
    #: sectors at 1.727 ms each, reads fully cached.
    storage_sector_latency: float = 1.727e-3
    storage_concurrency: int = 4
    storage_cache_hit_ratio: float = 1.0
    #: Fabric calibration: switched Ethernet 100 (§4.1).
    net_bandwidth_bps: float = 100e6
    net_link_latency: float = 100e-6
    #: Optional read-set table-lock escalation threshold (§3.3 ablation).
    readset_escalation_threshold: Optional[int] = None
    sample_interval: float = 5.0
    #: Hard wall on simulated time (faulty runs may never hit the target).
    max_sim_time: float = 20_000.0
    drain_time: float = 15.0
    probe_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.sites < 1 or self.cpus_per_site < 1 or self.clients < 1:
            raise ValueError("sites, cpus and clients must be positive")
        if self.transactions < 1:
            raise ValueError("transactions must be positive")
        if not self.protocol or not isinstance(self.protocol, str):
            raise ValueError("protocol must be a non-empty protocol name")
        if self.fragments < 1:
            raise ValueError("fragments must be positive")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        if self.fragments > 1:
            if self.protocol != "partial":
                raise ValueError(
                    "fragments > 1 requires the 'partial' protocol "
                    f"(got {self.protocol!r})"
                )
            if self.sites < self.fragments:
                raise ValueError(
                    f"{self.fragments} fragments need at least that many "
                    f"sites (have {self.sites})"
                )
            if warehouses_for_clients(self.clients) < self.fragments:
                raise ValueError(
                    f"{self.fragments} fragments need at least that many "
                    f"warehouses ({self.clients} clients size only "
                    f"{warehouses_for_clients(self.clients)})"
                )
        if isinstance(self.monitors, str):
            self.monitors = (self.monitors,)
        else:
            self.monitors = tuple(self.monitors)
        if self.monitors:
            resolve_monitors(self.monitors)  # unknown names fail here

    # ------------------------------------------------------------------
    # serialization (runner artifacts, resume-matching)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready encoding of the configuration.

        ``profiles`` objects carry sampling distributions that have no
        canonical JSON form; they are reduced to a stable fingerprint so
        artifact resume-matching still distinguishes custom profile sets
        from the defaults.  ``from_dict`` therefore reconstructs custom
        profiles as ``None`` (the defaults) — exact round-trip holds for
        every config that uses the default profiles.
        """
        data: Dict[str, object] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "profiles":
                data[f.name] = (
                    None
                    if value is None
                    else hashlib.sha1(repr(value).encode()).hexdigest()
                )
            elif f.name == "gcs":
                data[f.name] = value.to_dict()
            elif f.name == "faults":
                data[f.name] = {
                    str(site): plan.to_dict() for site, plan in value.items()
                }
            elif f.name == "monitors":
                data[f.name] = list(value)
            else:
                data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs: Dict[str, object] = {}
        for name, value in data.items():
            if name not in known:
                continue
            if name == "profiles":
                kwargs[name] = None  # fingerprints are not reconstructible
            elif name == "gcs":
                kwargs[name] = GcsConfig.from_dict(value)
            elif name == "faults":
                kwargs[name] = {
                    int(site): FaultPlan.from_dict(plan)
                    for site, plan in value.items()
                }
            else:
                kwargs[name] = value
        return cls(**kwargs)


@dataclass
class Site:
    """The assembled components of one database site."""

    index: int
    cpus: CpuPool
    storage: Storage
    server: DatabaseServer
    clients: ClientPool
    workload: TpccWorkload
    runtime: Optional[SiteRuntime] = None
    gcs: Optional[GroupCommunication] = None
    replica: Optional[ReplicationProtocol] = None
    injector: Optional[FaultInjector] = None


class ScenarioResult:
    """Run outputs: metrics, resource samples, capture, commit logs.

    A live run holds the assembled :class:`Site` objects; a result
    reconstructed with :meth:`from_dict` (runner artifacts, results sent
    back from worker processes) holds ``sites=[]`` but answers every
    metric, commit-log and safety question identically — the commit logs
    and resource samples are captured by value at construction.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        metrics: MetricsCollector,
        sampler: ResourceSampler,
        capture: PacketCapture,
        sites: List[Site],
        sim_time: float,
        violations: Optional[List[InvariantViolation]] = None,
    ):
        self.config = config
        self.metrics = metrics
        self.sampler = sampler
        self.capture = capture
        self.sites = sites
        self.sim_time = sim_time
        #: Invariant breaches recorded by the run's monitors (empty when
        #: monitoring is off *or* every enabled monitor stayed quiet —
        #: the ``violations`` metric distinguishes the two).
        self.violations: List[InvariantViolation] = list(violations or [])
        self._commit_logs: List[CommitLog] = [
            s.replica.commit_log for s in sites if s.replica is not None
        ]
        #: Per-site protocol counters (protocol-specific; e.g. the
        #: certifier's for "dbsm"), kept by value so they survive
        #: serialization.
        self.site_stats: Dict[str, Dict[str, int]] = {
            s.server.name: s.replica.protocol_stats()
            for s in sites
            if s.replica is not None
        }
        #: Rejoin timelines (recovery-time metrics): one event per
        #: crash→recover or partition→heal rejoin across all sites.
        self.recovery_events: List[RecoveryEvent] = [
            event
            for s in sites
            if s.gcs is not None
            for event in s.gcs.transfer.events
        ]

    def commit_logs(self) -> List[CommitLog]:
        return list(self._commit_logs)

    # -- recovery metrics -------------------------------------------------
    def completed_rejoins(self) -> List[RecoveryEvent]:
        return [e for e in self.recovery_events if e.live_at >= 0]

    def mean_time_to_rejoin(self) -> float:
        """Mean seconds from rejoin start to live (0.0 if none completed)."""
        times = [e.time_to_rejoin() for e in self.completed_rejoins()]
        return sum(times) / len(times) if times else 0.0

    def total_backlog_replayed(self) -> int:
        return sum(e.backlog_replayed for e in self.completed_rejoins())

    def total_orphaned_commits(self) -> int:
        return sum(e.orphaned_commits for e in self.completed_rejoins())

    def check_safety(self) -> Dict[str, int]:
        """All operational sites committed the same sequence (§5.3).

        Under partial replication one-copy equivalence holds *per
        fragment group*: sites replicating different fragments
        legitimately hold disjoint logs, so each group is checked
        against its own reference log.  Commit logs are stored in site
        order, which makes the site→group mapping recoverable from the
        config without any artifact-format change.
        """
        logs = self.commit_logs()
        if not logs:
            return {}
        fragments = self.config.fragments
        if fragments <= 1 or len(logs) != self.config.sites:
            return check_consistency(logs)
        divergences: Dict[str, int] = {}
        for fragment in range(fragments):
            group_logs = [
                logs[i]
                for i in sites_of_fragment(fragment, self.config.sites, fragments)
            ]
            divergences.update(check_consistency(group_logs))
        return divergences

    # -- headline numbers -------------------------------------------------
    def throughput_tpm(self) -> float:
        return self.metrics.throughput_tpm()

    def mean_latency(self) -> float:
        return self.metrics.mean_latency()

    def abort_rate(self) -> float:
        return self.metrics.abort_rate()

    def cpu_usage(self) -> Tuple[float, float]:
        """(total, protocol-real) mean CPU usage across sites, 0..1."""
        return self.sampler.mean_cpu()

    def disk_usage(self) -> float:
        return self.sampler.mean_disk()

    def network_kbps(self) -> float:
        return self.sampler.net_kbytes_per_second()

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready encoding carrying everything the figures need:
        transaction records, resource samples, commit logs, per-site
        protocol counters and the capture's byte/packet totals."""
        sampler = (
            self.sampler.series()
            if isinstance(self.sampler, ResourceSampler)
            else self.sampler
        )
        return {
            "format": RESULT_FORMAT,
            "config": self.config.to_dict(),
            "sim_time": self.sim_time,
            "metrics": self.metrics.to_dict(),
            "samples": sampler.to_dict(),
            "capture": {
                "total_bytes": self.capture.total_bytes,
                "total_packets": self.capture.total_packets,
            },
            "commit_logs": [log.to_dict() for log in self._commit_logs],
            "site_stats": self.site_stats,
            "recovery": [event.to_dict() for event in self.recovery_events],
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        if data.get("format") != RESULT_FORMAT:
            raise ValueError(
                f"unsupported result format {data.get('format')!r} "
                f"(expected {RESULT_FORMAT!r})"
            )
        result = cls.__new__(cls)
        result.config = ScenarioConfig.from_dict(data["config"])
        result.metrics = MetricsCollector.from_dict(data["metrics"])
        result.sampler = SampleSeries.from_dict(data["samples"])
        capture = PacketCapture(keep_entries=False)
        capture.total_bytes = int(data["capture"]["total_bytes"])
        capture.total_packets = int(data["capture"]["total_packets"])
        result.capture = capture
        result.sites = []
        result.sim_time = float(data["sim_time"])
        result._commit_logs = [
            CommitLog.from_dict(log) for log in data["commit_logs"]
        ]
        result.site_stats = {
            site: {k: int(v) for k, v in stats.items()}
            for site, stats in data.get("site_stats", {}).items()
        }
        result.recovery_events = [
            RecoveryEvent.from_dict(event) for event in data.get("recovery", [])
        ]
        result.violations = [
            InvariantViolation.from_dict(v) for v in data.get("violations", [])
        ]
        return result


class Scenario:
    """Builds and runs one experiment."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        # Fresh transaction-id stream per scenario: cell results become a
        # pure function of the config, so a campaign's cells can run in
        # any order — or in a worker pool — with bit-identical results.
        reset_tx_counter()
        self.sim = Simulator()
        self.capture = PacketCapture(bucket_seconds=1.0, keep_entries=False)
        self.network = Network(
            self.sim,
            default_bandwidth_bps=config.net_bandwidth_bps,
            default_link_latency=config.net_link_latency,
            capture=self.capture,
        )
        self.metrics = MetricsCollector()
        self.profiles = config.profiles or default_profiles()
        self.sites: List[Site] = []
        # One GCS group per fragment, each with its own address/port,
        # sequencer, views and state transfer.  The single-fragment
        # layout is byte-for-byte the historical one ("dbsm" at port
        # 7000, all sites members), which keeps full-replication runs
        # bit-identical through the multi-group refactor.
        self._groups: List[GroupAddress] = [
            GroupAddress(
                "dbsm" if config.fragments == 1 else f"frag{g}",
                _GROUP_PORT + g,
            )
            for g in range(config.fragments)
        ]
        self._site_fragment: List[int] = [
            fragment_of_site(i, config.sites, config.fragments)
            if config.fragments > 1
            else 0
            for i in range(config.sites)
        ]
        self._members_of: List[Dict[int, Endpoint]] = [
            {
                i: Endpoint(f"site{i}", _GROUP_PORT + g)
                for i in (
                    sites_of_fragment(g, config.sites, config.fragments)
                    if config.fragments > 1
                    else range(config.sites)
                )
            }
            for g in range(config.fragments)
        ]
        self._protocol_group = ProtocolGroup()
        #: Runtime invariant monitors (None when disabled): observe-only
        #: probes on the event path, zero footprint when off.
        self.monitors = build_hub(config, lambda: self.sim.now)
        self._build_sites()
        self._schedule_partitions()
        self.sampler = ResourceSampler(
            self.sim,
            interval=config.sample_interval,
            cpu_pools=[s.cpus for s in self.sites],
            storages=[s.storage for s in self.sites],
            capture=self.capture,
        )
        self._done = False

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _build_sites(self) -> None:
        config = self.config
        replicated = config.sites > 1
        share, extra = divmod(config.clients, config.sites)
        for index in range(config.sites):
            site = self._build_site(
                index,
                replicated,
                clients=share + (1 if index < extra else 0),
                first_client_id=index * share + min(index, extra),
            )
            self.sites.append(site)

    def _build_site(
        self,
        index: int,
        replicated: bool,
        clients: int,
        first_client_id: int,
    ) -> Site:
        config = self.config

        name = f"site{index}"
        cpus = CpuPool(self.sim, config.cpus_per_site, name=f"{name}.cpu")
        storage = Storage(
            self.sim,
            name=f"{name}.disk",
            sector_latency=config.storage_sector_latency,
            concurrency=config.storage_concurrency,
            cache_hit_ratio=config.storage_cache_hit_ratio,
            rng=derive_rng(config.seed, "storage", index),
        )
        locks = LockManager(self.sim, f"{name}.locks")
        server = DatabaseServer(
            self.sim, name, cpus, storage, locks, metrics=self.metrics
        )
        workload = TpccWorkload(
            warehouses=warehouses_for_clients(config.clients),
            profiles=self.profiles,
            rng=derive_rng(config.seed, "workload", index),
            site_index=index,
            site_count=config.sites,
            readset_escalation_threshold=config.readset_escalation_threshold,
        )
        site = Site(
            index=index,
            cpus=cpus,
            storage=storage,
            server=server,
            clients=None,  # type: ignore[arg-type]  (set below)
            workload=workload,
        )
        if replicated:
            self._attach_replication(site)
        site.clients = ClientPool(
            self.sim,
            server,
            workload,
            clients,
            first_id=first_client_id,
            submit=site.replica.client_submit if site.replica else None,
        )
        return site

    def _attach_replication(self, site: Site) -> None:
        config = self.config
        index = site.index
        fragment = self._site_fragment[index]
        group_address = self._groups[fragment]
        members = self._members_of[fragment]
        endpoint_ids = {addr: i for i, addr in members.items()}
        host = self.network.add_host(f"site{index}")
        socket = UdpSocket(host, group_address.port)
        socket.join(group_address)
        plan = config.faults.get(index, FaultPlan())
        injector = FaultInjector(plan) if plan.has_faults() else None
        runtime = SiteRuntime(
            self.sim,
            site.cpus,
            mode=config.clock_mode,
            cost_model=CpuCostModel(),
            interceptor=injector,
            name=f"site{index}.csrt",
        )
        runtime.network_send = socket.send
        socket.set_receiver(runtime.deliver)
        protocol_runtime = SimulatedProtocolRuntime(
            runtime, members[index], seed=derive_seed(config.seed, "protocol", index)
        )
        group_dest = (
            group_address
            if self.network.multicast_capable(f"site{index}", group_address)
            else [addr for i, addr in members.items() if i != index]
        )
        gcs = GroupCommunication(
            protocol_runtime,
            index,
            members,
            group_dest,
            config=config.gcs,
            endpoint_ids=endpoint_ids,
        )
        replica = build_protocol(
            config.protocol,
            ProtocolContext(
                site_id=index,
                server=site.server,
                gcs=gcs,
                runtime=runtime,
                config=config,
                group=self._protocol_group,
            ),
        )
        site.runtime = runtime
        site.gcs = gcs
        site.replica = replica
        site.injector = injector
        if self.monitors is not None:
            probe = self.monitors.bind_site(index, f"site{index}", gcs)
            replica.monitor = probe
            gcs.monitor = probe
            gcs.total_order.monitor = probe
            gcs.views.monitor = probe
        gcs.on_live = lambda: self._site_live(site)
        gcs.on_excluded = lambda: self._excluded_site(site)
        if plan.crash_at is not None:
            self.sim.schedule(plan.crash_at, self._crash_site, site)
        if plan.recover_at is not None:
            self.sim.schedule(plan.recover_at, self._recover_site, site)

    def _crash_site(self, site: Site) -> None:
        assert site.replica is not None
        site.replica.crash()
        site.clients.stop_all()

    # ------------------------------------------------------------------
    # recovery & partitions (fault actions: recover / partition / heal)
    # ------------------------------------------------------------------
    def _recover_site(self, site: Site) -> None:
        """The ``recover`` action: restart a crashed site's process with
        empty volatile state and begin its rejoin (announce → merge view
        → state transfer → backlog replay → live)."""
        assert site.injector is not None and site.replica is not None
        site.injector.recover()
        self._begin_rejoin(site)

    def _begin_rejoin(self, site: Site, silent: bool = True) -> None:
        assert site.replica is not None and site.gcs is not None
        site.replica.begin_rejoin()
        site.gcs.rejoin(silent=silent)

    def _excluded_site(self, site: Site) -> None:
        """The site's stack detected that the group excluded it while it
        was alive (a healed partition minority, or a false suspicion):
        it must discard its diverged/stale state and rejoin via state
        transfer.  No announcement silence needed — the exclusion is
        the very thing that was detected."""
        site.clients.stop_all()
        self._begin_rejoin(site, silent=False)

    def _site_live(self, site: Site) -> None:
        """State transfer completed: the site serves clients again."""
        site.clients.restart()

    def _schedule_partitions(self) -> None:
        """Schedule the network cut/heal boundaries.  Which sites must
        rejoin afterwards is not inferred from the topology: an excluded
        member discovers its exclusion itself once it hears the primary
        component's higher-view traffic (see
        :meth:`repro.gcs.stack.GroupCommunication._detect_exclusion`)
        and re-enters through the state-transfer path."""
        config = self.config
        boundaries = set()
        for plan in config.faults.values():
            if plan.partition_at is not None:
                boundaries.add(plan.partition_at)
                if plan.heal_at is not None:
                    boundaries.add(plan.heal_at)
        if not boundaries or config.sites < 2:
            return
        for t in sorted(boundaries):
            self.sim.schedule(t, self._apply_partition_state)

    def _partition_components_now(self) -> List[set]:
        """Active partition components: sites partitioned at the *same
        instant* share a component and keep talking to each other; sites
        cut at different instants are in different components (the
        documented ``partition`` semantics)."""
        now = self.sim.now
        groups: Dict[float, set] = {}
        for index, plan in self.config.faults.items():
            if plan.partition_at is None or now < plan.partition_at:
                continue
            if plan.heal_at is not None and now >= plan.heal_at:
                continue
            groups.setdefault(plan.partition_at, set()).add(index)
        return [groups[t] for t in sorted(groups)]

    def _apply_partition_state(self) -> None:
        components = self._partition_components_now()
        if components:
            self.network.partition(
                [{f"site{i}" for i in component} for component in components]
            )
        else:
            self.network.heal()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        self.sampler.start()
        for site in self.sites:
            if site.gcs is not None:
                site.gcs.start()
        self.sim.call(self.config.probe_interval, self._probe)
        # The event loop allocates millions of short-lived objects whose
        # lifetimes reference counting alone fully handles; the cyclic
        # collector's periodic scans are pure overhead (~10 % of a cell's
        # wall-clock), so pause it for the run and sweep once after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.sim.run(until=self.config.max_sim_time)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        return ScenarioResult(
            self.config,
            self.metrics,
            self.sampler,
            self.capture,
            self.sites,
            self.sim.now,
            violations=(
                self.monitors.finish() if self.monitors is not None else None
            ),
        )

    def _probe(self) -> None:
        if len(self.metrics.records) >= self.config.transactions:
            if not self._done:
                self._done = True
                for site in self.sites:
                    site.clients.stop_all()
                self.sim.call(self.config.drain_time, self.sim.stop)
            return
        self.sim.call(self.config.probe_interval, self._probe)
