"""The protocol-facing abstraction layer (paper §2.3).

Protocol code — group communication and certification — is written
against this narrow, single-threaded interface providing job scheduling,
clock access and a simplified datagram network.  The interface is
implemented twice, exactly as in the paper:

* :class:`SimulatedProtocolRuntime` — a bridge to the centralized
  simulation runtime (:class:`repro.core.csrt.SiteRuntime`) and the
  simulated network, used for all experiments;
* :class:`NativeProtocolRuntime` — a bridge to the native platform
  (``threading.Timer`` for scheduling, ``time`` for the clock and
  ``socket`` datagrams), the analogue of the paper's ``java.util.Timer`` /
  ``java.lang.System`` / ``java.net.DatagramSocket`` bridge.  It lets the
  very same protocol classes run on a real network.

Because the protocol stack only ever touches :class:`ProtocolRuntime`,
moving it between simulation and deployment requires no code changes —
that portability is the property the paper's methodology depends on.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from .csrt import ScheduledCallback, SiteRuntime

__all__ = [
    "ProtocolRuntime",
    "SimulatedProtocolRuntime",
    "NativeProtocolRuntime",
]

ReceiveHandler = Callable[[Any, bytes], None]


class ProtocolRuntime:
    """What protocol implementations are allowed to see of the world."""

    def now(self) -> float:
        """Current time in seconds (simulated or wall-clock)."""
        raise NotImplementedError

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any):
        """Run ``fn(*args)`` after ``delay`` seconds; returns a handle
        with a ``cancel()`` method."""
        raise NotImplementedError

    def send(self, dest: Any, payload: bytes) -> None:
        """Send a datagram to ``dest`` (an address or list of addresses —
        a list models an IP-multicast group send)."""
        raise NotImplementedError

    def set_receiver(self, handler: ReceiveHandler) -> None:
        """Install the handler invoked for each incoming datagram."""
        raise NotImplementedError

    def local_address(self) -> Any:
        """This endpoint's own address."""
        raise NotImplementedError

    def charge(self, seconds: float) -> None:
        """Declare ``seconds`` of CPU work (no-op outside the simulator)."""

    def rng(self) -> random.Random:
        """Deterministically seeded randomness for protocol decisions."""
        raise NotImplementedError


class SimulatedProtocolRuntime(ProtocolRuntime):
    """Bridge to the CSRT and the simulated network stack."""

    def __init__(self, site_runtime: SiteRuntime, address: Any, seed: int = 0):
        self._rt = site_runtime
        self._address = address
        self._rng = random.Random(seed)
        site_runtime.receiver = self._on_datagram
        self._handler: Optional[ReceiveHandler] = None

    def now(self) -> float:
        return self._rt.rt_now()

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> ScheduledCallback:
        return self._rt.rt_schedule(delay, fn, *args)

    def send(self, dest: Any, payload: bytes) -> None:
        self._rt.rt_send(dest, payload)

    def set_receiver(self, handler: ReceiveHandler) -> None:
        self._handler = handler

    def local_address(self) -> Any:
        return self._address

    def charge(self, seconds: float) -> None:
        self._rt.rt_charge(seconds)

    def rng(self) -> random.Random:
        return self._rng

    def _on_datagram(self, source: Any, payload: bytes) -> None:
        if self._handler is not None:
            self._handler(source, payload)


class NativeProtocolRuntime(ProtocolRuntime):
    """Bridge to real timers and UDP sockets.

    A single dispatch lock serializes timer callbacks and socket receives,
    preserving the single-threaded execution model protocol code assumes.
    Intended for small-scale interoperability demos and the
    ``examples/native_runtime_demo.py`` walkthrough; experiments use the
    simulated bridge.
    """

    _POLL_TIMEOUT = 0.05

    def __init__(self, bind: Tuple[str, int] = ("127.0.0.1", 0), seed: int = 0):
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.bind(bind)
        self._socket.settimeout(self._POLL_TIMEOUT)
        self._address = self._socket.getsockname()
        self._rng = random.Random(seed)
        self._handler: Optional[ReceiveHandler] = None
        self._lock = threading.RLock()
        self._timers: List[threading.Timer] = []
        self._running = False
        self._reader: Optional[threading.Thread] = None
        self._epoch = time.perf_counter()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start the receive loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def close(self) -> None:
        self._running = False
        with self._lock:
            for timer in self._timers:
                timer.cancel()
            self._timers.clear()
        if self._reader is not None:
            self._reader.join(timeout=1.0)
        self._socket.close()

    def __enter__(self) -> "NativeProtocolRuntime":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- ProtocolRuntime ------------------------------------------------
    def now(self) -> float:
        return time.perf_counter() - self._epoch

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any):
        def locked_fire() -> None:
            with self._lock:
                if self._running:
                    fn(*args)

        timer = threading.Timer(delay, locked_fire)
        timer.daemon = True
        with self._lock:
            self._timers = [t for t in self._timers if t.is_alive()]
            self._timers.append(timer)
        timer.start()
        return timer  # threading.Timer already has .cancel()

    def send(self, dest: Any, payload: bytes) -> None:
        targets = dest if isinstance(dest, list) else [dest]
        for target in targets:
            self._socket.sendto(payload, tuple(target))

    def set_receiver(self, handler: ReceiveHandler) -> None:
        self._handler = handler

    def local_address(self) -> Tuple[str, int]:
        return self._address

    def rng(self) -> random.Random:
        return self._rng

    # -- internals ------------------------------------------------------
    def _read_loop(self) -> None:
        while self._running:
            try:
                payload, source = self._socket.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                if self._handler is not None and self._running:
                    self._handler(source, payload)
