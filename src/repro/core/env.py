"""Consolidated ``REPRO_*`` environment-knob parsing.

Every knob the package reads — ``REPRO_SCALE``, ``REPRO_WORKERS``,
``REPRO_ARTIFACT_DIR``, ``REPRO_PROTOCOL`` — goes through one of the
helpers here, so a misconfiguration is always reported the same way:
a :class:`RuntimeWarning` naming the knob, the offending value and the
value actually used, issued **once per distinct misconfiguration per
process**, followed by a clamp or a fall-back to the default.  A typo
like ``REPRO_SCALE=O.5`` can therefore never silently shrink a
campaign, and ``REPRO_WORKERS=many`` can never silently serialize one.

The knobs themselves are documented in the README's consolidated knob
table (kept in sync by ``tests/unit/test_docs_consistency.py``).
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Sequence, Tuple

__all__ = ["env_choice", "env_float", "env_int", "env_str", "warn_once"]

#: Complaints already issued, keyed by (knob, kind, offending value) —
#: each distinct misconfiguration warns exactly once per process.
_WARNED: set = set()


def warn_once(key: Tuple[str, ...], message: str) -> None:
    """Issue ``message`` as a RuntimeWarning once per distinct ``key``."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def env_float(name: str, default: float, minimum: float, maximum: float) -> float:
    """A float knob clamped to ``[minimum, maximum]``.

    An unparseable value falls back to ``default``, an out-of-range
    value is clamped — each with a warn-once instead of silently.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
        if value != value:  # NaN: parseable but meaningless
            raise ValueError(raw)
    except ValueError:
        warn_once(
            (name, "unparseable", raw),
            f"{name}={raw!r} is not a number; using the default {default}",
        )
        return default
    clamped = max(minimum, min(value, maximum))
    if clamped != value:
        warn_once(
            (name, "clamped", raw),
            f"{name}={raw} is outside [{minimum}, {maximum}]; "
            f"clamped to {clamped}",
        )
    return clamped


def env_int(name: str, default: int, minimum: Optional[int] = None) -> int:
    """An integer knob with an optional floor.

    An unparseable value falls back to ``default``, a value below
    ``minimum`` is clamped — each with a warn-once.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        warn_once(
            (name, "unparseable", raw),
            f"{name}={raw!r} is not an integer; using the default {default}",
        )
        return default
    if minimum is not None and value < minimum:
        warn_once(
            (name, "clamped", raw),
            f"{name}={raw} is below {minimum}; clamped to {minimum}",
        )
        return minimum
    return value


def env_choice(
    name: str, default: str, choices: Sequence[str], strict: bool = False
) -> str:
    """A knob restricted to ``choices`` (e.g. a registry's names).

    A value outside the choices falls back to ``default`` with a
    warn-once naming the valid options — unless ``strict``, in which
    case it raises :class:`ValueError` instead: use strict for knobs
    that select *what* is measured (experiment identity, e.g. the
    protocol under benchmark), where a silent fallback would produce a
    plausible-looking result for the wrong thing.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw not in choices:
        message = f"{name}={raw!r} is not one of ({', '.join(choices)})"
        if strict:
            raise ValueError(message)
        warn_once(
            (name, "choice", raw),
            f"{message}; using the default {default!r}",
        )
        return default
    return raw


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """A plain string knob; an empty value counts as unset."""
    raw = os.environ.get(name)
    return raw if raw else default
