"""Canonical experiment configurations (paper §5).

Centralizes the exact scenario grid the paper evaluates so benchmarks,
examples and tests all speak the same names:

* **Figure 5/6 grid** — centralized servers with 1, 3 and 6 CPUs and
  replicated databases with 3 and 6 single-CPU sites, driven by 100 to
  2000 clients;
* **Figure 7 / Table 2 fault grid** — 3 sites with no faults, 5 % random
  loss, or 5 % bursty loss (mean burst length 5 messages);
* **§5.3 safety matrix** — clock drift, scheduling latency, both loss
  types, and crash.

``REPRO_SCALE`` (environment) scales the *transaction count* of each
run; client counts are load parameters and stay at paper values.  Scale
1.0 is the paper's 10 000-transaction runs; the default 0.3 keeps the
full benchmark suite in laptop territory while preserving every shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..gcs.config import GcsConfig
from .env import env_float
from .faults import (
    FaultPlan,
    bursty_loss,
    clock_drift,
    crash_recover,
    partition_heal,
    random_loss,
    scheduling_latency,
)
from .experiment import ScenarioConfig, ScenarioResult
from .rng import derive_seed

__all__ = [
    "PAPER_TRANSACTIONS",
    "SYSTEM_CONFIGS",
    "CLIENT_LEVELS",
    "scale",
    "scaled_transactions",
    "performance_config",
    "fault_config",
    "prototype_gcs_config",
    "safety_fault_plans",
    "run_grid",
]

#: The paper's per-run transaction count (§5.1).
PAPER_TRANSACTIONS = 10_000

#: The five system configurations of Figures 5 and 6.
SYSTEM_CONFIGS: Tuple[Tuple[str, int, int], ...] = (
    ("1 CPU", 1, 1),  # label, sites, cpus per site
    ("3 CPU", 1, 3),
    ("6 CPU", 1, 6),
    ("3 Sites", 3, 1),
    ("6 Sites", 6, 1),
)

#: Client populations swept on the x-axis (paper: 100 to 2000).
CLIENT_LEVELS: Tuple[int, ...] = (100, 500, 1000, 1500, 2000)


def scale() -> float:
    """The run-size scale factor from ``REPRO_SCALE`` (default 0.3).

    An unparseable value falls back to the default, and an out-of-range
    value is clamped to [0.01, 1.0] — each with a warning (once per
    distinct value, via :mod:`repro.core.env`) instead of silently, so
    a typo like ``REPRO_SCALE=O.5`` cannot quietly shrink a campaign.
    """
    return env_float("REPRO_SCALE", 0.3, 0.01, 1.0)


def scaled_transactions(base: int = PAPER_TRANSACTIONS) -> int:
    return max(300, int(base * scale()))


def performance_config(
    sites: int,
    cpus_per_site: int,
    clients: int,
    transactions: Optional[int] = None,
    seed: int = 42,
    protocol: str = "dbsm",
    **overrides,
) -> ScenarioConfig:
    """One point of the Figure 5/6 grid (per replication protocol)."""
    return ScenarioConfig(
        sites=sites,
        cpus_per_site=cpus_per_site,
        clients=clients,
        transactions=(
            transactions if transactions is not None else scaled_transactions()
        ),
        seed=seed,
        protocol=protocol,
        **overrides,
    )


def prototype_gcs_config() -> GcsConfig:
    """The group-communication configuration of the paper's prototype.

    The §5.3 results characterize the *prototype implementation* — its
    retransmission timer, gossip cadence and buffer shares are part of
    what was measured.  Conservative recovery timers plus a modest
    per-sender share are what let 5 % random loss stall stability
    detection long enough to exhaust the sequencer's share and block
    the group (the limitation the paper pinpoints; the ablation benches
    demonstrate its mitigations).  The library's *default* GcsConfig
    recovers more aggressively and shows correspondingly milder tails.
    """
    return GcsConfig(
        nack_timeout=0.180,
        stability_interval=0.250,
        buffer_share=56,
    )


def fault_config(
    kind: str,
    clients: int = 750,
    sites: int = 3,
    transactions: Optional[int] = None,
    seed: int = 42,
    rate: float = 0.05,
    protocol: str = "dbsm",
    fault_at: float = 20.0,
    repair_after: float = 15.0,
    **overrides,
) -> ScenarioConfig:
    """One cell of the Figure 7 / Table 2 fault grid (per protocol).

    ``kind`` is one of ``"none"``, ``"random"``, ``"bursty"`` — the loss
    is injected at every site, as in the paper (independent loss at each
    participant is what shortens the stable common prefix, §5.3) — or
    one of the recovery fault-loads ``"crash-recover"`` /
    ``"partition-heal"``: the highest-id site leaves at ``fault_at`` and
    rejoins via state transfer ``repair_after`` seconds later.  Runs
    use :func:`prototype_gcs_config` unless ``gcs=...`` overrides it.
    """
    if kind == "none":
        faults: Dict[int, FaultPlan] = {}
    elif kind == "random":
        faults = {
            i: random_loss(rate, seed=derive_seed(seed, "faults", i))
            for i in range(sites)
        }
    elif kind == "bursty":
        faults = {
            i: bursty_loss(rate, seed=derive_seed(seed, "faults", i))
            for i in range(sites)
        }
    elif kind == "crash-recover":
        faults = {sites - 1: crash_recover(fault_at, fault_at + repair_after)}
    elif kind == "partition-heal":
        faults = {sites - 1: partition_heal(fault_at, fault_at + repair_after)}
    else:
        raise ValueError(f"unknown fault kind {kind!r}")
    overrides.setdefault("gcs", prototype_gcs_config())
    return ScenarioConfig(
        sites=sites,
        cpus_per_site=1,
        clients=clients,
        transactions=(
            transactions if transactions is not None else scaled_transactions()
        ),
        seed=seed,
        protocol=protocol,
        faults=faults,
        **overrides,
    )


def safety_fault_plans(sites: int = 3, seed: int = 5) -> Dict[str, Dict[int, FaultPlan]]:
    """The §5.3 fault matrix under which the committed sequence must be
    identical at all operational sites.

    Beyond the paper's five fault types, the recovery fault-loads
    (crash→recover and partition→heal, for both an ordinary member and
    the site that is sequencer *and* initial primary) verify the same
    condition across leave/rejoin cycles: a rejoined replica must end
    bit-identical to the survivors."""
    return {
        "clock-drift": {1: clock_drift(0.10, seed=seed)},
        "scheduling-latency": {1: scheduling_latency(0.010, seed=seed)},
        "random-loss": {i: random_loss(0.05, seed=seed + i) for i in range(sites)},
        "bursty-loss": {i: bursty_loss(0.05, seed=seed + i) for i in range(sites)},
        "crash-member": {sites - 1: FaultPlan(crash_at=20.0)},
        "crash-sequencer": {0: FaultPlan(crash_at=20.0)},
        "crash-recover-member": {sites - 1: crash_recover(20.0, 35.0, seed=seed)},
        "crash-recover-sequencer": {0: crash_recover(20.0, 35.0, seed=seed)},
        "partition-heal-member": {sites - 1: partition_heal(20.0, 40.0, seed=seed)},
        "partition-heal-sequencer": {0: partition_heal(20.0, 40.0, seed=seed)},
    }


def run_grid(
    configs: Union["CampaignSpec", Iterable[Tuple[str, ScenarioConfig]]],
    workers: Optional[int] = None,
    artifact_dir: Optional[str] = None,
    campaign: Optional[str] = None,
    progress: object = False,
) -> List[Tuple[str, ScenarioResult]]:
    """Run a campaign spec or labelled configurations through the runner.

    ``configs`` may be a :class:`repro.campaigns.CampaignSpec` — it is
    expanded into its labelled cells, the campaign name defaults to the
    spec's, and the spec hash is recorded in the artifact store for
    provenance — or the legacy list of ``(label, config)`` pairs.

    The default (``workers=None`` with ``REPRO_WORKERS`` unset) keeps
    the historical behavior: every scenario runs sequentially in this
    process.  ``workers>1`` farms cells to a process pool; an artifact
    directory makes the grid resumable.  Raises
    :class:`repro.runner.CampaignError` if any cell failed.
    """
    from ..campaigns import CampaignSpec  # local: keeps core import-light
    from ..runner import run_campaign

    manifest = None
    if isinstance(configs, CampaignSpec):
        spec = configs
        campaign = campaign if campaign is not None else spec.name
        manifest = spec.manifest()
        configs = spec.expand()
    return run_campaign(
        configs,
        workers=workers,
        artifact_dir=artifact_dir,
        campaign=campaign,
        progress=progress,
        manifest=manifest,
    ).pairs()
