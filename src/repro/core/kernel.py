"""Discrete-event simulation kernel modeled after the Scalable Simulation
Framework (SSF).

The paper builds its tool on the Java SSF; this module is the Python
equivalent substrate: a deterministic event queue plus two programming
models layered on it:

* **callback events** — ``Simulator.schedule`` runs a callable at a future
  simulated instant; this is the style the protocol runtime uses.
* **processes** — generator coroutines driven by :class:`Process`; the
  database-server and client models are written in this style because
  transactions are naturally sequential (fetch, process, write, commit).

Simulated time is a ``float`` number of seconds.  Ties are broken by a
monotonically increasing sequence number so the execution order is fully
deterministic for a given schedule of calls.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Signal",
    "Entity",
    "SimulationError",
    "MS",
    "US",
    "KB",
    "MB",
]

#: One millisecond, in simulated seconds.
MS = 1e-3
#: One microsecond, in simulated seconds.
US = 1e-6
#: One kilobyte, in bytes (used pervasively by the network model).
KB = 1024
#: One megabyte, in bytes.
MB = 1024 * 1024

# Module-level binding: a global load beats attribute lookup on the two
# hottest scheduling entry points.
_heappush = heapq.heappush


class SimulationError(Exception):
    """Raised on misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled
    before they fire.  A cancelled event stays in the heap but is skipped
    when popped (lazy deletion), which keeps cancellation O(1); the owning
    simulator compacts the heap once cancelled entries outnumber live
    ones, so cancel-heavy workloads cannot bloat the queue.

    The heap itself is ordered by ``(time, seq)`` *tuples* — plain tuple
    comparison runs in C, and event ordering is the hottest comparison in
    the entire simulator — so events never need to be compared directly.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state}>"


class Simulator:
    """The discrete-event scheduler at the heart of the tool.

    A single :class:`Simulator` instance owns the virtual clock for an
    entire experiment: every simulated host, CPU, link, client and the
    centralized runtime all schedule against it, which is precisely what
    gives the tool global observation and control (the paper's §2.2).
    """

    def __init__(self) -> None:
        #: Min-heap of ``(time, seq, event)`` entries — or, for the
        #: fire-and-forget :meth:`call` path, ``(time, seq, fn, args)``.
        #: Keyed by tuple so heap maintenance compares tuples in C
        #: instead of calling ``Event.__lt__`` — profiling shows event
        #: comparison dominating large campaigns otherwise (millions of
        #: calls per cell).  ``(time, seq)`` is unique, so comparison
        #: never reaches the mixed third element.
        self._queue: list[tuple] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        #: Cancelled events still sitting in the heap (lazy deletion).
        self._cancelled = 0
        self.events_executed = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        ``delay`` must be non-negative; scheduling "now" (delay 0) is
        permitted and runs after already-queued events for this instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        time = self._now + delay
        self._seq += 1
        event = Event(time, self._seq, fn, args, self)
        _heappush(self._queue, (time, self._seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, current time is {self._now!r}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args, self)
        _heappush(self._queue, (time, self._seq, event))
        return event

    def call(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event` handle, so
        the callback cannot be cancelled.

        Most scheduling in the simulator never uses the returned handle —
        link transmissions, storage sector completions, lock wake-ups,
        process steps — yet :meth:`schedule` pays for an :class:`Event`
        allocation each time.  This variant pushes a bare
        ``(time, seq, fn, args)`` entry instead.  Ordering is identical:
        the entry consumes the same sequence number a handle-bearing event
        would have, and heap comparison never reaches the third element
        because ``(time, seq)`` keys are unique.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        self._seq += 1
        _heappush(self._queue, (self._now + delay, self._seq, fn, args))

    def _note_cancelled(self) -> None:
        """Lazy-deletion bookkeeping: compact the heap once cancelled
        entries exceed half of it (with a small floor so tiny queues
        don't churn).  Compaction filters in place — ``run`` holds an
        alias to the list — and reheapifies; pop order is unaffected
        because the ``(time, seq)`` keys are unique and total."""
        self._cancelled += 1
        queue = self._queue
        if self._cancelled > 8 and self._cancelled * 2 > len(queue):
            queue[:] = [
                entry for entry in queue if len(entry) == 4 or not entry[2].cancelled
            ]
            heapq.heapify(queue)
            self._cancelled = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the final simulated time.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, mirroring SSF's bounded runs.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        # The hottest loop in the repository: locals for the queue (its
        # identity is stable — compaction filters in place) and heappop,
        # tuple unpacking instead of attribute loads.
        queue = self._queue
        heappop = heapq.heappop
        budget = -1 if max_events is None else max_events
        limit = float("inf") if until is None else until
        try:
            # Two copies of the dispatch loop: the budget comparison is
            # dead weight on the (overwhelmingly common) unbounded path,
            # and this loop runs once per event in the whole simulator.
            if budget < 0:
                while queue and not self._stopped:
                    entry = queue[0]
                    time = entry[0]
                    if time > limit:
                        break
                    heappop(queue)
                    if len(entry) == 4:
                        # Fire-and-forget entry from :meth:`call` — nothing
                        # to check for cancellation, just dispatch.
                        self._now = time
                        entry[2](*entry[3])
                    else:
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        self._now = time
                        event.fn(*event.args)
                    executed += 1
            else:
                while queue and not self._stopped:
                    if executed == budget:
                        break
                    entry = queue[0]
                    time = entry[0]
                    if time > limit:
                        break
                    heappop(queue)
                    if len(entry) == 4:
                        self._now = time
                        entry[2](*entry[3])
                    else:
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        self._now = time
                        event.fn(*event.args)
                    executed += 1
        finally:
            self._running = False
            self.events_executed += executed
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(
            1 for entry in self._queue if len(entry) == 4 or not entry[2].cancelled
        )

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def process(self, generator: Generator, name: str = "") -> "Process":
        """Start a generator coroutine as a simulated process.

        The generator may yield:

        * a number — sleep that many simulated seconds;
        * a :class:`Signal` — suspend until the signal fires, receiving the
          fired value as the result of the ``yield``;
        * another :class:`Process` — suspend until that process terminates.
        """
        proc = Process(self, generator, name)
        # Start on a fresh event so creation order equals start order but
        # the caller's frame finishes first.
        self.call(0.0, proc._step, None)
        return proc


class Signal:
    """A one-shot or repeating wake-up condition for processes.

    Processes that yield a signal are suspended until :meth:`fire` is
    called, at which point all current waiters are resumed with the fired
    value.  New waiters after a fire wait for the next fire (signals do not
    latch) unless constructed with ``latch=True``, in which case a fired
    signal immediately releases any later waiter with the stored value.
    """

    __slots__ = ("sim", "latch", "_fired", "_value", "_waiters")

    def __init__(self, sim: Simulator, latch: bool = False):
        self.sim = sim
        self.latch = latch
        self._fired = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def fire(self, value: Any = None) -> None:
        """Wake all waiting processes with ``value``."""
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        sim = self.sim
        for waiter in waiters:
            # Inlined zero-delay Simulator.call.
            sim._seq += 1
            _heappush(sim._queue, (sim._now, sim._seq, waiter, (value,)))

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self.latch and self._fired:
            self.sim.call(0.0, resume, self._value)
        else:
            self._waiters.append(resume)


class Process:
    """A running generator coroutine (see :meth:`Simulator.process`)."""

    __slots__ = ("sim", "name", "_gen", "_done", "_result", "_done_signal")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        self.sim = sim
        self.name = name
        self._gen = generator
        self._done = False
        self._result: Any = None
        self._done_signal = Signal(sim, latch=True)

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        """Value returned by the generator (``None`` until done)."""
        return self._result

    def _step(self, sent_value: Any) -> None:
        if self._done:
            return
        try:
            yielded = self._gen.send(sent_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            # Sleeps are never cancelled individually (interrupt() marks
            # the process done and the stale step no-ops), so the
            # handle-free path applies — inlined, as every transaction
            # step in the process model passes through here.
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(f"cannot schedule {delay!r}s in the past")
            sim = self.sim
            sim._seq += 1
            _heappush(sim._queue, (sim._now + delay, sim._seq, self._step, (None,)))
        elif isinstance(yielded, Signal):
            yielded._add_waiter(self._step)
        elif isinstance(yielded, Process):
            yielded._done_signal._add_waiter(self._step)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _finish(self, result: Any) -> None:
        self._done = True
        self._result = result
        self._done_signal.fire(result)

    def interrupt(self, error: Optional[BaseException] = None) -> None:
        """Terminate the process.

        If ``error`` is given it is thrown into the generator so ``finally``
        blocks run; otherwise the generator is closed.  Used by the fault
        injector to crash simulated components.
        """
        if self._done:
            return
        if error is not None:
            try:
                self._gen.throw(error)
            except (StopIteration, type(error)):
                pass
        else:
            self._gen.close()
        self._finish(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "running"
        return f"<Process {self.name!r} {state}>"


class Entity:
    """Base class for simulation components owning a reference to the clock.

    SSF models are built as libraries of entities; ours follow suit.  The
    class only centralizes the ``sim`` handle and scheduling helpers so
    component code reads naturally.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name or type(self).__name__
        # Bind the simulator's schedule directly on the instance: entity
        # scheduling is hot-path (every link transmission, storage sector
        # and CPU completion goes through it) and the extra delegation
        # frame of the class-level helper below is measurable.  The
        # method definition stays as documentation and for subclasses
        # that look it up on the class.
        self.schedule = sim.schedule
        self.call = sim.call

    @property
    def now(self) -> float:
        return self.sim._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        return self.sim.schedule(delay, fn, *args)

    def call(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        self.sim.call(delay, fn, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def drain(sim: Simulator, processes: Iterable[Process], until: float) -> None:
    """Run ``sim`` until every process in ``processes`` finished or ``until``.

    Convenience used by tests and examples.
    """
    sim.run(until=until)
    unfinished = [p for p in processes if not p.done]
    if unfinished:
        raise SimulationError(f"{len(unfinished)} processes unfinished at t={until}")
