"""The centralized simulation runtime (CSRT) — the paper's §2 contribution.

Real protocol code (group communication, certification) executes inside
the discrete-event simulation.  Its duration is obtained from a profiling
timer and charged to a simulated CPU, so real jobs compete with modeled
transaction-processing jobs for the same processor.  The two hazards of
Figure 1(b) are handled exactly as the paper prescribes:

* an event scheduled *by real code* with delay δq is entered into the
  simulation with delay δ′q = Δ1 + δq, where Δ1 is the real time already
  consumed by the running job — otherwise the event could land in the
  simulation past;
* the profiling timer is **paused** whenever real code re-enters the
  runtime (to schedule, send, or read the clock), so runtime overhead is
  never billed to the job, and resumed on return.

Fault injection (§5.3) intercepts calls in and out of this runtime via a
:class:`RuntimeInterceptor`; the concrete fault models live in
:mod:`repro.core.faults`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .clock import CostModelTimer, CpuCostModel, ProfilingTimer, WallClockTimer
from .cpu import CpuPool, Job, REAL_JOB
from .kernel import Entity, Event, Simulator

__all__ = ["SiteRuntime", "RuntimeInterceptor", "ScheduledCallback", "MEASURED", "MODELED"]

#: Clock mode: durations measured with the host's monotonic clock (the
#: paper's perfctr mechanism).
MEASURED = "measured"
#: Clock mode: durations taken from the deterministic CPU cost model.
MODELED = "modeled"


class RuntimeInterceptor:
    """Pass-through hooks on every boundary crossing of the runtime.

    The fault injector subclasses this; the default implementation is the
    identity (no faults).  One interceptor instance guards one site.
    """

    #: Set when the site has been crashed; checked on every crossing.
    crashed: bool = False

    def transform_delay(self, delay: float) -> float:
        """Rewrite a delay requested by real code (drift, sched latency)."""
        return delay

    def transform_elapsed(self, elapsed: float) -> float:
        """Rewrite a measured job duration (clock drift scales it down)."""
        return elapsed

    def drop_incoming(self, source: Any, payload: bytes) -> bool:
        """Return True to discard a datagram upon reception (loss models)."""
        return False

    def on_crash(self) -> None:
        """Notification that the site was crashed (for logging)."""


class ScheduledCallback:
    """Cancellable handle for a callback scheduled by protocol code."""

    __slots__ = ("_event", "cancelled")

    def __init__(self) -> None:
        self._event: Optional[Event] = None
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()


class SiteRuntime(Entity):
    """Centralized simulation runtime scoped to one database site.

    Owns the site's clock-mode configuration and mediates every
    interaction between the real protocol code on this site and the
    simulation: job execution, timers, and the simulated network.
    """

    def __init__(
        self,
        sim: Simulator,
        cpus: CpuPool,
        mode: str = MODELED,
        cost_model: Optional[CpuCostModel] = None,
        cpu_scale: float = 1.0,
        interceptor: Optional[RuntimeInterceptor] = None,
        name: str = "csrt",
    ):
        super().__init__(sim, name)
        if mode not in (MEASURED, MODELED):
            raise ValueError(f"unknown clock mode {mode!r}")
        self.cpus = cpus
        self.mode = mode
        self.cost_model = cost_model or CpuCostModel()
        self.cpu_scale = cpu_scale
        self.interceptor = interceptor or RuntimeInterceptor()
        #: Hook installed by the network bridge: ``fn(dest, payload)``
        #: injects a datagram into the simulated stack *now*.
        self.network_send: Optional[Callable[[Any, bytes], None]] = None
        #: Handler installed by protocol code for incoming datagrams.
        self.receiver: Optional[Callable[[Any, bytes], None]] = None
        self._active_timer: Optional[ProfilingTimer] = None
        #: One reusable cost-model timer: jobs never nest (``execute``
        #: runs each real job to completion on the single-threaded
        #: kernel), and ``start()`` resets the accumulator, so allocating
        #: a fresh timer per job is pure garbage-collector churn.
        self._model_timer = CostModelTimer()
        #: Counters surfaced in experiment reports.
        self.stats = {
            "real_jobs": 0,
            "datagrams_in": 0,
            "datagrams_out": 0,
            "drops_injected": 0,
            "jobs_skipped_crashed": 0,
        }

    # ------------------------------------------------------------------
    # executing real code
    # ------------------------------------------------------------------
    def _new_timer(self) -> ProfilingTimer:
        if self.mode == MEASURED:
            return WallClockTimer(scale=self.cpu_scale)
        return self._model_timer

    def submit_real(
        self,
        fn: Callable[[], None],
        tag: str = CpuCostModel.TIMER,
        nbytes: int = 0,
        delay: float = 0.0,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Queue real code for execution ``delay`` seconds from now.

        The code runs when a CPU dequeues it; its measured (or modeled)
        duration then occupies that CPU, during which modeled jobs wait.
        """
        job = Job(
            REAL_JOB,
            execute=self._make_executor(fn, tag, nbytes),
            on_complete=on_complete,
            tag=tag,
        )
        if delay <= 0:
            self.cpus.submit(job)
        else:
            self.call(delay, self.cpus.submit, job)

    def _make_executor(self, fn: Callable[[], None], tag: str, nbytes: int):
        # The entry cost is a pure function of (tag, nbytes) — price it
        # when the job is created, not when it runs: one lookup instead
        # of one per execution, and the closure stays a cheap cell load.
        entry_cost = self.cost_model.cost(tag, nbytes)

        def execute() -> float:
            interceptor = self.interceptor
            if interceptor.crashed:
                self.stats["jobs_skipped_crashed"] += 1
                return 0.0
            timer = self._new_timer()
            self._active_timer = timer
            timer.start()
            timer.charge(entry_cost)
            try:
                fn()
            finally:
                elapsed = timer.stop()
                self._active_timer = None
            self.stats["real_jobs"] += 1
            return interceptor.transform_elapsed(elapsed)

        return execute

    # ------------------------------------------------------------------
    # services callable *by running real code*
    # ------------------------------------------------------------------
    def rt_now(self) -> float:
        """Simulated time as seen by real code: kernel time plus the real
        time its job has consumed so far (Figure 1(b))."""
        timer = self._active_timer
        if timer is not None:
            return self.sim._now + timer.elapsed()
        return self.sim._now

    def rt_charge(self, seconds: float) -> None:
        """Explicit work declaration from protocol hot loops (cost model)."""
        if self._active_timer is not None:
            self._active_timer.charge(seconds)

    def rt_schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        tag: str = CpuCostModel.TIMER,
        nbytes: int = 0,
    ) -> ScheduledCallback:
        """Schedule a future real-code callback with the Δ1 correction.

        The callback itself is run as a real job (it is protocol code and
        must be profiled and charged to the CPU like any other).
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        delay = self.interceptor.transform_delay(delay)
        handle = ScheduledCallback()
        timer = self._active_timer
        if timer is not None:
            timer.pause()
            delta1 = timer.elapsed()
        else:
            delta1 = 0.0
        try:

            def fire() -> None:
                if handle.cancelled or self.interceptor.crashed:
                    return
                self.submit_real(lambda: fn(*args), tag=tag, nbytes=nbytes)

            # Handle-free schedule: ``fire`` re-checks ``handle.cancelled``
            # itself, so the cancellable Event (and its allocation — one
            # per protocol timer) is redundant.  Cancelled timers no-op at
            # fire time instead of being dropped from the heap; protocol
            # timers are short and rarely cancelled, so the heap stays
            # small either way.
            self.sim.call(delta1 + delay, fire)
        finally:
            if timer is not None:
                timer.resume()
        return handle

    def rt_send(self, dest: Any, payload: bytes) -> None:
        """Hand a datagram to the simulated network.

        The send CPU overhead (fixed + per byte) is charged to the running
        job; the datagram leaves the host once the work done so far (Δ1,
        including that overhead) has elapsed on the simulated clock.
        """
        if self.interceptor.crashed:
            return
        if self.network_send is None:
            raise RuntimeError(f"{self.name}: no network bridge installed")
        timer = self._active_timer
        if timer is not None:
            timer.charge(self.cost_model.cost(CpuCostModel.SEND, len(payload)))
            timer.pause()
            delta1 = timer.elapsed()
        else:
            delta1 = 0.0
        try:
            self.stats["datagrams_out"] += 1
            if delta1 > 0:
                self.sim.call(delta1, self.network_send, dest, payload)
            else:
                self.network_send(dest, payload)
        finally:
            if timer is not None:
                timer.resume()

    # ------------------------------------------------------------------
    # network → real code
    # ------------------------------------------------------------------
    def deliver(self, source: Any, payload: bytes) -> None:
        """Called by the simulated stack when a datagram reaches this site.

        Reception is where the paper injects message loss ("each message
        is discarded upon reception with the specified probability").
        """
        if self.interceptor.crashed:
            return
        if self.interceptor.drop_incoming(source, payload):
            self.stats["drops_injected"] += 1
            return
        if self.receiver is None:
            return
        self.stats["datagrams_in"] += 1
        handler = self.receiver
        self.submit_real(
            lambda: handler(source, payload),
            tag=CpuCostModel.RECV,
            nbytes=len(payload),
        )

    # ------------------------------------------------------------------
    # fault control
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Stop the site: pending and future real jobs become no-ops and
        the network boundary is sealed in both directions (§5.3)."""
        self.interceptor.crashed = True
        self.interceptor.on_crash()
