"""Deterministic seed-stream derivation for scenario assembly.

Every component that needs randomness derives it from the scenario seed
through a *named stream*: ``derive_rng(seed, "storage", site_index)``.
Each stream owns a registered multiplier, and registration rejects both
duplicate names and duplicate multipliers, so independently developed
components — new replication protocols in particular — cannot
accidentally collide seed streams and silently correlate their
randomness.

The multipliers reproduce the historical hand-rolled
``random.Random(seed * K + index)`` derivations bit-for-bit, so every
existing scenario's results are unchanged.
"""

from __future__ import annotations

import random
from typing import Dict

__all__ = ["derive_seed", "derive_rng", "register_stream", "stream_multiplier"]

#: stream name -> multiplier; seeds derive as ``seed * multiplier + index``.
_STREAMS: Dict[str, int] = {
    "storage": 1000,  # per-site storage latency jitter
    "workload": 77,  # per-site TPC-C generation and client think times
    "protocol": 13,  # per-site protocol-runtime randomness
    "faults": 31,  # per-site fault-plan (loss model) seeds
}


def register_stream(stream: str, multiplier: int) -> None:
    """Register a new seed stream; collisions are errors, not warnings."""
    if stream in _STREAMS:
        raise ValueError(f"seed stream {stream!r} already registered")
    if multiplier in _STREAMS.values():
        owner = next(k for k, v in _STREAMS.items() if v == multiplier)
        raise ValueError(
            f"multiplier {multiplier} already used by stream {owner!r}"
        )
    _STREAMS[stream] = multiplier


def stream_multiplier(stream: str) -> int:
    try:
        return _STREAMS[stream]
    except KeyError:
        known = ", ".join(sorted(_STREAMS))
        raise ValueError(
            f"unknown seed stream {stream!r} (registered: {known})"
        ) from None


def derive_seed(seed: int, stream: str, index: int = 0) -> int:
    """The derived integer seed of ``(seed, stream, index)``."""
    return seed * stream_multiplier(stream) + index


def derive_rng(seed: int, stream: str, index: int = 0) -> random.Random:
    """A ``random.Random`` seeded from the named stream."""
    return random.Random(derive_seed(seed, stream, index))
