"""Fault injection (paper §5.3) and the fault-action taxonomy.

Faults are injected by intercepting calls in and out of the centralized
runtime and by manipulating model state.  The five fault types of the
paper's campaign:

* **clock drift** — scheduled events are scaled up (postponed) and
  measured elapsed durations scaled down by the specified rate;
* **scheduling latency** — a randomly generated delay is added to events
  scheduled in the future;
* **random loss** — each message is discarded upon reception with the
  specified probability (transmission errors);
* **bursty loss** — alternating receive/discard periods with random
  durations (network congestion);
* **crash** — a node is stopped at a specified time, ending all
  interaction with other nodes.

Beyond the paper's campaign, the plan supports the *recovery* fault
actions that exercise the view-synchronous state-transfer subsystem
(see ARCHITECTURE.md):

* **recover** — a previously crashed node restarts with empty volatile
  state and rejoins the group via state transfer;
* **partition** — the node is cut off from the rest of the network
  fabric (nodes partitioned at the same instant form one component and
  keep talking to each other);
* **heal** — the network cut is removed; nodes that sat in a minority
  component rejoin the primary component via state transfer.

All of them compose: one :class:`FaultInjector` guards one site and can
carry any combination.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Optional

from ..net.lossmodels import BurstyLoss, LossProcess, NoLoss, RandomLoss
from .csrt import RuntimeInterceptor

__all__ = [
    "FAULT_ACTIONS",
    "FaultInjector",
    "FaultPlan",
    "clock_drift",
    "scheduling_latency",
    "random_loss",
    "bursty_loss",
    "crash_recover",
    "partition_heal",
]

#: The point-in-time fault actions a plan can schedule, in lifecycle
#: order.  README.md and ARCHITECTURE.md document each of these; the
#: docs-consistency test cross-checks the tables against this tuple.
FAULT_ACTIONS = ("crash", "recover", "partition", "heal")


@dataclass
class FaultPlan:
    """Declarative description of the faults afflicting one site."""

    #: Rate r: delays become delay*(1+r), measured durations duration/(1+r).
    clock_drift_rate: float = 0.0
    #: Maximum extra delay added to scheduled events (uniform in [0, max]).
    scheduling_latency_max: float = 0.0
    #: Probability of dropping each received message.
    random_loss_rate: float = 0.0
    #: Bursty loss: overall rate (with bursts of ``bursty_loss_burst``
    #: messages on average).  Mutually exclusive with random loss.
    bursty_loss_rate: float = 0.0
    bursty_loss_burst: float = 5.0
    #: Simulated time at which the site crashes (None = never).
    crash_at: Optional[float] = None
    #: Simulated time at which a crashed site restarts and rejoins the
    #: group via state transfer (requires ``crash_at``; must leave the
    #: site down long enough for the survivors to exclude it — a few
    #: ``GcsConfig.suspect_after`` periods).
    recover_at: Optional[float] = None
    #: Simulated time at which the site is partitioned away from every
    #: site not partitioned at the same instant (None = never).
    partition_at: Optional[float] = None
    #: Simulated time at which the partition heals.  A site that sat in
    #: a minority component rejoins via state transfer on heal.
    heal_at: Optional[float] = None
    seed: int = 7

    def __post_init__(self) -> None:
        if self.recover_at is not None:
            if self.crash_at is None:
                raise ValueError("recover_at requires crash_at")
            if self.recover_at <= self.crash_at:
                raise ValueError("recover_at must be after crash_at")
        if self.heal_at is not None:
            if self.partition_at is None:
                raise ValueError("heal_at requires partition_at")
            if self.heal_at <= self.partition_at:
                raise ValueError("heal_at must be after partition_at")

    def has_faults(self) -> bool:
        return (
            self.clock_drift_rate != 0.0
            or self.scheduling_latency_max > 0.0
            or self.random_loss_rate > 0.0
            or self.bursty_loss_rate > 0.0
            or self.crash_at is not None
            or self.partition_at is not None
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class FaultInjector(RuntimeInterceptor):
    """A runtime interceptor realizing a :class:`FaultPlan`."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        if self.plan.random_loss_rate > 0 and self.plan.bursty_loss_rate > 0:
            raise ValueError("choose either random or bursty loss, not both")
        self.rng = random.Random(self.plan.seed)
        self.crashed = False
        if self.plan.random_loss_rate > 0:
            self.loss: LossProcess = RandomLoss(
                self.plan.random_loss_rate, random.Random(self.plan.seed + 1)
            )
        elif self.plan.bursty_loss_rate > 0:
            self.loss = BurstyLoss.for_rate(
                self.plan.bursty_loss_rate,
                mean_burst=self.plan.bursty_loss_burst,
                rng=random.Random(self.plan.seed + 1),
            )
        else:
            self.loss = NoLoss()
        self.stats = {
            "delays_stretched": 0,
            "messages_dropped": 0,
            "recoveries": 0,
        }

    # ------------------------------------------------------------------
    # RuntimeInterceptor hooks
    # ------------------------------------------------------------------
    def transform_delay(self, delay: float) -> float:
        plan = self.plan
        if plan.clock_drift_rate:
            delay *= 1.0 + plan.clock_drift_rate
            self.stats["delays_stretched"] += 1
        if plan.scheduling_latency_max > 0 and delay > 0:
            delay += self.rng.uniform(0.0, plan.scheduling_latency_max)
            self.stats["delays_stretched"] += 1
        return delay

    def transform_elapsed(self, elapsed: float) -> float:
        if self.plan.clock_drift_rate:
            return elapsed / (1.0 + self.plan.clock_drift_rate)
        return elapsed

    def drop_incoming(self, source: Any, payload: bytes) -> bool:
        if self.loss.should_drop():
            self.stats["messages_dropped"] += 1
            return True
        return False

    # ------------------------------------------------------------------
    # recovery control (the ``recover`` fault action)
    # ------------------------------------------------------------------
    def recover(self) -> None:
        """Un-seal the runtime boundary after a crash: the site restarts
        with empty volatile state and may announce itself for rejoin.
        The loss/drift fault models keep running — a recovered site is
        subject to the same environment it crashed in."""
        self.crashed = False
        self.stats["recoveries"] += 1


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------
def clock_drift(rate: float, seed: int = 7) -> FaultPlan:
    return FaultPlan(clock_drift_rate=rate, seed=seed)


def scheduling_latency(max_delay: float, seed: int = 7) -> FaultPlan:
    return FaultPlan(scheduling_latency_max=max_delay, seed=seed)


def random_loss(rate: float, seed: int = 7) -> FaultPlan:
    return FaultPlan(random_loss_rate=rate, seed=seed)


def bursty_loss(rate: float, burst: float = 5.0, seed: int = 7) -> FaultPlan:
    return FaultPlan(bursty_loss_rate=rate, bursty_loss_burst=burst, seed=seed)


def crash_recover(crash_at: float, recover_at: float, seed: int = 7) -> FaultPlan:
    """Crash at ``crash_at`` and rejoin via state transfer at ``recover_at``."""
    return FaultPlan(crash_at=crash_at, recover_at=recover_at, seed=seed)


def partition_heal(partition_at: float, heal_at: float, seed: int = 7) -> FaultPlan:
    """Partition away at ``partition_at``; heal (and, from a minority
    component, rejoin via state transfer) at ``heal_at``."""
    return FaultPlan(partition_at=partition_at, heal_at=heal_at, seed=seed)
