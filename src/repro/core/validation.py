"""Model validation (paper §4.2, Figures 3 and 4).

The centralized simulation runtime is validated by comparing its
behaviour against the real test system on three micro-benchmarks — UDP
flood sender bandwidth, receiver bandwidth on Ethernet 100, and
round-trip latency — and the database model by Q-Q plots of transaction
latency against a 20-client run of the real engine.

We have no 2001 testbed, so the "Real" curves are **analytic reference
models encoding the paper's published measurements** (DESIGN.md §3):
CPU-bound socket writes with a 4 KB page-boundary penalty, wire-limited
reception, and affine round-trips with per-fragment overhead.  The CSRT
curves are *measured* by actually running the flood/ping-pong code under
the runtime, exactly as the paper does.  Two published divergences are
reproduced on purpose:

* the real system's write bandwidth drops past the 4 KB page boundary;
  the simulated stack has no virtual-memory model, so it doesn't (paper:
  irrelevant, the protocol uses smaller packets);
* SSFNet does not enforce the Ethernet MTU for UDP, so simulated RTTs
  diverge from the real system above ~1400 bytes unless MTU enforcement
  is enabled (our network model makes it a flag).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..net.address import Endpoint
from ..net.link import WIRE_OVERHEAD_BYTES
from ..net.network import FRAGMENT_OVERHEAD_BYTES, Network
from ..net.udp import UdpSocket
from .clock import CpuCostModel
from .cpu import CpuPool
from .csrt import SiteRuntime
from .kernel import Simulator

__all__ = [
    "ValidationPoint",
    "real_send_bandwidth_bps",
    "real_recv_bandwidth_bps",
    "real_round_trip",
    "csrt_send_bandwidth_bps",
    "csrt_recv_bandwidth_bps",
    "csrt_round_trip",
    "reference_latency_sample",
]

#: Ethernet payload capacity per fragment (MTU minus IP/UDP headers).
_MTU_PAYLOAD = 1472
#: Real-system page-boundary penalty on socket writes (seconds) — the
#: memory-management overhead the paper observes past 4 KB.
_PAGE_PENALTY = 18e-6
_PAGE_SIZE = 4096


@dataclass(frozen=True)
class ValidationPoint:
    """One (message size, metric) sample of a validation curve."""

    size: int
    real: float
    csrt: float

    @property
    def relative_error(self) -> float:
        if self.real == 0:
            return 0.0
        return abs(self.csrt - self.real) / self.real


# ----------------------------------------------------------------------
# analytic "Real" reference curves (the paper's measured testbed)
# ----------------------------------------------------------------------
def real_send_bandwidth_bps(
    size: int, cost_model: Optional[CpuCostModel] = None
) -> float:
    """Socket write bandwidth of the real system: CPU-bound, with the
    4 KB virtual-memory page penalty (Figure 3(a))."""
    model = cost_model or CpuCostModel()
    per_message = model.cost(CpuCostModel.SEND, size)
    if size > _PAGE_SIZE:
        per_message += _PAGE_PENALTY
    return size * 8.0 / per_message


def real_recv_bandwidth_bps(
    size: int,
    cost_model: Optional[CpuCostModel] = None,
    wire_bps: float = 100e6,
) -> float:
    """Receiver goodput: the sender's rate capped by Ethernet 100 framing
    (Figure 3(b))."""
    goodput = wire_bps * size / _wire_bytes(size)
    return min(real_send_bandwidth_bps(size, cost_model), goodput)


def real_round_trip(
    size: int,
    cost_model: Optional[CpuCostModel] = None,
    wire_bps: float = 100e6,
    path_latency: float = 70e-6,
    per_fragment_kernel: float = 15e-6,
) -> float:
    """Round-trip of a request/echo pair on the real system.

    Each direction crosses a store-and-forward switch (two
    serializations of the framed, MTU-fragmented packet), pays the
    propagation/switch latency, and the kernel charges per-fragment
    reassembly work — which the simulated stack does not model, giving
    the divergence above ~1 KB the paper attributes to SSFNet's missing
    MTU enforcement (Figure 3(c))."""
    model = cost_model or CpuCostModel()
    fragments = max(1, -(-size // _MTU_PAYLOAD))
    serialization = 2.0 * _wire_bytes(size) * 8.0 / wire_bps
    stack = model.cost(CpuCostModel.SEND, size) + model.cost(
        CpuCostModel.RECV, size
    )
    one_way = (
        stack
        + serialization
        + path_latency
        + (fragments - 1) * per_fragment_kernel
    )
    return 2.0 * one_way


def _wire_bytes(size: int) -> float:
    """Bytes on the wire for a UDP payload of ``size`` (real system:
    MTU-enforced fragmentation)."""
    fragments = max(1, -(-size // _MTU_PAYLOAD))
    return size + WIRE_OVERHEAD_BYTES + (fragments - 1) * (
        WIRE_OVERHEAD_BYTES + FRAGMENT_OVERHEAD_BYTES
    )


# ----------------------------------------------------------------------
# measured CSRT curves (actually run the runtime)
# ----------------------------------------------------------------------
def csrt_send_bandwidth_bps(
    size: int, duration: float = 0.25, cost_model: Optional[CpuCostModel] = None
) -> float:
    """Flood-write benchmark under the CSRT: a single process sends
    back-to-back datagrams; the achieved rate is CPU-bound by the
    calibrated send overheads."""
    sim = Simulator()
    # A capacious fabric: the write benchmark measures socket/CPU limits.
    net = Network(sim, default_bandwidth_bps=10e9, default_link_latency=10e-6)
    sender = net.add_host("sender")
    net.add_host("sink")
    sock = UdpSocket(sender, 1)
    runtime = SiteRuntime(
        sim, CpuPool(sim, 1), cost_model=cost_model or CpuCostModel()
    )
    runtime.network_send = sock.send
    payload = bytes(size)
    dest = Endpoint("sink", 1)
    sent = {"bytes": 0}

    def send_one() -> None:
        runtime.rt_send(dest, payload)
        sent["bytes"] += size

    def chain() -> None:
        if sim.now >= duration:
            return
        runtime.submit_real(send_one, tag=CpuCostModel.NOOP, on_complete=chain)

    chain()
    sim.run(until=duration)
    return sent["bytes"] * 8.0 / duration


def csrt_recv_bandwidth_bps(
    size: int,
    duration: float = 0.25,
    cost_model: Optional[CpuCostModel] = None,
    wire_bps: float = 100e6,
) -> float:
    """Flood-receive benchmark: the same flood pushed through a simulated
    Ethernet 100; the receiver counts goodput (Figure 3(b))."""
    sim = Simulator()
    net = Network(sim, default_bandwidth_bps=wire_bps, default_link_latency=50e-6)
    sender_host = net.add_host("sender")
    sink_host = net.add_host("sink")
    out_sock = UdpSocket(sender_host, 1)
    in_sock = UdpSocket(sink_host, 1)
    runtime = SiteRuntime(
        sim, CpuPool(sim, 1), cost_model=cost_model or CpuCostModel()
    )
    runtime.network_send = out_sock.send
    received = {"bytes": 0, "first": None, "last": 0.0}

    def on_receive(source, payload_in: bytes) -> None:
        received["bytes"] += len(payload_in)
        if received["first"] is None:
            received["first"] = sim.now
        received["last"] = sim.now

    in_sock.set_receiver(on_receive)
    payload = bytes(size)
    dest = Endpoint("sink", 1)

    def send_one() -> None:
        runtime.rt_send(dest, payload)

    def chain() -> None:
        if sim.now >= duration:
            return
        runtime.submit_real(send_one, tag=CpuCostModel.NOOP, on_complete=chain)

    chain()
    sim.run(until=duration + 0.1)  # drain in-flight packets
    if received["first"] is None or received["last"] <= received["first"]:
        return 0.0
    # Rate over the actual reception window (drain included, so a
    # wire-limited flood is measured at the wire rate, not inflated).
    span = received["last"] - received["first"]
    return (received["bytes"] - size) * 8.0 / span


def csrt_round_trip(
    size: int,
    rounds: int = 50,
    cost_model: Optional[CpuCostModel] = None,
    wire_bps: float = 100e6,
    enforce_mtu: bool = True,
) -> float:
    """Ping-pong benchmark under the CSRT: mean round-trip of ``rounds``
    request/echo pairs across a simulated Ethernet 100.

    ``enforce_mtu=False`` reproduces SSFNet's documented behaviour of
    not fragmenting UDP above the MTU — the source of the paper's
    observed divergence beyond ~1000 bytes."""
    sim = Simulator()
    net = Network(
        sim,
        default_bandwidth_bps=wire_bps,
        default_link_latency=50e-6,
        enforce_mtu=enforce_mtu,
    )
    a_host = net.add_host("a")
    b_host = net.add_host("b")
    a_sock = UdpSocket(a_host, 1)
    b_sock = UdpSocket(b_host, 1)
    model = cost_model or CpuCostModel()
    a_rt = SiteRuntime(sim, CpuPool(sim, 1), cost_model=model, name="a.rt")
    b_rt = SiteRuntime(sim, CpuPool(sim, 1), cost_model=model, name="b.rt")
    a_rt.network_send = a_sock.send
    b_rt.network_send = b_sock.send
    a_sock.set_receiver(a_rt.deliver)
    b_sock.set_receiver(b_rt.deliver)
    payload = bytes(size)
    times: List[float] = []
    state = {"sent_at": 0.0, "count": 0}

    def a_send() -> None:
        state["sent_at"] = sim.now
        a_rt.rt_send(Endpoint("b", 1), payload)

    def b_receive(source, data) -> None:
        b_rt.rt_send(Endpoint("a", 1), data)

    def a_receive(source, data) -> None:
        times.append(sim.now - state["sent_at"])
        state["count"] += 1
        if state["count"] < rounds:
            a_rt.submit_real(a_send, tag=CpuCostModel.NOOP)

    b_rt.receiver = b_receive
    a_rt.receiver = a_receive
    a_rt.submit_real(a_send, tag=CpuCostModel.NOOP)
    sim.run(until=60.0)
    if len(times) < rounds:
        raise RuntimeError(f"ping-pong stalled after {len(times)} rounds")
    return sum(times) / len(times)


# ----------------------------------------------------------------------
# Figure 4: reference latency sample for the Q-Q validation
# ----------------------------------------------------------------------
def reference_latency_sample(
    tx_classes: Tuple[str, ...],
    profiles,
    count: int,
    seed: int = 17,
    storage_sector_latency: float = 1.727e-3,
    storage_concurrency: int = 4,
) -> List[float]:
    """Latencies "measured on the real engine" at 20-client load.

    At 20 clients the real system is almost queue-free (utilization a
    few percent), so per-transaction latency decomposes into profiled
    CPU time, the near-constant commit cost, commit I/O for update
    classes, and scheduling noise.  This is the reference sample the
    simulated latencies are Q-Q-compared against (Figure 4)."""
    rng = random.Random(seed)
    sample: List[float] = []
    for _ in range(count):
        tx_class = rng.choice(tx_classes)
        latency = profiles.sample_cpu(tx_class, rng) + profiles.commit_cpu
        sectors = profiles.sectors(tx_class)
        if sectors:
            waves = -(-sectors // storage_concurrency)
            latency += waves * storage_sector_latency
        latency *= max(0.8, 1.0 + rng.gauss(0.0, 0.06))
        sample.append(latency)
    return sample
