"""Command-line campaign driver: ``python -m repro.runner``.

Runs one of the canonical grids through the parallel runner and prints a
paper-style summary table.  Replicated cells run under the replication
protocol selected with ``--protocol`` (``all`` compares every registered
protocol side by side); centralized baseline cells are protocol-free and
appear once.  Examples::

    # tiny pool-path smoke test over every protocol (CI uses this);
    # includes one crash->recover cell per protocol
    python -m repro.runner --grid smoke --protocol all --workers 2 --transactions 120

    # the Figure 5/6 performance sweep, resumable under results/fig5/
    python -m repro.runner --grid fig5 --workers 4 --artifact-dir results/fig5

    # the Figure 7 fault grid under primary-copy replication
    python -m repro.runner --grid fig7 --protocol primary-copy --workers 3

    # recovery fault-loads (crash->recover, partition->heal) with
    # time-to-rejoin / backlog metrics, compared across protocols
    python -m repro.runner --grid recovery --protocol all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence, Tuple

from ..core.experiment import ScenarioConfig
from ..core.scenarios import (
    CLIENT_LEVELS,
    SYSTEM_CONFIGS,
    fault_config,
    performance_config,
    scaled_transactions,
)
from ..protocols import available_protocols
from . import CampaignResult, run_campaign

_EPILOG = """\
environment knobs (every grid honours them; see README "Fault model &
recovery" for the full table):
  REPRO_SCALE         per-run transaction scale (default 0.3; 1.0 = paper size)
  REPRO_WORKERS       default worker-process count (--workers overrides)
  REPRO_ARTIFACT_DIR  root for resumable JSON artifacts (--artifact-dir overrides)
  REPRO_PROTOCOL      protocol for the *benchmark* grids (this CLI uses --protocol)

fault actions available to scenario configs: crash / recover /
partition / heal (the 'recovery' grid and the smoke grid's recovery
cell exercise crash->recover and partition->heal end to end).
"""

Grid = List[Tuple[str, ScenarioConfig]]


def _label_prefix(protocol: str, protocols: Sequence[str]) -> str:
    """Replicated cell-label prefix for ``protocol``.

    A lone default-protocol run keeps the historical protocol-free
    labels, so artifact directories recorded before protocols became a
    grid axis still resume; any other selection names the protocol in
    every replicated label."""
    if list(protocols) == ["dbsm"]:
        return ""
    return f"{protocol} "


def _smoke_grid(transactions: int, protocols: Sequence[str]) -> Grid:
    grid: Grid = []
    for clients in (40, 80):
        grid.append(
            (
                f"1x1cpu c{clients}",
                ScenarioConfig(
                    sites=1,
                    cpus_per_site=1,
                    clients=clients,
                    transactions=transactions,
                    seed=42 + clients,
                ),
            )
        )
    for protocol in protocols:
        for clients in (40, 80):
            grid.append(
                (
                    f"{_label_prefix(protocol, protocols)}3x1cpu c{clients}",
                    ScenarioConfig(
                        sites=3,
                        cpus_per_site=1,
                        clients=clients,
                        transactions=transactions,
                        seed=42 + clients,
                        protocol=protocol,
                    ),
                )
            )
        # One recovery cell per protocol: a member crashes early and
        # rejoins via state transfer while the campaign is still going.
        grid.append(
            (
                f"{_label_prefix(protocol, protocols)}recovery c40",
                fault_config(
                    "crash-recover",
                    clients=40,
                    transactions=transactions,
                    seed=42,
                    protocol=protocol,
                    fault_at=5.0,
                    repair_after=3.0,
                ),
            )
        )
    return grid


def _fig5_grid(transactions: int, protocols: Sequence[str]) -> Grid:
    # Centralized baselines are protocol-free and appear once (labelled
    # as before); replicated configurations appear once per protocol.
    grid: Grid = []
    for label, sites, cpus in SYSTEM_CONFIGS:
        for protocol in [None] if sites == 1 else protocols:
            for clients in CLIENT_LEVELS:
                prefix = (
                    "" if protocol is None else _label_prefix(protocol, protocols)
                )
                cell_label = f"{prefix}{label} c{clients}"
                grid.append(
                    (
                        cell_label,
                        performance_config(
                            sites,
                            cpus,
                            clients,
                            transactions=transactions,
                            seed=42 + clients,
                            protocol=protocol or "dbsm",
                        ),
                    )
                )
    return grid


def _fig7_grid(transactions: int, protocols: Sequence[str]) -> Grid:
    return [
        (
            f"{_label_prefix(protocol, protocols)}{kind}",
            fault_config(kind, transactions=transactions, protocol=protocol),
        )
        for protocol in protocols
        for kind in ("none", "random", "bursty")
    ]


def _recovery_grid(transactions: int, protocols: Sequence[str]) -> Grid:
    """Recovery fault-loads: a member leaves (crash or partition) and
    rejoins via view-synchronous state transfer mid-campaign."""
    # Early fault times + a moderate population keep the leave/rejoin
    # cycle inside the run even at small --transactions counts.
    return [
        (
            f"{_label_prefix(protocol, protocols)}{kind}",
            fault_config(
                kind,
                clients=100,
                transactions=transactions,
                protocol=protocol,
                fault_at=5.0,
                repair_after=5.0,
            ),
        )
        for protocol in protocols
        for kind in ("crash-recover", "partition-heal")
    ]


GRIDS = {
    "smoke": _smoke_grid,
    "fig5": _fig5_grid,
    "fig7": _fig7_grid,
    "recovery": _recovery_grid,
}


def _print_summary(campaign: CampaignResult) -> None:
    print(
        f"\n{'cell':<28s} {'status':<8s} {'tpm':>8s} {'latency':>9s} "
        f"{'abort':>7s} {'cpu':>6s} {'net KB/s':>9s} {'src':>10s}"
    )
    for cell in campaign.cells:
        if cell.status != "ok":
            print(f"{cell.label:<28s} {'FAILED':<8s}  (see traceback below)")
            continue
        result = cell.result
        total_cpu, _ = result.cpu_usage()
        print(
            f"{cell.label:<28s} {'ok':<8s} {result.throughput_tpm():8.1f} "
            f"{result.mean_latency() * 1000:7.1f}ms "
            f"{result.abort_rate():6.2f}% "
            f"{total_cpu * 100:5.1f}% "
            f"{result.network_kbps():9.1f} {cell.source:>10s}"
        )
    recovered = [
        (cell.label, event)
        for cell in campaign.cells
        if cell.status == "ok"
        for event in cell.result.completed_rejoins()
    ]
    if recovered:
        print(
            f"\n{'recovery':<28s} {'site':>5s} {'rejoin':>8s} "
            f"{'backlog':>8s} {'snapshot':>9s} {'orphans':>8s}"
        )
        for label, event in recovered:
            print(
                f"{label:<28s} {event.site:>5d} "
                f"{event.time_to_rejoin():7.2f}s "
                f"{event.backlog_replayed:8d} "
                f"{event.snapshot_bytes:8d}B "
                f"{event.orphaned_commits:8d}"
            )
    for cell in campaign.failures:
        print(f"\n--- {cell.label} ---\n{cell.error}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description=__doc__,
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--grid", choices=sorted(GRIDS), default="smoke")
    parser.add_argument(
        "--protocol",
        choices=sorted(available_protocols()) + ["all"],
        default="dbsm",
        help="replication protocol for the replicated cells "
        "('all' runs every registered protocol side by side)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="default: REPRO_WORKERS or 1"
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="campaign directory for resumable JSON artifacts "
        "(default: REPRO_ARTIFACT_DIR/<grid> when that is set)",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=None,
        help="per-cell transaction count (default: REPRO_SCALE-scaled paper count)",
    )
    parser.add_argument("--quiet", action="store_true", help="no progress lines")
    args = parser.parse_args(argv)

    transactions = args.transactions or scaled_transactions()
    protocols = (
        list(available_protocols()) if args.protocol == "all" else [args.protocol]
    )
    grid = GRIDS[args.grid](transactions, protocols)
    campaign = run_campaign(
        grid,
        workers=args.workers,
        artifact_dir=args.artifact_dir,
        campaign=args.grid,
        progress=not args.quiet,
    )
    _print_summary(campaign)
    return 0 if campaign.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
