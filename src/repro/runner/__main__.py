"""Command-line campaign driver: ``python -m repro.runner``.

Runs one of the canonical grids through the parallel runner and prints a
paper-style summary table.  Examples::

    # tiny pool-path smoke test (CI uses this)
    python -m repro.runner --grid smoke --workers 2 --transactions 120

    # the Figure 5/6 performance sweep, resumable under results/fig5/
    python -m repro.runner --grid fig5 --workers 4 --artifact-dir results/fig5

    # the Figure 7 fault grid
    python -m repro.runner --grid fig7 --workers 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Tuple

from ..core.experiment import ScenarioConfig
from ..core.scenarios import (
    CLIENT_LEVELS,
    SYSTEM_CONFIGS,
    fault_config,
    performance_config,
    scaled_transactions,
)
from . import CampaignResult, run_campaign


def _smoke_grid(transactions: int) -> List[Tuple[str, ScenarioConfig]]:
    grid = []
    for sites, cpus in ((1, 1), (3, 1)):
        for clients in (40, 80):
            label = f"{sites}x{cpus}cpu c{clients}"
            grid.append(
                (
                    label,
                    ScenarioConfig(
                        sites=sites,
                        cpus_per_site=cpus,
                        clients=clients,
                        transactions=transactions,
                        seed=42 + clients,
                    ),
                )
            )
    return grid


def _fig5_grid(transactions: int) -> List[Tuple[str, ScenarioConfig]]:
    return [
        (
            f"{label} c{clients}",
            performance_config(
                sites, cpus, clients, transactions=transactions, seed=42 + clients
            ),
        )
        for label, sites, cpus in SYSTEM_CONFIGS
        for clients in CLIENT_LEVELS
    ]


def _fig7_grid(transactions: int) -> List[Tuple[str, ScenarioConfig]]:
    return [
        (kind, fault_config(kind, transactions=transactions))
        for kind in ("none", "random", "bursty")
    ]


GRIDS = {"smoke": _smoke_grid, "fig5": _fig5_grid, "fig7": _fig7_grid}


def _print_summary(campaign: CampaignResult) -> None:
    print(
        f"\n{'cell':<24s} {'status':<8s} {'tpm':>8s} {'latency':>9s} "
        f"{'abort':>7s} {'cpu':>6s} {'net KB/s':>9s} {'src':>10s}"
    )
    for cell in campaign.cells:
        if cell.status != "ok":
            print(f"{cell.label:<24s} {'FAILED':<8s}  (see traceback below)")
            continue
        result = cell.result
        total_cpu, _ = result.cpu_usage()
        print(
            f"{cell.label:<24s} {'ok':<8s} {result.throughput_tpm():8.1f} "
            f"{result.mean_latency() * 1000:7.1f}ms "
            f"{result.abort_rate():6.2f}% "
            f"{total_cpu * 100:5.1f}% "
            f"{result.network_kbps():9.1f} {cell.source:>10s}"
        )
    for cell in campaign.failures:
        print(f"\n--- {cell.label} ---\n{cell.error}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner", description=__doc__
    )
    parser.add_argument("--grid", choices=sorted(GRIDS), default="smoke")
    parser.add_argument(
        "--workers", type=int, default=None, help="default: REPRO_WORKERS or 1"
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="campaign directory for resumable JSON artifacts "
        "(default: REPRO_ARTIFACT_DIR/<grid> when that is set)",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=None,
        help="per-cell transaction count (default: REPRO_SCALE-scaled paper count)",
    )
    parser.add_argument("--quiet", action="store_true", help="no progress lines")
    args = parser.parse_args(argv)

    transactions = args.transactions or scaled_transactions()
    grid = GRIDS[args.grid](transactions)
    campaign = run_campaign(
        grid,
        workers=args.workers,
        artifact_dir=args.artifact_dir,
        campaign=args.grid,
        progress=not args.quiet,
    )
    _print_summary(campaign)
    return 0 if campaign.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
