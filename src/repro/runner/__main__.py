"""Command-line campaign driver: ``python -m repro.runner``.

Campaigns are declarative :class:`~repro.campaigns.CampaignSpec` grids,
resolved from the named-campaign registry or from an exported JSON spec
file, sliced or widened with ``--set``, and executed through the
parallel runner with a paper-style summary table.  Subcommands::

    # what is registered, and what would a campaign run?
    python -m repro.runner list
    python -m repro.runner describe smoke
    python -m repro.runner describe fig5 --set clients=100,500

    # tiny pool-path smoke test over every protocol (CI uses this);
    # includes one crash->recover cell per protocol
    python -m repro.runner run smoke --protocol all --workers 2 --transactions 120

    # the Figure 5/6 performance sweep, resumable under results/fig5/
    python -m repro.runner run fig5 --workers 4 --artifact-dir results/fig5

    # slice or widen any axis of a registered campaign
    python -m repro.runner run fig7 --set fault=random,bursty --set seed=42,43

    # save a spec, edit/diff it, re-run it from the file; the artifact
    # store records the spec hash for provenance
    python -m repro.runner export recovery -o recovery.json
    python -m repro.runner run --spec recovery.json --protocol all

    # analyze stored artifacts: summary, paper figures, grouping,
    # pivoting and protocol comparisons (see repro.analysis)
    python -m repro.runner report results/fig5 --figure fig5a
    python -m repro.runner report results/fig5 --metric throughput_tpm --by clients
    python -m repro.runner report results/smoke --compare protocol=dbsm,primary-copy
    python -m repro.runner report results/smoke --format json

The legacy ``--grid NAME`` flag form is still accepted and translated
to ``run NAME`` with a deprecation note.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..analysis import FIGURES, summary_text
from ..campaigns import (
    CampaignSpec,
    CampaignSpecError,
    available_campaigns,
    get_campaign,
    parse_axis_override,
)
from ..protocols import available_protocols
from . import CampaignResult, run_campaign

_EPILOG = """\
environment knobs (every campaign honours them; see README "Fault model &
recovery" for the full table):
  REPRO_SCALE         per-run transaction scale (default 0.3; 1.0 = paper size)
  REPRO_WORKERS       default worker-process count (--workers overrides)
  REPRO_ARTIFACT_DIR  root for resumable JSON artifacts (--artifact-dir overrides)
  REPRO_PROTOCOL      protocol for the *benchmark* grids (this CLI uses --protocol)

axis overrides compose left to right: --set protocol=dbsm,primary-copy
--set clients=100,500 --set transactions=600.  --protocol and
--transactions are sugar for the matching --set.
"""

_SUBCOMMANDS = ("run", "list", "describe", "export", "report", "serve", "perf")


def _print_summary(campaign: CampaignResult) -> None:
    """The per-cell summary table (rendered by :mod:`repro.analysis`,
    byte-identical to the historical formatter) plus failure dumps."""
    print(summary_text(campaign.cells))
    for cell in campaign.failures:
        print(f"\n--- {cell.label} ---\n{cell.error}", file=sys.stderr)


# ----------------------------------------------------------------------
# spec resolution
# ----------------------------------------------------------------------
def _resolve_spec(args: argparse.Namespace) -> CampaignSpec:
    """Registered name or --spec file, then the axis overrides."""
    if args.spec is not None:
        if args.name is not None:
            raise CampaignSpecError(
                "give either a campaign name or --spec FILE, not both"
            )
        try:
            data = json.loads(Path(args.spec).read_text())
        except OSError as exc:
            raise CampaignSpecError(f"cannot read spec file: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CampaignSpecError(
                f"{args.spec}: not valid JSON ({exc})"
            ) from exc
        spec = CampaignSpec.from_dict(data)
    elif args.name is not None:
        spec = get_campaign(args.name)
    else:
        raise CampaignSpecError(
            "give a campaign name (see 'list') or --spec FILE"
        )
    for override in args.set or []:
        axis, values = parse_axis_override(override)
        spec = spec.with_axis(axis, values)
    if getattr(args, "protocol", None) is not None:
        protocols = (
            available_protocols()
            if args.protocol == "all"
            else (args.protocol,)
        )
        spec = spec.with_axis("protocol", tuple(protocols))
    # `is None` deliberately: `--transactions 0` must surface the
    # validation error, not silently fall back to the scaled default.
    if getattr(args, "transactions", None) is not None:
        spec = spec.with_axis("transactions", (args.transactions,))
    return spec


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    cells = spec.expand()
    campaign = run_campaign(
        cells,
        workers=args.workers,
        artifact_dir=args.artifact_dir,
        campaign=spec.name,
        progress=not args.quiet,
        manifest=spec.manifest(),
        journal=False if args.no_journal else "auto",
    )
    _print_summary(campaign)
    return 0 if campaign.ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in available_campaigns():
        spec = get_campaign(name)
        rows.append((name, len(spec.expand()), spec.description))
    width = max(len(name) for name, _, _ in rows)
    print(f"{'campaign':<{width}s}  {'cells':>5s}  description")
    for name, cells, description in rows:
        print(f"{name:<{width}s}  {cells:>5d}  {description}")
    print(
        "\nrun one with: python -m repro.runner run <campaign> "
        "[--protocol all] [--set axis=v1,v2 ...]"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    cells = spec.expand()
    print(f"campaign:    {spec.name}")
    if spec.description:
        print(f"description: {spec.description}")
    print(f"spec hash:   {spec.spec_hash()}")
    print("axes:")
    for name, values in spec.axis_summary().items():
        shown = ", ".join(_describe_value(name, v) for v in values)
        print(f"  {name}: {shown}")
    print(f"cells ({len(cells)}):")
    for label, config in cells:
        print(
            f"  {label:<32s} {config.sites}x{config.cpus_per_site}cpu "
            f"c{config.clients} t{config.transactions} "
            f"seed={config.seed} protocol={config.protocol}"
        )
    return 0


def _describe_value(name: str, value: object) -> str:
    if value is None:
        return "<scaled default>" if name == "transactions" else "None"
    if name == "system" and isinstance(value, (tuple, list)):
        return f"{value[0]} ({value[1]}x{value[2]}cpu)"
    return str(value)


def _cmd_report(args: argparse.Namespace) -> int:
    from ..analysis.report import run_report  # heavy path, load on use

    if args.html or args.format == "html":
        if any(
            x is not None
            for x in (args.by, args.pivot, args.compare, args.figure)
        ):
            raise ValueError(
                "--html renders the full report page; it cannot be "
                "combined with --by/--pivot/--compare/--figure"
            )
        from ..analysis.report import load_resultset
        from ..dashboard.page import render_report_html

        html = render_report_html(load_resultset(args.target))
        if args.output:
            Path(args.output).write_text(html)
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            sys.stdout.write(html)
        return 0
    if args.output:
        raise ValueError("-o/--output only applies to --html reports")
    print(
        run_report(
            args.target,
            metrics=args.metric,
            by=args.by,
            pivot=args.pivot,
            compare=args.compare,
            figure=args.figure,
            fmt=args.format,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..core.env import env_str
    from ..dashboard.server import serve_campaign  # heavy path, load on use

    target = Path(args.target)
    if not target.is_dir():
        root = env_str("REPRO_ARTIFACT_DIR")
        if root is not None and (Path(root) / args.target).is_dir():
            target = Path(root) / args.target
        else:
            print(
                f"note: {target} does not exist yet — serving anyway and "
                "waiting for a campaign to write artifacts there",
                file=sys.stderr,
            )
    serve_campaign(target, host=args.host, port=args.port)
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    # heavy path, load on use
    from ..perf import PERF_CAMPAIGNS, PINNED_SEED, PINNED_TRANSACTIONS, run_perf

    progress = None if args.quiet else (lambda line: print(line, file=sys.stderr))
    try:
        payload, path = run_perf(
            campaigns=tuple(args.campaign) if args.campaign else PERF_CAMPAIGNS,
            transactions=(
                args.transactions
                if args.transactions is not None
                else PINNED_TRANSACTIONS
            ),
            seed=args.seed if args.seed is not None else PINNED_SEED,
            bench_id=args.bench_id,
            output=args.output,
            baseline=args.baseline,
            artifact_root=args.artifact_dir,
            force=args.force,
            progress=progress,
            workers=args.workers,
            journal=args.journal,
        )
    except FileExistsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, entry in payload["campaigns"].items():
        print(
            f"{name}: {entry['cells']} cells in {entry['wall_seconds']:.1f}s "
            f"= {entry['cells_per_sec']:.3f} cells/s, "
            f"{entry['tx_per_sec']:.0f} tx/s, "
            f"{entry['events_per_sec']:.0f} events/s, "
            f"peak RSS {entry['peak_rss_kb']} KB"
        )
    for name, ratios in (payload.get("speedup") or {}).items():
        cells_ratio = ratios.get("cells_per_sec")
        if cells_ratio is not None:
            print(f"{name}: {cells_ratio:.2f}x cells/s vs baseline")
    if path is not None:
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    payload = dict(spec.to_dict())
    payload["spec_hash"] = spec.spec_hash()
    text = json.dumps(payload, indent=2) + "\n"
    if args.output:
        Path(args.output).write_text(text)
        print(
            f"wrote {spec.name} ({len(spec.expand())} cells, "
            f"hash {spec.spec_hash()}) to {args.output}",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(text)
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registered campaign name (see 'list')",
    )
    parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="load the campaign from an exported JSON spec file "
        "instead of the registry",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=None,
        metavar="AXIS=V1[,V2...]",
        help="override one sweep axis (repeatable); values parse as JSON "
        "scalars, else strings",
    )
    parser.add_argument(
        "--protocol",
        choices=sorted(available_protocols()) + ["all"],
        default=None,
        help="replication protocol for the replicated cells "
        "('all' runs every registered protocol side by side); "
        "sugar for --set protocol=...",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description=__doc__,
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run",
        help="expand a campaign spec and execute it",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_spec_arguments(run_p)
    run_p.add_argument(
        "--workers", type=int, default=None, help="default: REPRO_WORKERS or 1"
    )
    run_p.add_argument(
        "--artifact-dir",
        default=None,
        help="campaign directory for resumable JSON artifacts "
        "(default: REPRO_ARTIFACT_DIR/<campaign> when that is set)",
    )
    run_p.add_argument(
        "--transactions",
        type=int,
        default=None,
        help="per-cell transaction count (default: REPRO_SCALE-scaled "
        "paper count); sugar for --set transactions=N",
    )
    run_p.add_argument(
        "--no-journal",
        action="store_true",
        help="do not write the events.jsonl observability journal into "
        "the artifact directory (results are bit-identical either way)",
    )
    run_p.add_argument(
        "--quiet", action="store_true", help="no progress lines"
    )
    run_p.set_defaults(func=_cmd_run)

    list_p = sub.add_parser("list", help="list the registered campaigns")
    list_p.set_defaults(func=_cmd_list)

    describe_p = sub.add_parser(
        "describe",
        help="show a campaign's axes and the cells it would run",
    )
    _add_spec_arguments(describe_p)
    describe_p.set_defaults(func=_cmd_describe)

    export_p = sub.add_parser(
        "export",
        help="write a campaign spec as JSON (re-runnable via run --spec)",
    )
    _add_spec_arguments(export_p)
    export_p.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )
    export_p.set_defaults(func=_cmd_export)

    report_p = sub.add_parser(
        "report",
        help="analyze a campaign's stored artifacts (see repro.analysis)",
    )
    report_p.add_argument(
        "target",
        help="artifact directory, or a campaign name resolved under "
        "REPRO_ARTIFACT_DIR",
    )
    report_p.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help="registered metric name (repeatable; families like "
        "'abort_rate[payment-long]' work too); default: the headline set",
    )
    report_p.add_argument(
        "--by",
        default=None,
        metavar="AXIS",
        help="aggregate the metrics along one campaign axis "
        "(mean, with 95%% CI over seed replicates)",
    )
    report_p.add_argument(
        "--pivot",
        default=None,
        metavar="ROW,COL",
        help="pivot one --metric over two campaign axes",
    )
    report_p.add_argument(
        "--compare",
        default=None,
        metavar="AXIS=BASE,CAND",
        help="delta table between two slices, paired on the other axes "
        "(e.g. protocol=dbsm,primary-copy)",
    )
    report_p.add_argument(
        "--figure",
        choices=sorted(FIGURES),
        default=None,
        help="render one paper figure/table from the artifacts",
    )
    report_p.add_argument(
        "--format",
        choices=("text", "markdown", "csv", "json", "html"),
        default="text",
        help="output encoding (default: text); 'html' renders the "
        "self-contained report page",
    )
    report_p.add_argument(
        "--html",
        action="store_true",
        help="render one self-contained HTML report file "
        "(sugar for --format html; byte-deterministic for fixed artifacts)",
    )
    report_p.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the --html report to FILE instead of stdout",
    )
    report_p.set_defaults(func=_cmd_report)

    serve_p = sub.add_parser(
        "serve",
        help="serve the live dashboard over a campaign artifact directory",
    )
    serve_p.add_argument(
        "target",
        help="artifact directory, or a campaign name resolved under "
        "REPRO_ARTIFACT_DIR",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_p.add_argument(
        "--port", type=int, default=8035, help="bind port (default: 8035)"
    )
    serve_p.set_defaults(func=_cmd_serve)

    perf_p = sub.add_parser(
        "perf",
        help="measure the simulator over pinned campaigns and record a "
        "BENCH_<n>.json perf-trajectory file",
    )
    perf_p.add_argument(
        "--campaign",
        action="append",
        default=None,
        metavar="NAME",
        help="registered campaign to measure (repeatable; "
        "default: smoke and fig5)",
    )
    perf_p.add_argument(
        "--transactions",
        type=int,
        default=None,
        help="pinned per-cell transaction count (default: 600)",
    )
    perf_p.add_argument(
        "--seed", type=int, default=None, help="pinned seed (default: 42)"
    )
    perf_p.add_argument(
        "--bench-id",
        type=int,
        default=None,
        metavar="N",
        help="id for BENCH_<N>.json (default: next unused in the "
        "output directory, PR-number convention)",
    )
    perf_p.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="bench file path (default: BENCH_<id>.json in the current "
        "directory)",
    )
    perf_p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="prior bench file to embed and compute speedups against",
    )
    perf_p.add_argument(
        "--artifact-dir",
        default=None,
        metavar="DIR",
        help="also save the measured cell results as campaign artifacts "
        "under DIR/perf-<campaign> (report-able; never loaded back)",
    )
    perf_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per campaign (default: REPRO_WORKERS, "
        "else 1); recorded in the bench file's pinned section",
    )
    perf_p.add_argument(
        "--journal",
        action="store_true",
        help="write the events.jsonl journal inside the timed region "
        "(into --artifact-dir when given, else a scratch directory); "
        "disclosed as pinned.journal",
    )
    perf_p.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing bench file",
    )
    perf_p.add_argument(
        "--quiet", action="store_true", help="no per-cell progress lines"
    )
    perf_p.set_defaults(func=_cmd_perf)
    return parser


def _translate_legacy(argv: List[str]) -> List[str]:
    """Map the pre-subcommand flag CLI onto ``run`` (deprecated)."""
    if not argv:
        return ["run", "smoke"]  # the historical default grid
    if argv[0] in _SUBCOMMANDS or not argv[0].startswith("-"):
        return argv
    if argv[0] in ("-h", "--help"):
        return argv
    grid = "smoke"
    passthrough: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--grid" and i + 1 < len(argv):
            grid = argv[i + 1]
            i += 2
        elif arg.startswith("--grid="):
            grid = arg.split("=", 1)[1]
            i += 1
        else:
            passthrough.append(arg)
            i += 1
    print(
        "note: the '--grid NAME' flag form is deprecated; "
        f"use 'python -m repro.runner run {grid}'",
        file=sys.stderr,
    )
    return ["run", grid] + passthrough


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = _build_parser()
    args = parser.parse_args(_translate_legacy(argv))
    try:
        return args.func(args)
    except ValueError as exc:  # CampaignSpecError, unknown campaign, …
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
