"""Parallel experiment runner: labelled scenario grids across processes.

The paper's evaluation is a large scenario grid (Figures 5-7, Tables
1-2); this package executes such grids across worker processes with
deterministic per-scenario seeding, crash-isolated workers, progress/ETA
reporting and a JSON artifact store that makes campaigns resumable.

**Contract.** Given ``[(label, ScenarioConfig), ...]``, produce one
:class:`ScenarioResult` per cell — computed in-process, in a worker, or
loaded from a matching artifact — and report per-cell failures without
aborting the campaign.

**Invariants.**

* *Execution-path equivalence* — a cell's result is identical whether
  run directly, with ``workers=1``, in a pool, or resumed from an
  artifact (results serialize losslessly for everything the figures
  read);
* *Resume safety* — an artifact is only reused when its stored config
  matches the requested one exactly;
* *Crash isolation* — a worker crash (or a cell raising) marks that
  cell failed with its traceback; the rest of the campaign completes.

Quick start::

    from repro.runner import run_campaign

    campaign = run_campaign(
        [("3 Sites x500", ScenarioConfig(sites=3, clients=500, ...))],
        workers=4,                    # or REPRO_WORKERS
        artifact_dir="results/fig5",  # optional: skip completed cells
        progress=True,
    )
    for label, result in campaign.pairs():
        print(label, result.throughput_tpm())
"""

from .progress import ETA_WINDOW, CampaignProgress, ProgressEvent
from .runner import (
    ARTIFACT_DIR_ENV,
    WORKERS_ENV,
    CampaignCell,
    CampaignError,
    CampaignResult,
    resolve_workers,
    run_campaign,
)
from .store import MANIFEST_NAME, ArtifactCollisionError, ArtifactStore

__all__ = [
    "ARTIFACT_DIR_ENV",
    "ETA_WINDOW",
    "MANIFEST_NAME",
    "WORKERS_ENV",
    "ArtifactCollisionError",
    "ArtifactStore",
    "CampaignCell",
    "CampaignError",
    "CampaignProgress",
    "CampaignResult",
    "ProgressEvent",
    "resolve_workers",
    "run_campaign",
]
