"""Progress and ETA reporting for campaign runs.

The runner emits one :class:`ProgressEvent` per finished cell.  Passing
``progress=True`` to :func:`~repro.runner.run_campaign` installs the
default :class:`CampaignProgress` printer (one line per cell on stderr);
passing a callable receives the raw events instead — which is also how
the tests observe scheduling without parsing output.
"""

from __future__ import annotations

import math
import sys
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, TextIO

__all__ = ["ETA_WINDOW", "ProgressEvent", "CampaignProgress"]

#: How many recently *executed* cells feed the ETA rate estimate.
ETA_WINDOW = 32


@dataclass(frozen=True)
class ProgressEvent:
    """One campaign cell finished (run, loaded or failed)."""

    label: str
    status: str  # "ok" | "failed"
    source: str  # "in-process" | "worker" | "artifact"
    done: int  # cells finished so far (including this one)
    total: int  # cells in the campaign
    duration: float  # wall seconds spent on this cell (0 for artifacts)
    elapsed: float  # wall seconds since the campaign started
    eta: Optional[float]  # estimated remaining wall seconds, if known


class CampaignProgress:
    """Default progress printer: one line per finished cell with ETA.

    The ETA assumes the remaining cells cost the mean of the cells in
    the *executed window* — the last :data:`ETA_WINDOW` cells that
    actually ran.  Cache-hit cells (``source == "artifact"``) complete
    in ~0 s and never enter the window: on a resumed campaign they would
    otherwise drag the per-cell estimate toward zero and report an ETA
    of seconds for hours of remaining work.  The remaining cost is
    rounded up to whole worker *waves* (``ceil(remaining / workers)``),
    so a resumed campaign with fewer pending cells than workers predicts
    one full cell, not a fraction of one.
    """

    def __init__(
        self,
        total: int,
        workers: int = 1,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.perf_counter,
        window: int = ETA_WINDOW,
    ):
        self.total = total
        self.workers = max(1, workers)
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._started = clock()
        self._done = 0
        self._executed = 0
        self._executed_seconds = 0.0
        self._window: Deque[float] = deque(maxlen=max(1, window))

    # ------------------------------------------------------------------
    def event(self, label: str, status: str, source: str, duration: float) -> ProgressEvent:
        """Account one finished cell and build its event."""
        self._done += 1
        if source != "artifact":
            self._executed += 1
            self._executed_seconds += duration
            self._window.append(duration)
        return ProgressEvent(
            label=label,
            status=status,
            source=source,
            done=self._done,
            total=self.total,
            duration=duration,
            elapsed=self.elapsed(),
            eta=self.eta(),
        )

    def elapsed(self) -> float:
        """Wall seconds since the campaign started."""
        return self._clock() - self._started

    def eta(self) -> Optional[float]:
        if not self._window:
            return None  # cache hits say nothing about cell cost
        remaining = self.total - self._done
        if remaining <= 0:
            return 0.0
        mean = sum(self._window) / len(self._window)
        return mean * math.ceil(remaining / self.workers)

    # ------------------------------------------------------------------
    def __call__(self, event: ProgressEvent) -> None:
        eta = f"ETA {event.eta:.0f}s" if event.eta is not None else "ETA ?"
        mark = "ok" if event.status == "ok" else "FAIL"
        src = " (cached)" if event.source == "artifact" else ""
        print(
            f"[{event.done}/{event.total}] {mark:<4} {event.label}{src} "
            f"{event.duration:.1f}s — elapsed {event.elapsed:.0f}s, {eta}",
            file=self.stream,
        )
