"""Progress and ETA reporting for campaign runs.

The runner emits one :class:`ProgressEvent` per finished cell.  Passing
``progress=True`` to :func:`~repro.runner.run_campaign` installs the
default :class:`CampaignProgress` printer (one line per cell on stderr);
passing a callable receives the raw events instead — which is also how
the tests observe scheduling without parsing output.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional, TextIO

__all__ = ["ProgressEvent", "CampaignProgress"]


@dataclass(frozen=True)
class ProgressEvent:
    """One campaign cell finished (run, loaded or failed)."""

    label: str
    status: str  # "ok" | "failed"
    source: str  # "in-process" | "worker" | "artifact"
    done: int  # cells finished so far (including this one)
    total: int  # cells in the campaign
    duration: float  # wall seconds spent on this cell (0 for artifacts)
    elapsed: float  # wall seconds since the campaign started
    eta: Optional[float]  # estimated remaining wall seconds, if known


class CampaignProgress:
    """Default progress printer: one line per finished cell with ETA.

    The ETA assumes the remaining cells cost the mean of the cells
    actually *executed* so far (artifact loads are free and excluded)
    divided by the worker count — crude, but monotone and cheap.
    """

    def __init__(
        self,
        total: int,
        workers: int = 1,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.total = total
        self.workers = max(1, workers)
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._started = clock()
        self._done = 0
        self._executed = 0
        self._executed_seconds = 0.0

    # ------------------------------------------------------------------
    def event(self, label: str, status: str, source: str, duration: float) -> ProgressEvent:
        """Account one finished cell and build its event."""
        self._done += 1
        if source != "artifact":
            self._executed += 1
            self._executed_seconds += duration
        return ProgressEvent(
            label=label,
            status=status,
            source=source,
            done=self._done,
            total=self.total,
            duration=duration,
            elapsed=self._clock() - self._started,
            eta=self.eta(),
        )

    def eta(self) -> Optional[float]:
        if self._executed == 0:
            return None
        mean = self._executed_seconds / self._executed
        remaining = self.total - self._done
        return mean * remaining / self.workers

    # ------------------------------------------------------------------
    def __call__(self, event: ProgressEvent) -> None:
        eta = f"ETA {event.eta:.0f}s" if event.eta is not None else "ETA ?"
        mark = "ok" if event.status == "ok" else "FAIL"
        src = " (cached)" if event.source == "artifact" else ""
        print(
            f"[{event.done}/{event.total}] {mark:<4} {event.label}{src} "
            f"{event.duration:.1f}s — elapsed {event.elapsed:.0f}s, {eta}",
            file=self.stream,
        )
