"""JSON artifact store: one file per campaign cell.

Layout is ``<root>/<label>.json`` where ``<root>`` is typically
``results/<campaign>/``.  Each artifact carries the cell's label, the
full configuration encoding and the serialized
:class:`~repro.core.experiment.ScenarioResult`; a cell is only reused
when the stored configuration matches the requested one exactly, so
editing a grid invalidates precisely the cells it changes.

Campaigns driven by a :class:`~repro.campaigns.CampaignSpec`
additionally record provenance: a ``<root>/campaign.json`` manifest
holding the spec encoding and its content hash, and a ``spec_hash``
field on every cell computed under that spec.  Provenance never
affects resume-matching — only the stored config does.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Optional, Union

from ..core.experiment import ScenarioConfig, ScenarioResult

__all__ = ["ArtifactStore", "MANIFEST_NAME"]

#: Campaign-level provenance file inside the store root.
MANIFEST_NAME = "campaign.json"


def _slug(label: str) -> str:
    """Filesystem-safe, collision-free file stem for a cell label."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "cell"
    digest = hashlib.sha1(label.encode()).hexdigest()[:8]
    return f"{safe}-{digest}"


class ArtifactStore:
    """Persists per-cell results so campaigns are resumable."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Content hash of the campaign spec being executed, if any;
        #: stamped onto every artifact written while it is set.
        self.spec_hash: Optional[str] = None

    def path_for(self, label: str) -> Path:
        return self.root / f"{_slug(label)}.json"

    # -- provenance ----------------------------------------------------
    def write_manifest(self, manifest: dict) -> Path:
        """Record the campaign-level provenance (spec + hash) and start
        stamping cell artifacts with the spec hash."""
        self.spec_hash = manifest.get("spec_hash")
        path = self.root / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, path)
        return path

    def load_manifest(self) -> Optional[dict]:
        """The recorded campaign manifest, or None if absent/corrupt."""
        path = self.root / MANIFEST_NAME
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    # ------------------------------------------------------------------
    def load(self, label: str, config: ScenarioConfig) -> Optional[ScenarioResult]:
        """The stored result for ``label``, or None if absent, corrupt,
        or recorded under a different configuration."""
        path = self.path_for(label)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            if data.get("label") != label:
                return None
            stored_config = data.get("config")
            if isinstance(stored_config, dict):
                # Artifacts recorded before the protocol field existed
                # implicitly ran the then-only "dbsm" protocol; fill the
                # key so they keep matching instead of being recomputed.
                stored_config = dict(stored_config)
                stored_config.setdefault("protocol", "dbsm")
                # Likewise for the monitors field: older artifacts ran
                # with monitoring off (and off is bit-identical, so the
                # stored result is still the right answer).
                stored_config.setdefault("monitors", [])
            if stored_config != config.to_dict():
                return None
            return ScenarioResult.from_dict(data["result"])
        except (ValueError, KeyError, TypeError, OSError):
            return None  # unreadable artifacts are simply re-run

    def save(
        self,
        label: str,
        result: ScenarioResult,
        config: Optional[ScenarioConfig] = None,
    ) -> Path:
        """Atomically write the artifact for one completed cell.

        ``config`` should be the *requested* configuration when the
        result crossed a process boundary: deserialized results carry a
        config whose custom profiles were reduced to ``None``, which
        must not be recorded as the match key."""
        path = self.path_for(label)
        match_config = config if config is not None else result.config
        payload = {
            "label": label,
            "config": match_config.to_dict(),
            "result": result.to_dict(),
        }
        if self.spec_hash is not None:
            payload["spec_hash"] = self.spec_hash
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        return path
