"""JSON artifact store: one file per campaign cell.

Layout is ``<root>/<label>.json`` where ``<root>`` is typically
``results/<campaign>/``.  Each artifact carries the cell's label, the
full configuration encoding and the serialized
:class:`~repro.core.experiment.ScenarioResult`; a cell is only reused
when the stored configuration matches the requested one exactly, so
editing a grid invalidates precisely the cells it changes.

Campaigns driven by a :class:`~repro.campaigns.CampaignSpec`
additionally record provenance: a ``<root>/campaign.json`` manifest
holding the spec encoding and its content hash, and a ``spec_hash``
field on every cell computed under that spec.  Provenance never
affects resume-matching — only the stored config does.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.experiment import ScenarioConfig, ScenarioResult

__all__ = ["ArtifactCollisionError", "ArtifactStore", "MANIFEST_NAME"]

#: Campaign-level provenance file inside the store root.
MANIFEST_NAME = "campaign.json"


def _slug(label: str) -> str:
    """Filesystem-safe file stem for a cell label.

    The punctuation squash alone is lossy (``"a b"`` and ``"a/b"`` both
    squash to ``a-b``), so a truncated label digest disambiguates.  The
    digest is 32 bits — ample for campaign-sized label sets, but not a
    mathematical guarantee — so the store additionally *detects*
    stem collisions (see :class:`ArtifactCollisionError`) instead of
    letting two labels silently overwrite each other's artifacts.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "cell"
    digest = hashlib.sha1(label.encode()).hexdigest()[:8]
    return f"{safe}-{digest}"


class ArtifactCollisionError(RuntimeError):
    """Two different cell labels mapped to the same artifact file.

    Deliberately *not* a ValueError: the store's tolerant load paths
    swallow ValueError (corrupt artifacts are simply re-run), and a
    collision must never be swallowed — it means one label's results
    would silently overwrite another's.
    """


class ArtifactStore:
    """Persists per-cell results so campaigns are resumable."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Content hash of the campaign spec being executed, if any;
        #: stamped onto every artifact written while it is set.
        self.spec_hash: Optional[str] = None
        #: file stem -> label that claimed it (collision detection).
        self._claims: Dict[str, str] = {}

    def path_for(self, label: str) -> Path:
        stem = _slug(label)
        claimed = self._claims.setdefault(stem, label)
        if claimed != label:
            raise ArtifactCollisionError(
                f"cell labels {claimed!r} and {label!r} both map to "
                f"artifact stem {stem!r} — rename one of the labels"
            )
        return self.root / f"{stem}.json"

    # -- incremental listing -------------------------------------------
    def list_cells(self) -> List[Tuple[Path, int, int]]:
        """Every cell artifact as ``(path, mtime_ns, size)``, sorted by
        file name.

        The stat triple is the incremental-scan key the dashboard uses:
        an artifact whose triple is unchanged since the last scan need
        not be re-read.  Files that vanish between the listing and the
        stat (a writer's atomic replace) are skipped.
        """
        out: List[Tuple[Path, int, int]] = []
        for path in sorted(self.root.glob("*.json")):
            if path.name == MANIFEST_NAME:
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_mtime_ns, stat.st_size))
        return out

    @staticmethod
    def read_payload(path: Union[str, Path]) -> Optional[dict]:
        """The raw JSON payload of one cell artifact, or None when the
        file is unreadable, corrupt, or not a cell artifact."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or "result" not in data:
            return None
        return data

    # -- provenance ----------------------------------------------------
    def write_manifest(self, manifest: dict) -> Path:
        """Record the campaign-level provenance (spec + hash) and start
        stamping cell artifacts with the spec hash."""
        self.spec_hash = manifest.get("spec_hash")
        path = self.root / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, path)
        return path

    def load_manifest(self) -> Optional[dict]:
        """The recorded campaign manifest, or None if absent/corrupt."""
        path = self.root / MANIFEST_NAME
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    # ------------------------------------------------------------------
    def load(self, label: str, config: ScenarioConfig) -> Optional[ScenarioResult]:
        """The stored result for ``label``, or None if absent, corrupt,
        or recorded under a different configuration.

        A readable artifact recorded under a *different label* raises
        :class:`ArtifactCollisionError`: it means two labels share one
        file stem, and re-running (the treatment for every other
        mismatch) would overwrite the other label's results."""
        path = self.path_for(label)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # unreadable artifacts are simply re-run
        if not isinstance(data, dict):
            return None
        if "label" in data and data["label"] != label:
            raise ArtifactCollisionError(
                f"artifact {path} belongs to cell {data['label']!r} but "
                f"was looked up for {label!r} — two labels collide on "
                "one artifact file stem; rename one of the labels"
            )
        try:
            stored_config = data.get("config")
            if isinstance(stored_config, dict):
                # Artifacts recorded before the protocol field existed
                # implicitly ran the then-only "dbsm" protocol; fill the
                # key so they keep matching instead of being recomputed.
                stored_config = dict(stored_config)
                stored_config.setdefault("protocol", "dbsm")
                # Likewise for the monitors field: older artifacts ran
                # with monitoring off (and off is bit-identical, so the
                # stored result is still the right answer).
                stored_config.setdefault("monitors", [])
            if stored_config != config.to_dict():
                return None
            return ScenarioResult.from_dict(data["result"])
        except (ValueError, KeyError, TypeError, OSError):
            return None  # unreadable artifacts are simply re-run

    def save(
        self,
        label: str,
        result: ScenarioResult,
        config: Optional[ScenarioConfig] = None,
    ) -> Path:
        """Atomically write the artifact for one completed cell.

        ``config`` should be the *requested* configuration when the
        result crossed a process boundary: deserialized results carry a
        config whose custom profiles were reduced to ``None``, which
        must not be recorded as the match key.

        Refuses (:class:`ArtifactCollisionError`) to overwrite an
        existing artifact recorded under a different label — the
        cross-process half of stem-collision detection (``path_for``
        catches collisions within one store instance)."""
        path = self.path_for(label)
        if path.exists():
            existing = self.read_payload(path)
            recorded = existing.get("label") if existing else None
            if recorded is not None and recorded != label:
                raise ArtifactCollisionError(
                    f"refusing to overwrite {path}: it holds cell "
                    f"{recorded!r}, but {label!r} maps to the same "
                    "artifact file stem; rename one of the labels"
                )
        match_config = config if config is not None else result.config
        payload = {
            "label": label,
            "config": match_config.to_dict(),
            "result": result.to_dict(),
        }
        if self.spec_hash is not None:
            payload["spec_hash"] = self.spec_hash
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        return path
