"""Campaign execution: sequential in-process or across worker processes.

``run_campaign`` executes a list of labelled
:class:`~repro.core.experiment.ScenarioConfig` cells and returns a
:class:`CampaignResult` in input order.  Three execution sources:

* **artifact** — a matching result already sits in the artifact store
  (resume): the cell is loaded, not run;
* **in-process** — ``workers=1``: cells run sequentially in this
  process, bit-identical to calling ``Scenario(config).run()`` yourself
  (the legacy ``run_grid`` behavior);
* **worker** — ``workers>1``: cells are farmed to a
  ``ProcessPoolExecutor``; results cross the process boundary as
  ``ScenarioResult.to_dict()`` payloads.

Determinism: every scenario is seeded solely by its config, and
:class:`~repro.core.experiment.Scenario` restarts the transaction-id
stream, so the same cell produces bit-identical results — transaction
ids included — whichever source executed it and whatever ran in the
process beforehand.

Failures are isolated: an exception inside one cell — config error,
simulation bug, even a worker process dying — is recorded on that cell
(``status="failed"`` with the traceback) and the rest of the campaign
still completes.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.env import env_int, env_str
from ..core.experiment import Scenario, ScenarioConfig, ScenarioResult
from .progress import CampaignProgress, ProgressEvent
from .store import ArtifactStore

__all__ = [
    "ARTIFACT_DIR_ENV",
    "WORKERS_ENV",
    "CampaignCell",
    "CampaignError",
    "CampaignResult",
    "resolve_workers",
    "run_campaign",
]

#: Environment knob: default worker count when ``workers=None``.
WORKERS_ENV = "REPRO_WORKERS"
#: Environment knob: default artifact root when ``artifact_dir=None``.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"


class CampaignError(RuntimeError):
    """At least one campaign cell failed; carries the failed cells."""

    def __init__(self, failures: List["CampaignCell"]):
        self.failures = failures
        lines = [f"{len(failures)} campaign cell(s) failed:"]
        for cell in failures:
            first = (cell.error or "").strip().splitlines()
            lines.append(f"  {cell.label}: {first[-1] if first else 'unknown error'}")
        super().__init__("\n".join(lines))


@dataclass
class CampaignCell:
    """Outcome of one labelled grid cell."""

    label: str
    status: str  # "ok" | "failed"
    result: Optional[ScenarioResult]
    error: Optional[str]  # traceback text for failed cells
    duration: float  # wall seconds spent executing (0 for artifact loads)
    source: str  # "in-process" | "worker" | "artifact"
    #: Pid of the process that executed the cell (None for artifact
    #: loads and pool-level failures) — the journal's worker attribution.
    worker: Optional[int] = None


class CampaignResult:
    """All cells of a campaign, in the input grid order."""

    def __init__(self, cells: List[CampaignCell]):
        self.cells = cells

    @property
    def failures(self) -> List[CampaignCell]:
        return [c for c in self.cells if c.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def get(self, label: str) -> CampaignCell:
        for cell in self.cells:
            if cell.label == label:
                return cell
        raise KeyError(label)

    def pairs(self) -> List[Tuple[str, ScenarioResult]]:
        """``[(label, result)]`` in grid order; raises
        :class:`CampaignError` if any cell failed."""
        if self.failures:
            raise CampaignError(self.failures)
        return [(c.label, c.result) for c in self.cells]  # type: ignore[misc]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else 1.

    An unparseable or sub-1 ``REPRO_WORKERS`` warns once and falls back
    (see :mod:`repro.core.env`)."""
    if workers is not None:
        return max(1, int(workers))
    return env_int(WORKERS_ENV, 1, minimum=1)


def _resolve_store(
    artifact_dir: Optional[Union[str, Path]], campaign: Optional[str]
) -> Optional[ArtifactStore]:
    if artifact_dir is None:
        env = env_str(ARTIFACT_DIR_ENV)
        if env is None:
            return None
        artifact_dir = Path(env) / campaign if campaign else Path(env)
    return ArtifactStore(artifact_dir)


def _execute_cell(
    label: str, config: ScenarioConfig
) -> Tuple[str, Optional[dict], Optional[str], float, int]:
    """Worker-side entry point: run one cell, never raise.

    Results return as ``to_dict()`` payloads — live results hold
    simulator entities that must not cross the process boundary.  The
    trailing pid attributes the cell to the worker that ran it.
    """
    started = time.perf_counter()
    try:
        result = Scenario(config).run()
        return (
            label,
            result.to_dict(),
            None,
            time.perf_counter() - started,
            os.getpid(),
        )
    except BaseException:
        return (
            label,
            None,
            traceback.format_exc(),
            time.perf_counter() - started,
            os.getpid(),
        )


def _resolve_journal(
    journal: object, store: Optional[ArtifactStore]
) -> Tuple[Optional[object], bool]:
    """``(writer, owned)`` for the ``journal`` argument.

    ``"auto"`` enables the journal exactly when an artifact store is in
    play (the journal lives in the artifact directory); ``True``
    requires one; any other truthy value is used as a ready-made
    :class:`~repro.dashboard.journal.JournalWriter`-shaped object the
    caller owns (and closes)."""
    if journal is None or journal is False:
        return None, False
    if journal == "auto" or journal is True:
        if store is None:
            if journal is True:
                raise ValueError(
                    "journal=True needs an artifact store — pass "
                    "artifact_dir (or set REPRO_ARTIFACT_DIR)"
                )
            return None, False
        from ..dashboard.journal import JournalWriter, journal_path

        return JournalWriter(journal_path(store.root)), True
    return journal, False


def run_campaign(
    configs: Iterable[Tuple[str, ScenarioConfig]],
    workers: Optional[int] = None,
    artifact_dir: Optional[Union[str, Path]] = None,
    campaign: Optional[str] = None,
    progress: Union[bool, Callable[[ProgressEvent], None]] = False,
    manifest: Optional[Dict[str, object]] = None,
    journal: object = "auto",
) -> CampaignResult:
    """Execute a labelled scenario grid, possibly in parallel.

    ``workers`` defaults to ``REPRO_WORKERS`` (else 1: sequential
    in-process execution).  ``artifact_dir`` (or ``REPRO_ARTIFACT_DIR``,
    suffixed with ``campaign`` when given) enables the resumable JSON
    store: cells whose stored config matches are loaded, completed cells
    are saved as soon as they finish.  ``progress`` may be ``True`` for
    the default stderr printer or any callable taking a
    :class:`ProgressEvent`.  ``manifest`` (typically
    ``CampaignSpec.manifest()``) is recorded in the artifact store for
    provenance: a ``campaign.json`` file plus a ``spec_hash`` field on
    every cell artifact written during this run.

    ``journal`` controls the ``events.jsonl`` observability journal in
    the artifact directory (see :mod:`repro.dashboard.journal`):
    ``"auto"`` (default) writes it whenever an artifact store is in
    play, ``False``/``None`` disables it, ``True`` requires a store,
    and a :class:`~repro.dashboard.journal.JournalWriter`-shaped object
    is used as-is (and left open).  The journal is pure observability:
    scenario results are bit-identical with it on or off.  A cell's
    ``cell-finish`` event is emitted *after* its artifact is saved, so
    a live dashboard that reacts to the event finds the artifact on
    disk.
    """
    labelled = list(configs)
    seen: set = set()
    for label, _ in labelled:
        if label in seen:
            raise ValueError(f"duplicate campaign label: {label!r}")
        seen.add(label)

    workers = resolve_workers(workers)
    store = _resolve_store(artifact_dir, campaign)
    if store is not None and manifest is not None:
        store.write_manifest(manifest)
    writer, owns_writer = _resolve_journal(journal, store)
    reporter = CampaignProgress(total=len(labelled), workers=workers)
    if progress is True:
        on_event: Optional[Callable[[ProgressEvent], None]] = reporter
    elif callable(progress):
        on_event = progress
    else:
        on_event = None

    cells: Dict[str, CampaignCell] = {}
    requested: Dict[str, ScenarioConfig] = dict(labelled)

    if writer is not None:
        name = campaign or (manifest or {}).get("campaign") or ""
        writer.campaign_started(
            campaign=str(name),
            total=len(labelled),
            workers=workers,
            spec_hash=(manifest or {}).get("spec_hash"),
        )

    def finish(cell: CampaignCell) -> None:
        cells[cell.label] = cell
        if store is not None and cell.status == "ok" and cell.source != "artifact":
            # key the artifact on the *requested* config: a result that
            # crossed the process boundary lost any custom profiles
            store.save(cell.label, cell.result, config=requested[cell.label])
        event = reporter.event(cell.label, cell.status, cell.source, cell.duration)
        if writer is not None:
            violations = (
                cell.result.violations if cell.result is not None else []
            )
            writer.cell_finished(
                label=cell.label,
                status=cell.status,
                source=cell.source,
                duration=cell.duration,
                worker=cell.worker,
                done=event.done,
                total=event.total,
                eta=event.eta,
                elapsed=event.elapsed,
                violations=len(violations),
            )
            if cell.source != "artifact":
                # flush-through: violations from resumed cells were
                # already journalled by the run that executed them
                for violation in violations:
                    writer.violation(cell.label, violation)
        if on_event is not None:
            on_event(event)

    on_start = writer.cell_started if writer is not None else None

    try:
        # -- resume: load completed cells from the artifact store -------
        pending: List[Tuple[str, ScenarioConfig]] = []
        for label, config in labelled:
            cached = store.load(label, config) if store is not None else None
            if cached is not None:
                finish(CampaignCell(label, "ok", cached, None, 0.0, "artifact"))
            else:
                pending.append((label, config))

        if workers <= 1:
            _run_in_process(pending, finish, on_start)
        else:
            _run_in_pool(pending, workers, finish, on_start)

        result = CampaignResult([cells[label] for label, _ in labelled])
        if writer is not None:
            writer.campaign_finished(
                ok=len(result.cells) - len(result.failures),
                failed=len(result.failures),
                elapsed=reporter.elapsed(),
            )
        return result
    finally:
        if owns_writer and writer is not None:
            writer.close()


def _run_in_process(
    pending: List[Tuple[str, ScenarioConfig]],
    finish: Callable[[CampaignCell], None],
    on_start: Optional[Callable[[str], None]] = None,
) -> None:
    """Sequential path: identical to the legacy ``run_grid`` loop, with
    per-cell failure isolation."""
    pid = os.getpid()
    for label, config in pending:
        if on_start is not None:
            on_start(label)
        started = time.perf_counter()
        try:
            result = Scenario(config).run()
        except Exception:
            finish(
                CampaignCell(
                    label,
                    "failed",
                    None,
                    traceback.format_exc(),
                    time.perf_counter() - started,
                    "in-process",
                    pid,
                )
            )
        else:
            finish(
                CampaignCell(
                    label,
                    "ok",
                    result,
                    None,
                    time.perf_counter() - started,
                    "in-process",
                    pid,
                )
            )


def _run_in_pool(
    pending: List[Tuple[str, ScenarioConfig]],
    workers: int,
    finish: Callable[[CampaignCell], None],
    on_start: Optional[Callable[[str], None]] = None,
) -> None:
    """Process-pool path with crash isolation.

    Submission is *bounded*: at most ``workers`` cells are in flight, and
    a new cell is submitted only as another completes — so a journal
    ``cell-start`` event (emitted at submission) approximates when the
    cell actually begins executing, instead of firing for the whole grid
    up front.

    ``_execute_cell`` catches everything that happens *inside* a worker;
    the except branches here additionally absorb pool-level failures (a
    worker process dying takes the executor down — every outstanding
    future, and every not-yet-submitted cell, then resolves to a failed
    cell instead of killing the campaign)."""
    if not pending:
        return
    queue: Iterator[Tuple[str, ScenarioConfig]] = iter(pending)
    with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
        futures: Dict[object, str] = {}

        def submit_next() -> None:
            for label, config in queue:
                if on_start is not None:
                    on_start(label)
                try:
                    futures[pool.submit(_execute_cell, label, config)] = label
                except BaseException as exc:  # executor already broken
                    finish(
                        CampaignCell(
                            label, "failed", None, repr(exc), 0.0, "worker"
                        )
                    )
                    continue
                return

        for _ in range(min(workers, len(pending))):
            submit_next()
        while futures:
            done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
            for future in done:
                label = futures.pop(future)
                try:
                    _, payload, error, duration, pid = future.result()
                except BaseException as exc:  # BrokenProcessPool and kin
                    finish(
                        CampaignCell(
                            label, "failed", None, repr(exc), 0.0, "worker"
                        )
                    )
                else:
                    if error is not None:
                        finish(
                            CampaignCell(
                                label,
                                "failed",
                                None,
                                error,
                                duration,
                                "worker",
                                pid,
                            )
                        )
                    else:
                        finish(
                            CampaignCell(
                                label,
                                "ok",
                                ScenarioResult.from_dict(payload),
                                None,
                                duration,
                                "worker",
                                pid,
                            )
                        )
                submit_next()
