"""Campaign execution: sequential in-process or across worker processes.

``run_campaign`` executes a list of labelled
:class:`~repro.core.experiment.ScenarioConfig` cells and returns a
:class:`CampaignResult` in input order.  Three execution sources:

* **artifact** — a matching result already sits in the artifact store
  (resume): the cell is loaded, not run;
* **in-process** — ``workers=1``: cells run sequentially in this
  process, bit-identical to calling ``Scenario(config).run()`` yourself
  (the legacy ``run_grid`` behavior);
* **worker** — ``workers>1``: cells are farmed to a
  ``ProcessPoolExecutor``; results cross the process boundary as
  ``ScenarioResult.to_dict()`` payloads.

Determinism: every scenario is seeded solely by its config, and
:class:`~repro.core.experiment.Scenario` restarts the transaction-id
stream, so the same cell produces bit-identical results — transaction
ids included — whichever source executed it and whatever ran in the
process beforehand.

Failures are isolated: an exception inside one cell — config error,
simulation bug, even a worker process dying — is recorded on that cell
(``status="failed"`` with the traceback) and the rest of the campaign
still completes.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..core.env import env_int, env_str
from ..core.experiment import Scenario, ScenarioConfig, ScenarioResult
from .progress import CampaignProgress, ProgressEvent
from .store import ArtifactStore

__all__ = [
    "ARTIFACT_DIR_ENV",
    "WORKERS_ENV",
    "CampaignCell",
    "CampaignError",
    "CampaignResult",
    "resolve_workers",
    "run_campaign",
]

#: Environment knob: default worker count when ``workers=None``.
WORKERS_ENV = "REPRO_WORKERS"
#: Environment knob: default artifact root when ``artifact_dir=None``.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"


class CampaignError(RuntimeError):
    """At least one campaign cell failed; carries the failed cells."""

    def __init__(self, failures: List["CampaignCell"]):
        self.failures = failures
        lines = [f"{len(failures)} campaign cell(s) failed:"]
        for cell in failures:
            first = (cell.error or "").strip().splitlines()
            lines.append(f"  {cell.label}: {first[-1] if first else 'unknown error'}")
        super().__init__("\n".join(lines))


@dataclass
class CampaignCell:
    """Outcome of one labelled grid cell."""

    label: str
    status: str  # "ok" | "failed"
    result: Optional[ScenarioResult]
    error: Optional[str]  # traceback text for failed cells
    duration: float  # wall seconds spent executing (0 for artifact loads)
    source: str  # "in-process" | "worker" | "artifact"


class CampaignResult:
    """All cells of a campaign, in the input grid order."""

    def __init__(self, cells: List[CampaignCell]):
        self.cells = cells

    @property
    def failures(self) -> List[CampaignCell]:
        return [c for c in self.cells if c.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def get(self, label: str) -> CampaignCell:
        for cell in self.cells:
            if cell.label == label:
                return cell
        raise KeyError(label)

    def pairs(self) -> List[Tuple[str, ScenarioResult]]:
        """``[(label, result)]`` in grid order; raises
        :class:`CampaignError` if any cell failed."""
        if self.failures:
            raise CampaignError(self.failures)
        return [(c.label, c.result) for c in self.cells]  # type: ignore[misc]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else 1.

    An unparseable or sub-1 ``REPRO_WORKERS`` warns once and falls back
    (see :mod:`repro.core.env`)."""
    if workers is not None:
        return max(1, int(workers))
    return env_int(WORKERS_ENV, 1, minimum=1)


def _resolve_store(
    artifact_dir: Optional[Union[str, Path]], campaign: Optional[str]
) -> Optional[ArtifactStore]:
    if artifact_dir is None:
        env = env_str(ARTIFACT_DIR_ENV)
        if env is None:
            return None
        artifact_dir = Path(env) / campaign if campaign else Path(env)
    return ArtifactStore(artifact_dir)


def _execute_cell(
    label: str, config: ScenarioConfig
) -> Tuple[str, Optional[dict], Optional[str], float]:
    """Worker-side entry point: run one cell, never raise.

    Results return as ``to_dict()`` payloads — live results hold
    simulator entities that must not cross the process boundary.
    """
    started = time.perf_counter()
    try:
        result = Scenario(config).run()
        return label, result.to_dict(), None, time.perf_counter() - started
    except BaseException:
        return label, None, traceback.format_exc(), time.perf_counter() - started


def run_campaign(
    configs: Iterable[Tuple[str, ScenarioConfig]],
    workers: Optional[int] = None,
    artifact_dir: Optional[Union[str, Path]] = None,
    campaign: Optional[str] = None,
    progress: Union[bool, Callable[[ProgressEvent], None]] = False,
    manifest: Optional[Dict[str, object]] = None,
) -> CampaignResult:
    """Execute a labelled scenario grid, possibly in parallel.

    ``workers`` defaults to ``REPRO_WORKERS`` (else 1: sequential
    in-process execution).  ``artifact_dir`` (or ``REPRO_ARTIFACT_DIR``,
    suffixed with ``campaign`` when given) enables the resumable JSON
    store: cells whose stored config matches are loaded, completed cells
    are saved as soon as they finish.  ``progress`` may be ``True`` for
    the default stderr printer or any callable taking a
    :class:`ProgressEvent`.  ``manifest`` (typically
    ``CampaignSpec.manifest()``) is recorded in the artifact store for
    provenance: a ``campaign.json`` file plus a ``spec_hash`` field on
    every cell artifact written during this run.
    """
    labelled = list(configs)
    seen: set = set()
    for label, _ in labelled:
        if label in seen:
            raise ValueError(f"duplicate campaign label: {label!r}")
        seen.add(label)

    workers = resolve_workers(workers)
    store = _resolve_store(artifact_dir, campaign)
    if store is not None and manifest is not None:
        store.write_manifest(manifest)
    reporter = CampaignProgress(total=len(labelled), workers=workers)
    if progress is True:
        on_event: Optional[Callable[[ProgressEvent], None]] = reporter
    elif callable(progress):
        on_event = progress
    else:
        on_event = None

    cells: Dict[str, CampaignCell] = {}
    requested: Dict[str, ScenarioConfig] = dict(labelled)

    def finish(cell: CampaignCell) -> None:
        cells[cell.label] = cell
        if store is not None and cell.status == "ok" and cell.source != "artifact":
            # key the artifact on the *requested* config: a result that
            # crossed the process boundary lost any custom profiles
            store.save(cell.label, cell.result, config=requested[cell.label])
        event = reporter.event(cell.label, cell.status, cell.source, cell.duration)
        if on_event is not None:
            on_event(event)

    # -- resume: load completed cells from the artifact store -----------
    pending: List[Tuple[str, ScenarioConfig]] = []
    for label, config in labelled:
        cached = store.load(label, config) if store is not None else None
        if cached is not None:
            finish(CampaignCell(label, "ok", cached, None, 0.0, "artifact"))
        else:
            pending.append((label, config))

    if workers <= 1:
        _run_in_process(pending, finish)
    else:
        _run_in_pool(pending, workers, finish)

    return CampaignResult([cells[label] for label, _ in labelled])


def _run_in_process(
    pending: List[Tuple[str, ScenarioConfig]],
    finish: Callable[[CampaignCell], None],
) -> None:
    """Sequential path: identical to the legacy ``run_grid`` loop, with
    per-cell failure isolation."""
    for label, config in pending:
        started = time.perf_counter()
        try:
            result = Scenario(config).run()
        except Exception:
            finish(
                CampaignCell(
                    label,
                    "failed",
                    None,
                    traceback.format_exc(),
                    time.perf_counter() - started,
                    "in-process",
                )
            )
        else:
            finish(
                CampaignCell(
                    label,
                    "ok",
                    result,
                    None,
                    time.perf_counter() - started,
                    "in-process",
                )
            )


def _run_in_pool(
    pending: List[Tuple[str, ScenarioConfig]],
    workers: int,
    finish: Callable[[CampaignCell], None],
) -> None:
    """Process-pool path with crash isolation.

    ``_execute_cell`` catches everything that happens *inside* a worker;
    the except branch here additionally absorbs pool-level failures (a
    worker process dying takes the executor down — every outstanding
    future then resolves to a failed cell instead of killing the
    campaign)."""
    if not pending:
        return
    with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
        futures = {
            pool.submit(_execute_cell, label, config): label
            for label, config in pending
        }
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in done:
                label = futures[future]
                try:
                    _, payload, error, duration = future.result()
                except BaseException as exc:  # BrokenProcessPool and kin
                    finish(
                        CampaignCell(
                            label, "failed", None, repr(exc), 0.0, "worker"
                        )
                    )
                    continue
                if error is not None:
                    finish(
                        CampaignCell(
                            label, "failed", None, error, duration, "worker"
                        )
                    )
                else:
                    finish(
                        CampaignCell(
                            label,
                            "ok",
                            ScenarioResult.from_dict(payload),
                            None,
                            duration,
                            "worker",
                        )
                    )
