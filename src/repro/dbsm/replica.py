"""The DBSM replica: database server + certification + group communication.

This is the distributed termination protocol of §3.3 end to end.  A
transaction entering the committing stage has its read/write identifiers
and value sizes marshaled and atomically multicast; upon total-order
delivery every replica certifies it identically.  The origin replica
resolves the waiting server process with the outcome; the others apply
the writes as a remote transaction (locks acquired before writing, local
holders preempted — they would fail certification anyway).

Certification runs inside the real receive job, so its CPU cost — the
merge traversal over read/write sets — lands on the simulated CPU where
it competes with transaction processing (Figure 6(a)'s protocol share).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.csrt import SiteRuntime
from ..core.kernel import Signal
from ..core.safety import CommitLog
from ..db.server import DatabaseServer, TerminationProtocol
from ..db.transactions import Outcome, Transaction, TransactionSpec
from ..gcs.stack import GroupCommunication
from .certification import Certifier
from .marshal import CommitRequest, marshal_request, unmarshal_request

__all__ = ["Replica"]

#: CPU fraction of the profiled commit cost charged when applying a
#: remote transaction: the apply path only installs already-computed
#: write values and runs the commit record — no parsing, planning or
#: execution.  Calibrated so 6-site CPU usage tracks the 6-CPU
#: centralized curve as in Figure 6(a).
REMOTE_APPLY_CPU_FACTOR = 0.4


class _WatermarkTracker:
    """Contiguous applied-sequence watermark (see ``start_seq`` semantics)."""

    def __init__(self) -> None:
        self.watermark = 0
        self._pending: set = set()

    def mark(self, seq: int) -> None:
        self._pending.add(seq)
        while self.watermark + 1 in self._pending:
            self._pending.discard(self.watermark + 1)
            self.watermark += 1


class Replica(TerminationProtocol):
    """One site of the replicated database."""

    def __init__(
        self,
        site_id: int,
        server: DatabaseServer,
        gcs: GroupCommunication,
        site_runtime: SiteRuntime,
        commit_log: Optional[CommitLog] = None,
    ):
        self.site_id = site_id
        self.server = server
        self.gcs = gcs
        self.runtime = site_runtime
        self.certifier = Certifier(charge=site_runtime.rt_charge)
        self.commit_log = commit_log or CommitLog(site=server.name)
        self.crashed = False
        self._watermark = _WatermarkTracker()
        #: tx_id -> (transaction, outcome signal) awaiting certification.
        self._pending: Dict[int, Tuple[Transaction, Signal]] = {}
        self.stats = {
            "submitted": 0,
            "certified_local": 0,
            "certified_remote": 0,
            "remote_applies": 0,
        }
        server.termination = self
        server.on_applied = self._on_applied
        gcs.on_deliver = self._on_deliver

    # ------------------------------------------------------------------
    # TerminationProtocol (called from server transaction processes)
    # ------------------------------------------------------------------
    def submit(self, tx: Transaction) -> Signal:
        """Gather the transaction's data and atomically multicast it.

        Marshaling and the multicast run as a real protocol job charged
        to this site's CPU."""
        outcome = Signal(self.server.sim, latch=True)
        if self.crashed:
            return outcome  # never fires: clients of a dead site block
        spec = tx.spec
        request = CommitRequest(
            origin=self.site_id,
            tx_id=tx.tx_id,
            start_seq=tx.start_seq,
            tx_class=spec.tx_class,
            read_set=spec.read_set,
            write_set=spec.write_set,
            write_bytes=spec.write_bytes(),
            commit_cpu=spec.commit_cpu,
            commit_sectors=spec.commit_sectors,
        )
        self._pending[tx.tx_id] = (tx, outcome)
        self.stats["submitted"] += 1
        payload = marshal_request(request)
        self.runtime.submit_real(
            lambda: self.gcs.multicast(payload),
            tag="marshal",
            nbytes=len(payload),
        )
        return outcome

    def applied_watermark(self) -> int:
        return self._watermark.watermark

    # ------------------------------------------------------------------
    # total-order delivery (runs inside the real receive job)
    # ------------------------------------------------------------------
    def _on_deliver(self, global_seq: int, origin: int, payload: bytes) -> None:
        if self.crashed:
            return
        request = unmarshal_request(payload)
        committed, commit_seq = self.certifier.certify(request)
        if committed:
            self.commit_log.append(commit_seq, request.tx_id)
        if request.origin == self.site_id:
            self._resolve_local(request, committed, commit_seq)
        elif committed:
            self._apply_remote(request, commit_seq)

    def _resolve_local(
        self, request: CommitRequest, committed: bool, commit_seq: int
    ) -> None:
        entry = self._pending.pop(request.tx_id, None)
        if entry is None:
            return
        tx, outcome_signal = entry
        self.stats["certified_local"] += 1
        if committed:
            tx.global_seq = commit_seq
            value = Outcome.COMMIT
        else:
            value = Outcome.ABORT
        # Fire through the runtime so the wake-up lands after the CPU
        # time consumed so far by this delivery job (Figure 1(b)).
        self.runtime.rt_schedule(0.0, outcome_signal.fire, value)

    def _apply_remote(self, request: CommitRequest, commit_seq: int) -> None:
        self.stats["certified_remote"] += 1
        spec = TransactionSpec(
            tx_class=request.tx_class,
            operations=(),
            read_set=request.read_set,
            write_set=request.write_set,
            write_sizes={},
            commit_cpu=request.commit_cpu * REMOTE_APPLY_CPU_FACTOR,
            commit_sectors=request.commit_sectors,
        )
        tx = Transaction(spec, self.server.name, remote=True)
        tx.global_seq = commit_seq
        tx.submit_time = self.runtime.rt_now()
        self.stats["remote_applies"] += 1
        self.runtime.rt_schedule(0.0, self.server.apply_remote, tx)

    # ------------------------------------------------------------------
    def _on_applied(self, tx: Transaction, global_seq: int) -> None:
        if global_seq > 0:
            self._watermark.mark(global_seq)

    def crash(self) -> None:
        """Stop the site (fault injection §5.3): the runtime boundary is
        sealed and the commit log freezes exactly at the crash point."""
        self.crashed = True
        self.commit_log.crashed = True
        self.runtime.crash()
