"""The DBSM replica: database server + certification + group communication.

This is the distributed termination protocol of §3.3 end to end.  A
transaction entering the committing stage has its read/write identifiers
and value sizes marshaled and atomically multicast; upon total-order
delivery every replica certifies it identically.  The origin replica
resolves the waiting server process with the outcome; the others apply
the writes as a remote transaction (locks acquired before writing, local
holders preempted — they would fail certification anyway).

Certification runs inside the real receive job, so its CPU cost — the
merge traversal over read/write sets — lands on the simulated CPU where
it competes with transaction processing (Figure 6(a)'s protocol share).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.csrt import SiteRuntime
from ..core.kernel import Signal
from ..core.safety import CommitLog
from ..db.server import DatabaseServer, WatermarkTracker
from ..db.transactions import Outcome, Transaction
from ..gcs.stack import GroupCommunication
from ..protocols.base import ReplicationProtocol
from .certification import Certifier
from .marshal import CommitRequest, marshal_request, unmarshal_request_cached

__all__ = ["Replica", "broadcast_commit_request"]

#: CPU fraction of the profiled commit cost charged when applying a
#: remote transaction: the apply path only installs already-computed
#: write values and runs the commit record — no parsing, planning or
#: execution.  Calibrated so 6-site CPU usage tracks the 6-CPU
#: centralized curve as in Figure 6(a).
REMOTE_APPLY_CPU_FACTOR = 0.4


def broadcast_commit_request(
    protocol: ReplicationProtocol,
    tx: Transaction,
    read_set: Tuple[int, ...],
) -> Tuple[Signal, int]:
    """The broadcast side of a termination protocol's ``submit``.

    Gathers the committing transaction's data into a
    :class:`CommitRequest`, registers the pending outcome under
    ``protocol._pending``, and atomically multicasts — marshaling runs
    as a real protocol job charged to the site's CPU.  Shared by every
    protocol that ships write-sets through the GCS; ``read_set`` is what
    differs (dbsm certifies reads, primary-copy ships none).

    Returns ``(outcome signal, payload bytes)``; zero bytes means the
    site is crashed (or not yet live after a rejoin) and the signal will
    never fire (clients of a dead site block).
    """
    outcome = Signal(protocol.server.sim, latch=True)
    if protocol.crashed or not protocol.live:
        return outcome, 0
    spec = tx.spec
    request = CommitRequest(
        origin=protocol.site_id,
        tx_id=tx.tx_id,
        start_seq=tx.start_seq,
        tx_class=spec.tx_class,
        read_set=read_set,
        write_set=spec.write_set,
        write_bytes=spec.write_bytes(),
        commit_cpu=spec.commit_cpu,
        commit_sectors=spec.commit_sectors,
    )
    protocol._pending[tx.tx_id] = (tx, outcome)
    payload = marshal_request(request)
    protocol.runtime.submit_real(
        lambda: protocol.gcs.multicast(payload),
        tag="marshal",
        nbytes=len(payload),
    )
    return outcome, len(payload)


class Replica(ReplicationProtocol):
    """One site of the replicated database (registry name ``"dbsm"``)."""

    name = "dbsm"

    def __init__(
        self,
        site_id: int,
        server: DatabaseServer,
        gcs: GroupCommunication,
        site_runtime: SiteRuntime,
        commit_log: Optional[CommitLog] = None,
    ):
        self.site_id = site_id
        self.server = server
        self.gcs = gcs
        self.runtime = site_runtime
        self.certifier = Certifier(charge=site_runtime.rt_charge)
        self.commit_log = commit_log or CommitLog(site=server.name)
        self.crashed = False
        self._watermark = WatermarkTracker()
        #: tx_id -> (transaction, outcome signal) awaiting certification.
        self._pending: Dict[int, Tuple[Transaction, Signal]] = {}
        self.stats = {
            "submitted": 0,
            "certified_local": 0,
            "certified_remote": 0,
            "remote_applies": 0,
        }
        server.termination = self
        server.on_applied = self._on_applied
        gcs.on_deliver = self._on_deliver
        gcs.snapshot_provider = self.state_snapshot
        gcs.snapshot_installer = self.install_snapshot

    # ------------------------------------------------------------------
    # state transfer (recovery/rejoin)
    # ------------------------------------------------------------------
    def reset_protocol_state(self, was_crashed: bool) -> None:
        self._pending.clear()

    def protocol_snapshot(self) -> Dict[str, object]:
        """Certification position: the commit counter and the trailing
        committed-write-set log the joiner certifies its replayed
        backlog (and later local transactions) against."""
        return {"certifier": self.certifier.snapshot_state()}

    def install_protocol_snapshot(self, snap: Dict[str, object]) -> None:
        self.certifier.restore_state(snap["certifier"])
        # Everything in the adopted commit log counts as applied: the
        # snapshot *is* the applied state.
        self._watermark = WatermarkTracker()
        self._watermark.watermark = self.certifier.next_commit_seq

    # ------------------------------------------------------------------
    # TerminationProtocol (called from server transaction processes)
    # ------------------------------------------------------------------
    def submit(self, tx: Transaction) -> Signal:
        """Gather the transaction's data and atomically multicast it.

        Marshaling and the multicast run as a real protocol job charged
        to this site's CPU."""
        outcome, nbytes = broadcast_commit_request(self, tx, tx.spec.read_set)
        if nbytes:
            self.stats["submitted"] += 1
        return outcome

    def applied_watermark(self) -> int:
        return self._watermark.watermark

    # ------------------------------------------------------------------
    # total-order delivery (runs inside the real receive job)
    # ------------------------------------------------------------------
    def _on_deliver(self, global_seq: int, origin: int, payload: bytes) -> None:
        if self.crashed:
            return
        request = unmarshal_request_cached(payload)
        committed, commit_seq = self.certifier.certify(request)
        if committed:
            self.log_commit(commit_seq, request.tx_id)
        if request.origin == self.site_id:
            self._resolve_local(request, committed, commit_seq)
        elif committed:
            self._apply_remote(request, commit_seq)

    def _resolve_local(
        self, request: CommitRequest, committed: bool, commit_seq: int
    ) -> None:
        entry = self._pending.pop(request.tx_id, None)
        if entry is None:
            return
        tx, outcome_signal = entry
        self.stats["certified_local"] += 1
        if committed:
            tx.global_seq = commit_seq
            value = Outcome.COMMIT
        else:
            value = Outcome.ABORT
        # Fire through the runtime so the wake-up lands after the CPU
        # time consumed so far by this delivery job (Figure 1(b)).
        self.runtime.rt_schedule(0.0, outcome_signal.fire, value)

    def _apply_remote(self, request: CommitRequest, commit_seq: int) -> None:
        self.stats["certified_remote"] += 1
        spec = request.remote_spec(REMOTE_APPLY_CPU_FACTOR)
        tx = Transaction(spec, self.server.name, remote=True)
        tx.global_seq = commit_seq
        tx.submit_time = self.runtime.rt_now()
        self.stats["remote_applies"] += 1
        self.runtime.rt_schedule(0.0, self.server.apply_remote, tx)

    # ------------------------------------------------------------------
    def _on_applied(self, tx: Transaction, global_seq: int) -> None:
        if global_seq > 0:
            self._watermark.mark(global_seq)

    def protocol_stats(self) -> Dict[str, int]:
        """Certifier counters merged with the replica's own."""
        return {**self.certifier.stats, **self.stats}
