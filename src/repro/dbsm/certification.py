"""The deterministic certification procedure (paper §3.3).

Upon total-order delivery of a committing transaction, every replica
runs the same test: the sequence number of the last transaction the
origin had committed locally determines which committed transactions
were *concurrent*; the incoming read-set is compared with the write-sets
of all those transactions, and any intersection aborts it.  Total order
makes the decision identical at every replica — no coordination needed.

Identifier comparison covers both individual tuples and whole-table
locks: the table id lives in the high-order bits, so a table lock (row
part zero) sorts before all of its table's tuples and a single merge
traversal of the two **sorted** lists decides intersection in
O(|reads| + |writes|) — the runtime trick the paper calls out.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..db.tuples import ROW_BITS
from .marshal import CommitRequest

__all__ = ["Certifier", "CertificationError", "sets_conflict"]

#: CPU cost charged per identifier visited during the merge traversal —
#: the sorted lists make this a couple of comparisons per id, tens of
#: cycles on the reference 1 GHz CPU.  Calibrated so protocol CPU usage
#: lands near the paper's Figure 7(c) values (~1.2 % at 3 sites).
PER_ITEM_COST = 0.12e-6


class CertificationError(RuntimeError):
    """The committed-write-set log was pruned past a request's horizon."""


#: Row-part mask of the 64-bit tuple id (mirrors ``repro.db.tuples``):
#: a zero row part marks a whole-table lock.  The id layout is inlined
#: here because this merge loop runs once per (request, log entry) pair
#: during certification — by far the hottest consumer of the encoding —
#: and the ``is_table_lock``/``table_of`` calls dominate its runtime.
_ROW_MASK = (1 << ROW_BITS) - 1


def sets_conflict(reads: Tuple[int, ...], writes: Tuple[int, ...]) -> bool:
    """Single-traversal intersection test over two sorted id lists,
    honouring table-lock coverage in either list."""
    i = j = 0
    len_r, len_w = len(reads), len(writes)
    row_bits, row_mask = ROW_BITS, _ROW_MASK
    while i < len_r and j < len_w:
        r = reads[i]
        w = writes[j]
        if r == w:
            return True
        # Same table, and either id is the whole-table lock (row part 0).
        if (r >> row_bits) == (w >> row_bits) and (
            not r & row_mask or not w & row_mask
        ):
            return True
        if r < w:
            i += 1
        else:
            j += 1
    return False


class Certifier:
    """Per-replica certification state: the committed write-set log."""

    def __init__(
        self,
        charge: Optional[Callable[[float], None]] = None,
        log_limit: int = 50_000,
    ):
        #: ``(commit_seq, write_set, wset, wtables, wlocks)`` of committed
        #: update transactions, in commit order; pruned to the trailing
        #: ``log_limit`` entries.  The three frozensets are precomputed at
        #: append time (ids, tables touched, tables locked whole) so the
        #: per-request conflict test below is pure C-level ``isdisjoint``
        #: probes instead of a Python merge loop per log entry.
        self._log: Deque[Tuple] = deque()
        self._charge = charge or (lambda seconds: None)
        self.log_limit = log_limit
        self.next_commit_seq = 0
        self.stats = {"certified": 0, "committed": 0, "aborted": 0}

    # ------------------------------------------------------------------
    def certify(self, request: CommitRequest) -> Tuple[bool, int]:
        """Decide ``request``; returns (committed, commit_seq or -1).

        Must be invoked in total-order delivery order; the commit
        sequence numbers handed out are consecutive over commits.
        """
        self.stats["certified"] += 1
        if self._log and request.start_seq < self._log[0][0] - 1:
            raise CertificationError(
                f"request started at seq {request.start_seq} but the log "
                f"begins at {self._log[0][0]} — raise log_limit"
            )
        if self._conflicts(request):
            self.stats["aborted"] += 1
            return False, -1
        self.next_commit_seq += 1
        commit_seq = self.next_commit_seq
        if request.write_set:
            self._log.append(self._log_entry(commit_seq, request.write_set))
            while len(self._log) > self.log_limit:
                self._log.popleft()
        self.stats["committed"] += 1
        return True, commit_seq

    # ------------------------------------------------------------------
    # split certification (cross-group agreement; see protocols/partial)
    # ------------------------------------------------------------------
    def would_commit(self, request: CommitRequest) -> bool:
        """The conflict test alone — no commit, no log append.

        A cross-group transaction's *vote*: the decision is cast here but
        only applied (via :meth:`force_commit`) once every touched group
        has agreed, so the test must not mutate certification state.
        """
        self.stats["certified"] += 1
        if self._log and request.start_seq < self._log[0][0] - 1:
            raise CertificationError(
                f"request started at seq {request.start_seq} but the log "
                f"begins at {self._log[0][0]} — raise log_limit"
            )
        if self._conflicts(request):
            self.stats["aborted"] += 1
            return False
        return True

    def force_commit(self, request: CommitRequest) -> int:
        """Apply an externally-agreed commit: assign the next sequence
        number and append the write set to the log.  The caller (the
        cross-group agreement step) guarantees every replica of this
        group invokes it at the same point in the delivery order."""
        self.next_commit_seq += 1
        commit_seq = self.next_commit_seq
        if request.write_set:
            self._log.append(self._log_entry(commit_seq, request.write_set))
            while len(self._log) > self.log_limit:
                self._log.popleft()
        self.stats["committed"] += 1
        return commit_seq

    @staticmethod
    def _log_entry(commit_seq: int, write_set: Tuple[int, ...]) -> Tuple:
        return (
            commit_seq,
            write_set,
            frozenset(write_set),
            frozenset(w >> ROW_BITS for w in write_set),
            frozenset(w >> ROW_BITS for w in write_set if not w & _ROW_MASK),
        )

    def _conflicts(self, request: CommitRequest) -> bool:
        reads = request.read_set
        if not reads:
            return False
        # The set-based test is equivalent to running ``sets_conflict``
        # against each entry: ids intersect, a read table-lock covers a
        # written table, or a write table-lock covers a read table.
        rset, rtables, rlocks = request.read_footprint
        n_reads = len(reads)
        start_seq = request.start_seq
        visited = 0
        conflict = False
        for commit_seq, write_set, wset, wtables, wlocks in reversed(self._log):
            if commit_seq <= start_seq:
                break
            visited += len(write_set) + n_reads
            if (
                not rset.isdisjoint(wset)
                or not rlocks.isdisjoint(wtables)
                or not rtables.isdisjoint(wlocks)
            ):
                conflict = True
                break
        self._charge(visited * PER_ITEM_COST)
        return conflict

    # ------------------------------------------------------------------
    # state transfer (recovery/rejoin)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """JSON-ready certification position for a state-transfer
        snapshot: the commit counter plus the trailing committed
        write-set log a joiner certifies replayed (and later local)
        transactions against.  The format is owned here, next to the
        log's layout."""
        return {
            "next_commit_seq": self.next_commit_seq,
            "log": [[entry[0], list(entry[1])] for entry in self._log],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Adopt a donor's :meth:`snapshot_state`."""
        self.next_commit_seq = int(state["next_commit_seq"])
        self._log = deque(
            self._log_entry(int(seq), tuple(write_set))
            for seq, write_set in state["log"]
        )

    # ------------------------------------------------------------------
    def log_size(self) -> int:
        return len(self._log)

    def abort_ratio(self) -> float:
        if self.stats["certified"] == 0:
            return 0.0
        return self.stats["aborted"] / self.stats["certified"]
