"""The deterministic certification procedure (paper §3.3).

Upon total-order delivery of a committing transaction, every replica
runs the same test: the sequence number of the last transaction the
origin had committed locally determines which committed transactions
were *concurrent*; the incoming read-set is compared with the write-sets
of all those transactions, and any intersection aborts it.  Total order
makes the decision identical at every replica — no coordination needed.

Identifier comparison covers both individual tuples and whole-table
locks: the table id lives in the high-order bits, so a table lock (row
part zero) sorts before all of its table's tuples and a single merge
traversal of the two **sorted** lists decides intersection in
O(|reads| + |writes|) — the runtime trick the paper calls out.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..db.tuples import is_table_lock, table_of
from .marshal import CommitRequest

__all__ = ["Certifier", "CertificationError", "sets_conflict"]

#: CPU cost charged per identifier visited during the merge traversal —
#: the sorted lists make this a couple of comparisons per id, tens of
#: cycles on the reference 1 GHz CPU.  Calibrated so protocol CPU usage
#: lands near the paper's Figure 7(c) values (~1.2 % at 3 sites).
PER_ITEM_COST = 0.12e-6


class CertificationError(RuntimeError):
    """The committed-write-set log was pruned past a request's horizon."""


def sets_conflict(reads: Tuple[int, ...], writes: Tuple[int, ...]) -> bool:
    """Single-traversal intersection test over two sorted id lists,
    honouring table-lock coverage in either list."""
    i = j = 0
    len_r, len_w = len(reads), len(writes)
    while i < len_r and j < len_w:
        r, w = reads[i], writes[j]
        if r == w:
            return True
        if is_table_lock(r) and table_of(r) == table_of(w):
            return True
        if is_table_lock(w) and table_of(w) == table_of(r):
            return True
        if r < w:
            i += 1
        else:
            j += 1
    return False


class Certifier:
    """Per-replica certification state: the committed write-set log."""

    def __init__(
        self,
        charge: Optional[Callable[[float], None]] = None,
        log_limit: int = 50_000,
    ):
        #: (commit_seq, write_set) of committed update transactions, in
        #: commit order; pruned to the trailing ``log_limit`` entries.
        self._log: Deque[Tuple[int, Tuple[int, ...]]] = deque()
        self._charge = charge or (lambda seconds: None)
        self.log_limit = log_limit
        self.next_commit_seq = 0
        self.stats = {"certified": 0, "committed": 0, "aborted": 0}

    # ------------------------------------------------------------------
    def certify(self, request: CommitRequest) -> Tuple[bool, int]:
        """Decide ``request``; returns (committed, commit_seq or -1).

        Must be invoked in total-order delivery order; the commit
        sequence numbers handed out are consecutive over commits.
        """
        self.stats["certified"] += 1
        if self._log and request.start_seq < self._log[0][0] - 1:
            raise CertificationError(
                f"request started at seq {request.start_seq} but the log "
                f"begins at {self._log[0][0]} — raise log_limit"
            )
        if self._conflicts(request):
            self.stats["aborted"] += 1
            return False, -1
        self.next_commit_seq += 1
        commit_seq = self.next_commit_seq
        if request.write_set:
            self._log.append((commit_seq, request.write_set))
            while len(self._log) > self.log_limit:
                self._log.popleft()
        self.stats["committed"] += 1
        return True, commit_seq

    def _conflicts(self, request: CommitRequest) -> bool:
        if not request.read_set:
            return False
        visited = 0
        conflict = False
        for commit_seq, write_set in reversed(self._log):
            if commit_seq <= request.start_seq:
                break
            visited += len(write_set) + len(request.read_set)
            if sets_conflict(request.read_set, write_set):
                conflict = True
                break
        self._charge(visited * PER_ITEM_COST)
        return conflict

    # ------------------------------------------------------------------
    # state transfer (recovery/rejoin)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """JSON-ready certification position for a state-transfer
        snapshot: the commit counter plus the trailing committed
        write-set log a joiner certifies replayed (and later local)
        transactions against.  The format is owned here, next to the
        log's layout."""
        return {
            "next_commit_seq": self.next_commit_seq,
            "log": [[seq, list(write_set)] for seq, write_set in self._log],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Adopt a donor's :meth:`snapshot_state`."""
        self.next_commit_seq = int(state["next_commit_seq"])
        self._log = deque(
            (int(seq), tuple(write_set)) for seq, write_set in state["log"]
        )

    # ------------------------------------------------------------------
    def log_size(self) -> int:
        return len(self._log)

    def abort_ratio(self) -> float:
        if self.stats["certified"] == 0:
            return 0.0
        return self.stats["aborted"] / self.stats["certified"]
