"""The Database State Machine replication layer (paper §3.3).

Certification-based replication: transactions execute locally under the
site's own concurrency control, then their read/write sets are atomically
multicast and certified deterministically at every replica.
"""

from .certification import Certifier, CertificationError, sets_conflict
from .marshal import CommitRequest, marshal_request, unmarshal_request
from .replica import Replica

__all__ = [
    "Certifier",
    "CertificationError",
    "sets_conflict",
    "CommitRequest",
    "marshal_request",
    "unmarshal_request",
    "Replica",
]
