"""The Database State Machine replication layer (paper §3.3).

Certification-based replication: transactions execute locally under the
site's own concurrency control, then their read/write sets are atomically
multicast and certified deterministically at every replica.

**Contract.** Implement the ``"dbsm"`` entry of the protocol registry:
update transactions terminate through atomic multicast + deterministic
certification; remote write sets are applied in commit order; a
rejoining replica is seeded from a donor's certification log and commit
log (the state-transfer hook).

**Invariants.**

* *Deterministic certification* — the verdict is a pure function of
  (request, committed-write-set log), and total order makes the log
  identical at every replica, so no coordination is needed;
* *1-copy serializability* — commit sequence numbers are consecutive
  over commits and every operational replica commits the same sequence
  (§5.3);
* *Certification horizon* — the pruned write-set log always reaches
  back past the oldest ``start_seq`` still in flight (violations raise
  ``CertificationError`` rather than certify wrongly).
"""

from .certification import Certifier, CertificationError, sets_conflict
from .marshal import CommitRequest, marshal_request, unmarshal_request
from .replica import Replica

__all__ = [
    "Certifier",
    "CertificationError",
    "sets_conflict",
    "CommitRequest",
    "marshal_request",
    "unmarshal_request",
    "Replica",
]
