"""Marshaling of transaction termination messages (paper §3.3).

When a transaction enters the committing stage, the identifiers of read
and written tuples (64-bit integers), the sequence number of the last
transaction committed locally, and the values of the written tuples are
marshaled into a message buffer.  In the simulation the written values
are represented by **padding** whose length equals the real value sizes,
so message sizes — and therefore network load and CPU marshaling cost —
match a real system's traffic.

The prototype avoids copying already-marshaled buffers (§3.3); here the
equivalent is building the buffer in one pass with ``struct`` and
charging the per-byte CPU cost through the runtime's send overhead.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property
from typing import FrozenSet, Tuple

from ..db.transactions import TransactionSpec
from ..db.tuples import ROW_BITS

#: Row-part mask of the 64-bit tuple id (a zero row part marks a
#: whole-table lock); mirrors ``repro.db.tuples``.
_ROW_MASK = (1 << ROW_BITS) - 1

__all__ = [
    "CommitRequest",
    "marshal_request",
    "unmarshal_request",
    "unmarshal_request_cached",
]

_HEADER = struct.Struct("<HQQdIHII")  # origin, tx_id, start_seq, commit_cpu,
# commit_sectors, class-name length, read count, write count


@dataclass(frozen=True)
class CommitRequest:
    """Everything a replica needs to certify and apply a transaction."""

    origin: int  # group member id of the submitting site
    tx_id: int
    start_seq: int  # last transaction committed locally at execution start
    tx_class: str
    read_set: Tuple[int, ...]  # sorted; update-intent reads
    write_set: Tuple[int, ...]  # sorted
    write_bytes: int  # total size of written values (padding length)
    commit_cpu: float
    commit_sectors: int

    @cached_property
    def read_footprint(
        self,
    ) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
        """``(ids, tables, whole-table-locked tables)`` of the read set
        as frozensets.

        Certification probes these against every concurrent committed
        write set; caching them here means they are computed once per
        transaction and shared by all replicas' certifiers (the decode
        memo hands every replica the same instance).
        """
        reads = self.read_set
        return (
            frozenset(reads),
            frozenset(r >> ROW_BITS for r in reads),
            frozenset(r >> ROW_BITS for r in reads if not r & _ROW_MASK),
        )

    def remote_spec(self, cpu_factor: float) -> TransactionSpec:
        """The apply-side reconstruction every replication protocol
        performs on delivery: install the already-computed writes and
        run the commit record — no parsing, planning or execution, so
        only ``cpu_factor`` of the profiled commit cost is charged."""
        return TransactionSpec(
            tx_class=self.tx_class,
            operations=(),
            read_set=self.read_set,
            write_set=self.write_set,
            write_sizes={},
            commit_cpu=self.commit_cpu * cpu_factor,
            commit_sectors=self.commit_sectors,
        )


def marshal_request(req: CommitRequest) -> bytes:
    """Encode ``req``; written values are zero padding of the real size."""
    name = req.tx_class.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ValueError("class name too long")
    head = _HEADER.pack(
        req.origin,
        req.tx_id,
        req.start_seq,
        req.commit_cpu,
        req.commit_sectors,
        len(name),
        len(req.read_set),
        len(req.write_set),
    )
    body = name
    body += struct.pack(f"<{len(req.read_set)}Q", *req.read_set)
    body += struct.pack(f"<{len(req.write_set)}Q", *req.write_set)
    return head + body + bytes(req.write_bytes)


def unmarshal_request(buffer: bytes) -> CommitRequest:
    """Decode a termination message (padding is measured, not copied)."""
    (
        origin,
        tx_id,
        start_seq,
        commit_cpu,
        commit_sectors,
        name_len,
        n_reads,
        n_writes,
    ) = _HEADER.unpack_from(buffer)
    offset = _HEADER.size
    name = bytes(buffer[offset : offset + name_len]).decode("utf-8")
    offset += name_len
    reads = struct.unpack_from(f"<{n_reads}Q", buffer, offset)
    offset += 8 * n_reads
    writes = struct.unpack_from(f"<{n_writes}Q", buffer, offset)
    offset += 8 * n_writes
    padding = len(buffer) - offset
    if padding < 0:
        raise ValueError("truncated commit request")
    return CommitRequest(
        origin=origin,
        tx_id=tx_id,
        start_seq=start_seq,
        tx_class=name,
        read_set=tuple(reads),
        write_set=tuple(writes),
        write_bytes=padding,
        commit_cpu=commit_cpu,
        commit_sectors=commit_sectors,
    )


#: Value-keyed decode memo: the total order delivers the same termination
#: message at every replica, so all but the first decode of a buffer are
#: a single dict probe.  CommitRequest is frozen, so sharing one instance
#: between replicas is safe; decoding is a pure function of the buffer,
#: so results never depend on cache state.
_DECODE_CACHE: dict = {}
_DECODE_CACHE_LIMIT = 512


def unmarshal_request_cached(buffer: bytes) -> CommitRequest:
    """:func:`unmarshal_request` with a small value-keyed memo."""
    request = _DECODE_CACHE.get(buffer)
    if request is None:
        request = unmarshal_request(buffer)
        if len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[buffer] = request
    return request
