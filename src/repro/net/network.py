"""The network fabric: hosts, a switched LAN, multicast, and WAN segments.

This is the load-bearing subset of SSFNet the paper actually uses: a
switched Ethernet where each host owns full-duplex rate-limited links,
IP-multicast group management (one egress copy, fabric replication), and
optional wide-area segments with configurable inter-segment latency —
multicast does not cross segments, forcing the group communication layer
into its documented unicast fallback (§3.4).

Packets larger than the MTU are charged per-fragment framing overhead.
SSFNet famously did *not* enforce the Ethernet MTU for UDP (the paper
works around it by restricting packet sizes, §4.2); ``enforce_mtu=False``
reproduces that behaviour for the validation benches.
"""

from __future__ import annotations

import math
from heapq import heappush as _heappush
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from ..core.kernel import Entity, Simulator
from .address import Endpoint, GroupAddress
from .capture import PacketCapture
from .link import RateLimitedLink

__all__ = ["Host", "Network", "Destination"]

#: Extra IP header bytes charged for every fragment beyond the first.
FRAGMENT_OVERHEAD_BYTES = 20

Destination = Union[Endpoint, GroupAddress, List[Endpoint]]
ReceiveCallback = Callable[[Endpoint, bytes], None]


class Host(Entity):
    """A network host: bound ports plus egress/ingress links to the fabric."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: "Network",
        bandwidth_bps: float,
        link_latency: float,
        segment: str = "lan0",
    ):
        super().__init__(sim, name)
        self.network = network
        self.segment = segment
        self.egress = RateLimitedLink(
            sim, f"{name}.tx", bandwidth_bps, link_latency / 2.0
        )
        self.ingress = RateLimitedLink(
            sim, f"{name}.rx", bandwidth_bps, link_latency / 2.0
        )
        self._ports: Dict[int, ReceiveCallback] = {}

    def bind(self, port: int, callback: ReceiveCallback) -> None:
        if port in self._ports:
            raise ValueError(f"{self.name}: port {port} already bound")
        self._ports[port] = callback

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def bound_ports(self) -> Tuple[int, ...]:
        return tuple(sorted(self._ports))

    def send(self, src_port: int, dest: Destination, payload: bytes) -> None:
        self.network.route(self, src_port, dest, payload)

    def receive(self, source: Endpoint, port: int, payload: bytes) -> None:
        callback = self._ports.get(port)
        if callback is not None:
            callback(source, payload)


class Network(Entity):
    """A fabric of hosts with multicast groups and WAN segments."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "net",
        default_bandwidth_bps: float = 100e6,
        default_link_latency: float = 100e-6,
        switch_latency: float = 20e-6,
        loopback_latency: float = 10e-6,
        mtu: int = 1500,
        enforce_mtu: bool = True,
        capture: Optional[PacketCapture] = None,
    ):
        super().__init__(sim, name)
        self.default_bandwidth_bps = default_bandwidth_bps
        self.default_link_latency = default_link_latency
        self.switch_latency = switch_latency
        self.loopback_latency = loopback_latency
        self.mtu = mtu
        self.enforce_mtu = enforce_mtu
        self.capture = capture or PacketCapture(keep_entries=False)
        self.hosts: Dict[str, Host] = {}
        self._groups: Dict[GroupAddress, Set[str]] = {}
        self._wan_latency: Dict[Tuple[str, str], float] = {}
        #: host -> partition component id; hosts in different components
        #: cannot exchange packets.  Unlisted hosts share component 0.
        self._partition: Dict[str, int] = {}
        #: (group, sender) -> resolved target endpoints.  Membership
        #: changes rarely; resolving (sorted member scan + Endpoint
        #: construction) per multicast datagram is measurable.  Cleared
        #: wholesale on every join/leave.
        self._mcast_targets: Dict[Tuple[GroupAddress, str], List[Endpoint]] = {}
        #: Lazily computed "all hosts share one segment" flag gating the
        #: folded switch hop in :meth:`_fan_out`; reset by ``add_host``.
        self._uniform_segment: Optional[bool] = None

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def add_host(
        self,
        name: str,
        bandwidth_bps: Optional[float] = None,
        link_latency: Optional[float] = None,
        segment: str = "lan0",
    ) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(
            self.sim,
            name,
            self,
            bandwidth_bps or self.default_bandwidth_bps,
            link_latency if link_latency is not None else self.default_link_latency,
            segment,
        )
        self.hosts[name] = host
        self._uniform_segment = None
        return host

    def set_wan_latency(self, segment_a: str, segment_b: str, latency: float) -> None:
        """One-way extra latency between two segments (symmetric)."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._wan_latency[(segment_a, segment_b)] = latency
        self._wan_latency[(segment_b, segment_a)] = latency

    def join(self, group: GroupAddress, host_name: str) -> None:
        if host_name not in self.hosts:
            raise ValueError(f"unknown host {host_name!r}")
        self._groups.setdefault(group, set()).add(host_name)
        self._mcast_targets.clear()

    def leave(self, group: GroupAddress, host_name: str) -> None:
        members = self._groups.get(group)
        if members:
            members.discard(host_name)
        self._mcast_targets.clear()

    def members(self, group: GroupAddress) -> Tuple[str, ...]:
        return tuple(sorted(self._groups.get(group, ())))

    # ------------------------------------------------------------------
    # partitions (fault injection: the ``partition``/``heal`` actions)
    # ------------------------------------------------------------------
    def partition(self, components: Iterable[Iterable[str]]) -> None:
        """Split the fabric: hosts in different components cannot
        exchange packets (dropped in flight, recorded as ``"partition"``
        in the capture).  Hosts not named in any component form an
        implicit component of their own.  Replaces any previous cut."""
        mapping: Dict[str, int] = {}
        for index, component in enumerate(components, start=1):
            for host in component:
                if host not in self.hosts:
                    raise ValueError(f"unknown host {host!r}")
                if host in mapping:
                    raise ValueError(f"host {host!r} in two components")
                mapping[host] = index
        self._partition = mapping

    def heal(self) -> None:
        """Remove the partition cut entirely."""
        self._partition = {}

    def reachable(self, host_a: str, host_b: str) -> bool:
        """True when no partition cut separates the two hosts."""
        return self._partition.get(host_a, 0) == self._partition.get(host_b, 0)

    def multicast_capable(self, sender: str, group: GroupAddress) -> bool:
        """True when every group member shares the sender's segment —
        i.e. an IP-multicast send will reach them all (§3.4)."""
        sender_segment = self.hosts[sender].segment
        return all(
            self.hosts[m].segment == sender_segment for m in self.members(group)
        )

    # ------------------------------------------------------------------
    # datagram routing
    # ------------------------------------------------------------------
    def wire_size(self, payload_len: int) -> int:
        """Bytes charged on the wire for a payload, including fragment
        overhead when the MTU is enforced."""
        if not self.enforce_mtu or payload_len <= self.mtu:
            return payload_len
        fragments = math.ceil(payload_len / self.mtu)
        return payload_len + (fragments - 1) * FRAGMENT_OVERHEAD_BYTES

    def route(
        self, src_host: Host, src_port: int, dest: Destination, payload: bytes
    ) -> None:
        source = Endpoint(src_host.name, src_port)
        if isinstance(dest, GroupAddress):
            key = (dest, src_host.name)
            targets = self._mcast_targets.get(key)
            if targets is None:
                targets = [
                    Endpoint(member, dest.port)
                    for member in self.members(dest)
                    if member != src_host.name
                ]
                self._mcast_targets[key] = targets
            kind = "multicast"
        elif isinstance(dest, list):
            targets = list(dest)
            kind = "unicast"
        else:
            targets = [dest]
            kind = "unicast"

        size = self.wire_size(len(payload))
        now = self.sim._now
        if self.capture.keep_entries:
            if kind == "multicast":
                label = str(dest)
            elif isinstance(dest, list):
                label = ",".join(str(t) for t in targets)
            else:
                label = str(dest)
            self.capture.record(now, str(source), label, size, kind)
        else:
            self.capture.tally(now, size, kind)

        if kind == "multicast":
            # Multicast targets never include the sender (filtered when
            # the target list is resolved), so there is no loopback leg.
            remote = targets
        else:
            local = [t for t in targets if t.host == src_host.name]
            remote = [t for t in targets if t.host != src_host.name]
            for target in local:
                self.call(
                    self.loopback_latency, self._deliver_local, source, target, payload
                )
        if not remote:
            return
        if kind == "multicast":
            # One copy on the sender's egress; the fabric replicates.
            src_host.egress.deliver(
                size, lambda: self._fan_out(source, remote, payload, size)
            )
        else:
            for target in remote:
                src_host.egress.deliver(
                    size,
                    lambda t=target: self._fan_out(source, [t], payload, size),
                )

    # ------------------------------------------------------------------
    def _fan_out(
        self, source: Endpoint, targets: Iterable[Endpoint], payload: bytes, size: int
    ) -> None:
        sim = self.sim
        hosts = self.hosts
        src_segment = hosts[source.host].segment
        uniform = self._uniform_segment
        if uniform is None:
            segments = {h.segment for h in hosts.values()}
            uniform = self._uniform_segment = len(segments) <= 1
        for target in targets:
            host = hosts.get(target.host)
            if host is None:
                continue
            if not self.reachable(source.host, target.host):
                if self.capture.keep_entries:
                    self.capture.record(
                        self.now, str(source), str(target), size, "partition"
                    )
                continue
            if uniform:
                # Single-segment fabric: every ingress-bound packet carries
                # the same propagation offset, so binding order equals
                # arrival order and the switch hop folds into the ingress
                # link directly — one event per packet instead of two.
                arrival = sim._now + self.switch_latency
                accepted = host.ingress.deliver_at(
                    arrival,
                    size,
                    lambda host=host, port=target.port: host.receive(
                        source, port, payload
                    ),
                )
                if not accepted and self.capture.keep_entries:
                    self.capture.record(
                        arrival, str(source), str(target), size, "drop"
                    )
                continue
            extra = self.switch_latency
            if host.segment != src_segment:
                extra += self._wan_latency.get((src_segment, host.segment), 0.0)
            # Inlined fire-and-forget schedule (see Simulator.call): one
            # switch-hop event per packet per receiver.
            sim._seq += 1
            _heappush(
                sim._queue,
                (
                    sim._now + extra,
                    sim._seq,
                    self._ingress,
                    (host, source, target, payload, size),
                ),
            )

    def _ingress(
        self, host: Host, source: Endpoint, target: Endpoint, payload: bytes, size: int
    ) -> None:
        accepted = host.ingress.deliver(
            size, lambda: host.receive(source, target.port, payload)
        )
        if not accepted:
            if self.capture.keep_entries:
                self.capture.record(self.now, str(source), str(target), size, "drop")

    def _deliver_local(self, source: Endpoint, target: Endpoint, payload: bytes) -> None:
        host = self.hosts[target.host]
        host.receive(source, target.port, payload)
