"""Packet capture — the tcpdump-style observation facility (paper §2.1).

SSFNet logs traffic in tcpdump format; we record structured capture
entries that tests and benches query directly, and provide a text dump
with a tcpdump-flavoured line format for human inspection.  The capture
also keeps running byte totals per time bucket, which is how Figure 6(c)
(network KB/s vs clients) is produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["CaptureEntry", "PacketCapture"]


@dataclass(frozen=True, slots=True)
class CaptureEntry:
    """One packet observed on the fabric."""

    time: float
    source: str
    dest: str
    size: int
    kind: str  # "unicast" | "multicast" | "drop"


class PacketCapture:
    """Accumulates :class:`CaptureEntry` records and per-bucket byte totals."""

    def __init__(self, bucket_seconds: float = 1.0, keep_entries: bool = True):
        if bucket_seconds <= 0:
            raise ValueError("bucket size must be positive")
        self.bucket_seconds = bucket_seconds
        self.keep_entries = keep_entries
        self.entries: List[CaptureEntry] = []
        self.total_bytes = 0
        self.total_packets = 0
        self._buckets: Dict[int, int] = {}

    def record(self, time: float, source: str, dest: str, size: int, kind: str) -> None:
        if self.keep_entries:
            self.entries.append(CaptureEntry(time, source, dest, size, kind))
        self.tally(time, size, kind)

    def tally(self, time: float, size: int, kind: str) -> None:
        """Totals-only accounting — the per-datagram fast path.

        The network plane calls this directly when entry retention is
        off, so the endpoint/destination strings a full :meth:`record`
        wants are never built for traffic nobody will inspect."""
        if kind not in ("drop", "partition"):
            self.total_bytes += size
            self.total_packets += 1
            bucket = int(time / self.bucket_seconds)
            self._buckets[bucket] = self._buckets.get(bucket, 0) + size

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bytes_per_second(self) -> List[float]:
        """Byte totals per bucket, normalized to bytes/second."""
        if not self._buckets:
            return []
        last = max(self._buckets)
        return [
            self._buckets.get(i, 0) / self.bucket_seconds for i in range(last + 1)
        ]

    def mean_kbytes_per_second(self, skip_buckets: int = 0) -> float:
        """Average KB/s over the run (optionally skipping warm-up buckets)."""
        series = self.bytes_per_second()[skip_buckets:]
        if not series:
            return 0.0
        return sum(series) / len(series) / 1024.0

    def filter(self, predicate: Callable[[CaptureEntry], bool]) -> List[CaptureEntry]:
        return [e for e in self.entries if predicate(e)]

    def dump(self, limit: Optional[int] = None) -> str:
        """tcpdump-flavoured text listing (for debugging and examples)."""
        lines = []
        for entry in self.entries[: limit or len(self.entries)]:
            lines.append(
                f"{entry.time:12.6f} {entry.kind:<9} "
                f"{entry.source} > {entry.dest}: length {entry.size}"
            )
        return "\n".join(lines)
