"""Addressing for the simulated network.

Endpoints are ``(host, port)`` pairs like UDP; multicast groups are
distinct address objects that the fabric expands to the current member
set.  Addresses are immutable and hashable so they can key routing and
membership tables.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Endpoint", "GroupAddress"]


@dataclass(frozen=True, order=True, slots=True)
class Endpoint:
    """A unicast UDP-style endpoint: host name + port number."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True, order=True, slots=True)
class GroupAddress:
    """An IP-multicast-style group address.

    Membership is managed by the :class:`repro.net.network.Network`; the
    ``port`` selects which bound socket on each member host receives the
    datagram, mirroring UDP multicast semantics.
    """

    group: str
    port: int

    def __str__(self) -> str:
        return f"mcast:{self.group}:{self.port}"
