"""Message-loss processes used by the fault injector (paper §5.3).

Two of the paper's five fault types are loss processes applied to each
message upon reception:

* **random loss** — each message discarded independently with probability
  ``p``; models transmission errors;
* **bursty loss** — alternating good/bad periods with randomly generated
  lengths; during a bad period every message is discarded; models
  congestion.  The paper's experiment uses 5 % total loss in bursts of
  average length 5 messages (uniformly distributed).

Both are *decision processes*: stateful objects answering "drop this
one?" per message, usable by the runtime interceptor (reception-side
injection, as in the paper) or by the network fabric (wire-side loss).
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["LossProcess", "NoLoss", "RandomLoss", "BurstyLoss"]


class LossProcess:
    """Decides, message by message, whether to discard."""

    def should_drop(self) -> bool:
        raise NotImplementedError

    #: Number of drop decisions taken (drops / total gives realized rate).
    decisions: int = 0
    drops: int = 0

    def realized_rate(self) -> float:
        if self.decisions == 0:
            return 0.0
        return self.drops / self.decisions


class NoLoss(LossProcess):
    """The identity process: never drops."""

    def should_drop(self) -> bool:
        self.decisions += 1
        return False


class RandomLoss(LossProcess):
    """Independent Bernoulli loss with probability ``p``."""

    def __init__(self, p: float, rng: Optional[random.Random] = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        self.p = p
        self.rng = rng or random.Random(0)

    def should_drop(self) -> bool:
        self.decisions += 1
        drop = self.rng.random() < self.p
        if drop:
            self.drops += 1
        return drop


class BurstyLoss(LossProcess):
    """Alternating receive/discard periods measured in messages.

    Period lengths are uniform on ``[1, 2*mean - 1]`` (integer, so the
    mean is ``mean``).  The overall loss rate is
    ``mean_burst / (mean_burst + mean_gap)``; to inject 5 % loss with
    bursts of mean length 5 the gap mean must be 95.
    """

    def __init__(
        self,
        mean_burst: float = 5.0,
        mean_gap: float = 95.0,
        rng: Optional[random.Random] = None,
    ):
        if mean_burst < 1 or mean_gap < 1:
            raise ValueError("period means must be >= 1 message")
        self.mean_burst = mean_burst
        self.mean_gap = mean_gap
        self.rng = rng or random.Random(0)
        self._in_burst = False
        self._remaining = self._draw_length(self.mean_gap)

    @classmethod
    def for_rate(
        cls,
        rate: float,
        mean_burst: float = 5.0,
        rng: Optional[random.Random] = None,
    ) -> "BurstyLoss":
        """Build a process with overall loss ``rate`` and given burst mean."""
        if not 0.0 < rate < 1.0:
            raise ValueError("rate must be in (0, 1)")
        mean_gap = mean_burst * (1.0 - rate) / rate
        return cls(mean_burst=mean_burst, mean_gap=max(1.0, mean_gap), rng=rng)

    def _draw_length(self, mean: float) -> int:
        # Uniform integer on [1, 2*mean - 1] has mean ``mean``.
        high = max(1, int(round(2 * mean - 1)))
        return self.rng.randint(1, high)

    def should_drop(self) -> bool:
        self.decisions += 1
        if self._remaining <= 0:
            self._in_burst = not self._in_burst
            mean = self.mean_burst if self._in_burst else self.mean_gap
            self._remaining = self._draw_length(mean)
        self._remaining -= 1
        if self._in_burst:
            self.drops += 1
            return True
        return False
