"""Simulated network substrate (the SSFNet analogue).

Public surface: :class:`Network` / :class:`Host` for topology,
:class:`UdpSocket` for endpoints, :class:`Endpoint` / :class:`GroupAddress`
for addressing, :class:`PacketCapture` for observation, and the loss
processes used by fault injection.

**Contract.** Best-effort datagram delivery between hosts with
calibrated bandwidth and latency: unicast, list fan-out, and IP
multicast within a segment; WAN segments add configured latency and
force the unicast fallback.

**Invariants.**

* *No fabrication, no reordering per link* — a link delivers exactly
  the bytes sent, in FIFO order; datagrams are lost only by ingress
  overflow, injected loss, or a partition cut;
* *Partition cuts are absolute* — while a cut separates two hosts, no
  packet crosses in either direction (recorded as ``"partition"``
  drops in the capture);
* *Conserved accounting* — every transmitted byte appears exactly once
  in the capture totals the resource figures are computed from.
"""

from .address import Endpoint, GroupAddress
from .capture import CaptureEntry, PacketCapture
from .link import RateLimitedLink
from .lossmodels import BurstyLoss, LossProcess, NoLoss, RandomLoss
from .network import Host, Network
from .udp import UdpSocket

__all__ = [
    "Endpoint",
    "GroupAddress",
    "CaptureEntry",
    "PacketCapture",
    "RateLimitedLink",
    "BurstyLoss",
    "LossProcess",
    "NoLoss",
    "RandomLoss",
    "Host",
    "Network",
    "UdpSocket",
]
