"""Simulated network substrate (the SSFNet analogue).

Public surface: :class:`Network` / :class:`Host` for topology,
:class:`UdpSocket` for endpoints, :class:`Endpoint` / :class:`GroupAddress`
for addressing, :class:`PacketCapture` for observation, and the loss
processes used by fault injection.
"""

from .address import Endpoint, GroupAddress
from .capture import CaptureEntry, PacketCapture
from .link import RateLimitedLink
from .lossmodels import BurstyLoss, LossProcess, NoLoss, RandomLoss
from .network import Host, Network
from .udp import UdpSocket

__all__ = [
    "Endpoint",
    "GroupAddress",
    "CaptureEntry",
    "PacketCapture",
    "RateLimitedLink",
    "BurstyLoss",
    "LossProcess",
    "NoLoss",
    "RandomLoss",
    "Host",
    "Network",
    "UdpSocket",
]
