"""UDP-style sockets over the simulated fabric.

The simplified network interface the protocol abstraction layer exposes
(paper §2.3) bottoms out here when running under simulation: a socket is
a bound port on a host, sends are fire-and-forget datagrams, and a
receive callback is invoked per arriving datagram.
"""

from __future__ import annotations

from typing import Callable, Optional

from .address import Endpoint, GroupAddress
from .network import Destination, Host

__all__ = ["UdpSocket"]

ReceiveCallback = Callable[[Endpoint, bytes], None]


class UdpSocket:
    """A bound datagram socket on a simulated host."""

    def __init__(self, host: Host, port: int):
        self.host = host
        self.port = port
        self._receiver: Optional[ReceiveCallback] = None
        self._closed = False
        host.bind(port, self._on_datagram)

    @property
    def address(self) -> Endpoint:
        return Endpoint(self.host.name, self.port)

    def set_receiver(self, callback: ReceiveCallback) -> None:
        self._receiver = callback

    def send(self, dest: Destination, payload: bytes) -> None:
        if self._closed:
            raise RuntimeError("socket is closed")
        self.host.send(self.port, dest, payload)

    def join(self, group: GroupAddress) -> None:
        """Subscribe this socket's host to a multicast group."""
        self.host.network.join(group, self.host.name)

    def leave(self, group: GroupAddress) -> None:
        self.host.network.leave(group, self.host.name)

    def close(self) -> None:
        if not self._closed:
            self.host.unbind(self.port)
            self._closed = True

    def _on_datagram(self, source: Endpoint, payload: bytes) -> None:
        if self._receiver is not None and not self._closed:
            self._receiver(source, payload)
