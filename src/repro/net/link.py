"""Rate-limited links with bounded queues — the wire model.

Each simulated host attaches to the fabric through two of these (egress
and ingress), modeling a full-duplex switched Ethernet port: packets are
serialized at the link rate, queue while the link is busy, and are
dropped at the tail once the buffer is full.  This is where the
bandwidth ceilings of Figures 3(a)/3(b) come from.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import Callable, Deque, Tuple

from ..core.kernel import Entity, Simulator

__all__ = ["RateLimitedLink", "LinkStats"]

#: Ethernet + IP + UDP framing added to every payload on the wire.
WIRE_OVERHEAD_BYTES = 42


class LinkStats:
    """Byte/packet counters plus a time series for usage plots."""

    __slots__ = ("bytes_sent", "packets_sent", "packets_dropped", "busy_time")

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.busy_time = 0.0

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class RateLimitedLink(Entity):
    """Serializes packets at ``bandwidth_bps`` with propagation ``latency``.

    ``deliver(size, on_delivered)`` charges the transmission time of
    ``size`` bytes (payload + wire overhead), queues behind in-flight
    packets, and invokes ``on_delivered`` at the instant the last bit
    plus the propagation delay arrive.  The queue holds at most
    ``queue_bytes`` of not-yet-transmitted data; beyond that, tail drop.

    The serializer is modeled as a busy-until horizon rather than an
    event per transmission slot: an accepted packet's start time is
    ``max(now, free_at)``, so the only event a packet costs is its own
    delivery — no per-packet "link free, start the next one" wake-up.
    The not-yet-started backlog (what the tail-drop check runs against)
    is a deque of ``(start_time, size)`` pairs drained lazily as the
    clock passes their start times.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float = 100e6,
        latency: float = 50e-6,
        queue_bytes: int = 256 * 1024,
    ):
        super().__init__(sim, name)
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.queue_bytes = queue_bytes
        self.stats = LinkStats()
        #: When the serializer finishes its current backlog.
        self._free_at = 0.0
        self._backlog: Deque[Tuple[float, int]] = deque()
        self._backlog_bytes = 0

    def transmission_time(self, size: int) -> float:
        return (size + WIRE_OVERHEAD_BYTES) * 8.0 / self.bandwidth_bps

    def deliver(self, size: int, on_delivered: Callable[[], None]) -> bool:
        """Queue a packet of ``size`` payload bytes.  Returns False and
        counts a drop if the buffer is full."""
        return self.deliver_at(self.sim._now, size, on_delivered)

    def deliver_at(
        self, now: float, size: int, on_delivered: Callable[[], None]
    ) -> bool:
        """:meth:`deliver` for a packet arriving at future instant
        ``now``.

        Lets the fabric bind a packet to its ingress link at send time
        instead of scheduling an arrival event first — valid only when
        every packet headed for this link carries the same propagation
        offset (binding order then equals arrival order), which the
        fabric checks before using it.
        """
        sim = self.sim
        backlog = self._backlog
        while backlog and backlog[0][0] <= now:
            self._backlog_bytes -= backlog.popleft()[1]
        if self._backlog_bytes + size > self.queue_bytes:
            self.stats.packets_dropped += 1
            return False
        tx_time = self.transmission_time(size)
        start = self._free_at
        stats = self.stats
        stats.busy_time += tx_time
        stats.bytes_sent += size + WIRE_OVERHEAD_BYTES
        stats.packets_sent += 1
        # The receiver sees the packet after serialization + propagation.
        # Inlined fire-and-forget schedules (see Simulator.call): this is
        # one of the two hottest event producers in the simulator.
        sim._seq += 1
        if start <= now:
            # Idle link: the packet's only event is its own delivery.
            self._free_at = now + tx_time
            _heappush(
                sim._queue,
                # Grouped as now + (tx + latency): the exact float the
                # per-slot event scheme produced, keeping delivery
                # timestamps bit-identical across the two models.
                (now + (tx_time + self.latency), sim._seq, on_delivered, ()),
            )
        else:
            # Busy link: the packet queues.  Its delivery event must be
            # *allocated* at transmission start — exactly when the old
            # transmit-slot scheme allocated it — so same-instant event
            # ordering (and with it every result bit) is preserved.
            self._free_at = start + tx_time
            backlog.append((start, size))
            self._backlog_bytes += size
            _heappush(
                sim._queue, (start, sim._seq, self._begin, (tx_time, on_delivered))
            )
        return True

    def _begin(self, tx_time: float, on_delivered: Callable[[], None]) -> None:
        """Transmission start of a packet that queued behind the backlog:
        schedule its delivery at last-bit + propagation."""
        sim = self.sim
        sim._seq += 1
        _heappush(
            sim._queue,
            (sim._now + (tx_time + self.latency), sim._seq, on_delivered, ()),
        )

    def queue_depth(self) -> int:
        """Bytes waiting to be transmitted (not counting the in-flight one)."""
        now = self.sim._now
        backlog = self._backlog
        while backlog and backlog[0][0] <= now:
            self._backlog_bytes -= backlog.popleft()[1]
        return self._backlog_bytes
