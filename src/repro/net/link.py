"""Rate-limited links with bounded queues — the wire model.

Each simulated host attaches to the fabric through two of these (egress
and ingress), modeling a full-duplex switched Ethernet port: packets are
serialized at the link rate, queue while the link is busy, and are
dropped at the tail once the buffer is full.  This is where the
bandwidth ceilings of Figures 3(a)/3(b) come from.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..core.kernel import Entity, Simulator

__all__ = ["RateLimitedLink", "LinkStats"]

#: Ethernet + IP + UDP framing added to every payload on the wire.
WIRE_OVERHEAD_BYTES = 42


class LinkStats:
    """Byte/packet counters plus a time series for usage plots."""

    __slots__ = ("bytes_sent", "packets_sent", "packets_dropped", "busy_time")

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.busy_time = 0.0

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class RateLimitedLink(Entity):
    """Serializes packets at ``bandwidth_bps`` with propagation ``latency``.

    ``deliver(size, on_delivered)`` charges the transmission time of
    ``size`` bytes (payload + wire overhead), queues behind in-flight
    packets, and invokes ``on_delivered`` at the instant the last bit
    plus the propagation delay arrive.  The queue holds at most
    ``queue_bytes`` of not-yet-transmitted data; beyond that, tail drop.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float = 100e6,
        latency: float = 50e-6,
        queue_bytes: int = 256 * 1024,
    ):
        super().__init__(sim, name)
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.queue_bytes = queue_bytes
        self.stats = LinkStats()
        self._queued: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._queued_bytes = 0
        self._transmitting = False

    def transmission_time(self, size: int) -> float:
        return (size + WIRE_OVERHEAD_BYTES) * 8.0 / self.bandwidth_bps

    def deliver(self, size: int, on_delivered: Callable[[], None]) -> bool:
        """Queue a packet of ``size`` payload bytes.  Returns False and
        counts a drop if the buffer is full."""
        if self._queued_bytes + size > self.queue_bytes:
            self.stats.packets_dropped += 1
            return False
        self._queued.append((size, on_delivered))
        self._queued_bytes += size
        if not self._transmitting:
            self._transmit_next()
        return True

    def queue_depth(self) -> int:
        """Bytes waiting to be transmitted (not counting the in-flight one)."""
        return self._queued_bytes

    # ------------------------------------------------------------------
    def _transmit_next(self) -> None:
        if not self._queued:
            self._transmitting = False
            return
        self._transmitting = True
        size, on_delivered = self._queued.popleft()
        self._queued_bytes -= size
        tx_time = self.transmission_time(size)
        self.stats.busy_time += tx_time
        self.stats.bytes_sent += size + WIRE_OVERHEAD_BYTES
        self.stats.packets_sent += 1
        # The receiver sees the packet after serialization + propagation;
        # the link is free for the next packet after serialization alone.
        self.schedule(tx_time + self.latency, on_delivered)
        self.schedule(tx_time, self._transmit_next)
