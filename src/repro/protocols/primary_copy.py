"""Primary-copy passive replication (registry name ``"primary-copy"``).

The classic alternative to the DBSM's update-everywhere certification:
**all update transactions are routed to, and executed on, a single
primary site** — the lowest-id member of the current view — while
read-only transactions are served locally at every site.  When an
update commits at the primary, its write-set is atomically broadcast on
the same group-communication substrate the DBSM uses; every site
applies the write-sets in total-order delivery sequence, so backups
converge on exactly the primary's commit sequence (the §5.3
1-copy-serializability check applies unchanged).

Failover: when the primary crashes, the view change promotes the
lowest-id survivor.  Client requests addressed to a primary that is
known dead — or to a successor that has not yet installed the view that
promotes it — are parked at the client's own site and re-routed once
the new primary is in place, like a client library reconnecting after
a broken connection.  Requests *in flight* at the crash instant are
lost and their clients block, exactly as clients of a crashed DBSM
site do.  Two mechanisms keep the regime change serial: forwarded
updates are held until the successor has installed the promoting view
(the virtual-synchrony flush makes delivery of every old-regime
write-set a precondition of that installation), and the promoted
primary itself holds new local updates until every delivered write-set
has *finished applying* — an old-regime apply acquiring locks after a
new update started executing would preempt it, and without
certification to abort the preempted transaction the commit orders
would diverge.

Contrasts with ``"dbsm"`` under identical workloads: no certification
and no read-set shipping (smaller messages, zero certification aborts —
update conflicts surface as write-lock conflicts at the primary
instead), but update processing does not scale out: the primary's CPU
bounds update throughput while reads still scale with sites.  Protocol
CPU and byte counters are kept per site so Figure 6/7-style resource
breakdowns work per protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.csrt import SiteRuntime
from ..core.kernel import Signal
from ..core.safety import CommitLog
from ..db.server import DatabaseServer, WatermarkTracker
from ..db.transactions import Outcome, Transaction, TransactionSpec
from ..dbsm.marshal import CommitRequest, unmarshal_request_cached
from ..dbsm.replica import REMOTE_APPLY_CPU_FACTOR, broadcast_commit_request
from ..gcs.stack import GroupCommunication
from .base import (
    OnDone,
    ProtocolContext,
    ProtocolGroup,
    ReplicationProtocol,
    register_protocol,
)

__all__ = ["PrimaryCopyReplica", "PARK_RETRY_INTERVAL"]

#: How often a site re-probes for a usable primary while requests are
#: parked (failover in progress).  Client-side reconnect cadence, not a
#: protocol timer — it only runs while the primary is unreachable.
PARK_RETRY_INTERVAL = 0.050


class PrimaryCopyReplica(ReplicationProtocol):
    """One site of the passively replicated database."""

    name = "primary-copy"

    def __init__(
        self,
        site_id: int,
        server: DatabaseServer,
        gcs: GroupCommunication,
        site_runtime: SiteRuntime,
        group: ProtocolGroup,
        link_latency: float = 0.0,
        commit_log: Optional[CommitLog] = None,
    ):
        self.site_id = site_id
        self.server = server
        self.gcs = gcs
        self.runtime = site_runtime
        self.group = group
        #: One-way client<->primary network latency charged per routed
        #: request and per reply (the JDBC hop a middleware router adds).
        self.link_latency = link_latency
        self.commit_log = commit_log or CommitLog(site=server.name)
        self.crashed = False
        #: Lowest-id member of the currently installed view.
        self.primary_id = min(gcs.members)
        self._next_commit_seq = 0
        self._watermark = WatermarkTracker()
        #: tx_id -> (transaction, outcome signal) awaiting the write-set
        #: broadcast to come back in total order (primary role only).
        self._pending: Dict[int, Tuple[Transaction, Signal]] = {}
        #: (spec, on_done, issued_at) requests held while no usable
        #: primary exists (failover in progress).
        self._parked: List[Tuple[TransactionSpec, OnDone, float]] = []
        self._retry_scheduled = False
        #: Write-set applies scheduled but not yet fully applied.  A
        #: newly promoted primary holds local updates until this drains:
        #: a pending old-regime apply acquiring locks *after* a new
        #: local update started would preempt it, and with no
        #: certification to abort the preempted transaction the commit
        #: orders would diverge.
        self._applies_in_flight = 0
        #: Updates accepted by this primary but held behind the drain.
        self._held: List[Tuple[TransactionSpec, OnDone, float]] = []
        self.stats = {
            "submitted": 0,
            "sequenced": 0,
            "backup_applies": 0,
            "forwarded": 0,
            "parked": 0,
            "failovers": 0,
            "ws_bytes_broadcast": 0,
        }
        server.termination = self
        server.on_applied = self._on_applied
        gcs.on_deliver = self._on_deliver
        gcs.on_view_change = self._on_view_change
        gcs.snapshot_provider = self.state_snapshot
        gcs.snapshot_installer = self.install_snapshot

    # ------------------------------------------------------------------
    # state transfer (recovery/rejoin)
    # ------------------------------------------------------------------
    def reset_protocol_state(self, was_crashed: bool) -> None:
        self._pending.clear()
        self._held.clear()
        self._applies_in_flight = 0
        if was_crashed:
            # A restarted process has lost the requests parked inside
            # it; a partition survivor keeps them and re-routes once a
            # usable primary is visible again.
            self._parked.clear()

    def protocol_snapshot(self) -> Dict[str, object]:
        return {"next_commit_seq": self._next_commit_seq}

    def install_protocol_snapshot(self, snap: Dict[str, object]) -> None:
        self._next_commit_seq = int(snap["next_commit_seq"])
        self._watermark = WatermarkTracker()
        self._watermark.watermark = self._next_commit_seq
        if self._parked:
            self._schedule_park_retry()

    # ------------------------------------------------------------------
    # client routing
    # ------------------------------------------------------------------
    def is_primary(self) -> bool:
        return self.primary_id == self.site_id

    def client_submit(self, spec: TransactionSpec, on_done: OnDone) -> None:
        """Reads execute locally; updates are routed to the primary."""
        if spec.readonly:
            # Same as "dbsm": read-only transactions run on the local
            # server even at the crash instant (the crash seals the
            # protocol runtime, not the simulated server).
            self.server.submit(spec, on_done=on_done)
            return
        if self.crashed:
            return  # an update issued at a dead site vanishes; the
            # client blocks, as a dbsm client blocks in submit()
        self._route_update(spec, on_done, self.server.sim.now)

    def _route_update(
        self, spec: TransactionSpec, on_done: OnDone, issued_at: float
    ) -> None:
        """Send an update to the current primary.  ``issued_at`` is the
        instant the client issued the request and travels with it across
        parking/retries, so routing hops *and* failover downtime count
        toward the transaction's recorded latency."""
        if self.is_primary():
            self._execute_update(spec, on_done, issued_at)
            return
        self._forward(spec, on_done, issued_at)

    def _execute_update(
        self, spec: TransactionSpec, on_done: OnDone, issued_at: float
    ) -> None:
        """Run an accepted update on this (primary) site's server —
        unless old-regime write-set applies are still in flight, in
        which case the update is held until they drain (see
        ``_applies_in_flight``; only a freshly promoted primary ever
        holds anything)."""
        if self._applies_in_flight > 0:
            self._held.append((spec, on_done, issued_at))
            return
        self.server.submit(spec, on_done, submitted_at=issued_at)

    def _forward(
        self, spec: TransactionSpec, on_done: OnDone, issued_at: float
    ) -> None:
        primary = self.group.instance(self.primary_id)
        if primary.crashed or not primary.live or not primary.is_primary():
            # Dead primary, a successor that has not yet installed the
            # view promoting it (so it may not have applied every
            # write-set of the old regime), or a recovered predecessor
            # still mid state transfer: hold the request and retry.
            self._parked.append((spec, on_done, issued_at))
            self.stats["parked"] += 1
            self._schedule_park_retry()
            return
        self.stats["forwarded"] += 1
        sim = self.server.sim
        delay = self.link_latency

        def reply(tx: Transaction) -> None:
            sim.schedule(delay, on_done, tx)

        def routed_submit() -> None:
            # Arrive at the primary through its own gate (it may need to
            # hold the update behind in-flight applies), backdated to
            # the client's issue instant; the reply hop delays only the
            # client (end_time is the primary's commit).
            if primary.crashed:
                return  # in-flight request lost with the primary
            primary._execute_update(spec, reply, issued_at)

        sim.schedule(delay, routed_submit)

    def _schedule_park_retry(self) -> None:
        if self._retry_scheduled or self.crashed:
            return
        self._retry_scheduled = True
        self.server.sim.schedule(PARK_RETRY_INTERVAL, self._flush_parked)

    def _flush_parked(self) -> None:
        self._retry_scheduled = False
        if self.crashed or not self._parked:
            return
        primary = self.group.instance(self.primary_id)
        if primary.crashed or not primary.live or not primary.is_primary():
            self._schedule_park_retry()
            return
        parked, self._parked = self._parked, []
        for spec, on_done, issued_at in parked:
            # Re-route with the original issue time: if *this* site was
            # promoted the update now executes locally (no forwarding
            # hop), and either way the client's failover wait stays in
            # the recorded latency.
            self._route_update(spec, on_done, issued_at)

    # ------------------------------------------------------------------
    # TerminationProtocol (called from the primary's server processes)
    # ------------------------------------------------------------------
    def submit(self, tx: Transaction) -> Signal:
        """Atomically broadcast the committing transaction's write-set.

        Marshaling and the multicast run as a real protocol job charged
        to this site's CPU — the passive protocol's Figure 6(a) share.
        Passive replication ships no read sets."""
        outcome, nbytes = broadcast_commit_request(self, tx, ())
        if nbytes:
            self.stats["submitted"] += 1
            self.stats["ws_bytes_broadcast"] += nbytes
        return outcome

    def applied_watermark(self) -> int:
        return self._watermark.watermark

    # ------------------------------------------------------------------
    # total-order delivery (runs inside the real receive job)
    # ------------------------------------------------------------------
    def _on_deliver(self, global_seq: int, origin: int, payload: bytes) -> None:
        if self.crashed:
            return
        request = unmarshal_request_cached(payload)
        # Total order *is* the commit order: every operational site
        # counts deliveries identically, no certification step.
        self._next_commit_seq += 1
        commit_seq = self._next_commit_seq
        self.stats["sequenced"] += 1
        self.log_commit(commit_seq, request.tx_id)
        if request.origin == self.site_id:
            self._resolve_local(request, commit_seq)
        else:
            self._apply_backup(request, commit_seq)

    def _resolve_local(self, request: CommitRequest, commit_seq: int) -> None:
        entry = self._pending.pop(request.tx_id, None)
        if entry is None:
            return
        tx, outcome_signal = entry
        tx.global_seq = commit_seq
        # Fire through the runtime so the wake-up lands after the CPU
        # time consumed so far by this delivery job (Figure 1(b)).
        self.runtime.rt_schedule(0.0, outcome_signal.fire, Outcome.COMMIT)

    def _apply_backup(self, request: CommitRequest, commit_seq: int) -> None:
        spec = request.remote_spec(REMOTE_APPLY_CPU_FACTOR)
        tx = Transaction(spec, self.server.name, remote=True)
        tx.global_seq = commit_seq
        tx.submit_time = self.runtime.rt_now()
        self.stats["backup_applies"] += 1
        self._applies_in_flight += 1
        self.runtime.rt_schedule(0.0, self.server.apply_remote, tx)

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def _on_view_change(self, view_id: int, members: Tuple[int, ...]) -> None:
        new_primary = min(members)
        if new_primary != self.primary_id:
            self.primary_id = new_primary
            self.stats["failovers"] += 1
        if self._parked:
            self._flush_parked()

    # ------------------------------------------------------------------
    def _on_applied(self, tx: Transaction, global_seq: int) -> None:
        if global_seq > 0:
            self._watermark.mark(global_seq)
        if tx.remote:
            self._applies_in_flight -= 1
            if self._applies_in_flight == 0 and self._held:
                held, self._held = self._held, []
                for spec, on_done, issued_at in held:
                    self._execute_update(spec, on_done, issued_at)

    def protocol_stats(self) -> Dict[str, int]:
        return dict(self.stats)


def _build(ctx: ProtocolContext) -> PrimaryCopyReplica:
    return PrimaryCopyReplica(
        ctx.site_id,
        ctx.server,
        ctx.gcs,
        ctx.runtime,
        ctx.group,
        link_latency=ctx.config.net_link_latency,
    )


register_protocol("primary-copy", _build)
