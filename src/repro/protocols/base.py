"""The pluggable replication-protocol layer.

The paper's testbed exists to evaluate group-communication-based
replication *protocols* — plural.  This module is the seam that makes
the protocol a first-class experiment axis: a registry maps a protocol
name (``ScenarioConfig.protocol``) to a builder that wires one site's
database server, group-communication stack and runtime into a
:class:`ReplicationProtocol` instance.  Scenario assembly looks the
protocol up by name, so the same performance and fault grids run under
any registered protocol and compare side by side.

Adding a protocol:

1. subclass :class:`ReplicationProtocol` — implement the server-facing
   ``submit``/``applied_watermark`` (inherited from
   :class:`~repro.db.server.TerminationProtocol`), ``crash`` and
   ``protocol_stats``, and override ``client_submit`` if client requests
   need routing (see ``primary_copy``);
2. implement the **state-transfer hook** — ``protocol_snapshot`` /
   ``install_protocol_snapshot`` (the protocol metadata a donor ships
   to a rejoining replica: certification position, apply watermark,
   commit counters); the base class handles the commit log, the
   ``live`` gate and orphan accounting;
3. register a builder: ``register_protocol("my-proto", build_fn)`` where
   ``build_fn(ctx: ProtocolContext)`` returns the per-site instance;
4. give it a smoke cell: the runner's smoke grid enumerates the registry
   automatically, and a unit test fails any registered protocol that has
   no smoke cell.

Builders for the built-in protocols (``"dbsm"``, ``"primary-copy"``)
are registered lazily on first lookup, keeping import order free of
cycles with the modules they wire together.

Registration is per-process.  To run a custom protocol through the
campaign runner with ``workers > 1``, put the ``register_protocol``
call in an importable module and import it from worker code too (e.g.
via an ``initializer`` or a conftest) — under spawn/forkserver start
methods a worker process re-imports ``repro`` fresh and only the
built-ins register themselves.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..core.safety import CommitLog
from ..db.server import DatabaseServer, TerminationProtocol
from ..db.transactions import Transaction, TransactionSpec

__all__ = [
    "ReplicationProtocol",
    "ProtocolContext",
    "ProtocolGroup",
    "register_protocol",
    "get_protocol",
    "build_protocol",
    "available_protocols",
]

OnDone = Callable[[Transaction], None]


class ReplicationProtocol(TerminationProtocol):
    """One site's replication-protocol instance.

    The server sees it as its :class:`TerminationProtocol`; the scenario
    additionally uses it to route client requests, to crash the site,
    and to collect the commit log and protocol counters after the run.
    """

    #: Registry name of the protocol this instance implements.
    name: str = "?"
    #: The site's ordered commit decisions (§5.3 safety checking).
    commit_log: CommitLog
    #: Set once the site has been crashed by fault injection.
    crashed: bool = False
    #: False between a rejoin and the completion of its state transfer:
    #: the site orders traffic but must not serve update requests.
    live: bool = True
    #: The site's database server.
    server: DatabaseServer
    #: The site's :class:`~repro.core.csrt.SiteRuntime` (typed loosely
    #: to keep this module import-light).
    runtime: Any
    #: The site's :class:`~repro.monitors.base.SiteProbe` when runtime
    #: invariant monitoring is enabled, else None.  Every protocol gets
    #: monitored through this one binding: commits must flow through
    #: :meth:`log_commit` and the base class notifies the lifecycle
    #: events (crash / rejoin / snapshot install) itself, so a new
    #: protocol is covered without writing any monitor code.
    monitor: Any = None

    # ------------------------------------------------------------------
    def client_submit(self, spec: TransactionSpec, on_done: OnDone) -> None:
        """Route one client transaction request.

        The default is what every symmetric (update-everywhere) protocol
        wants: execute on the client's own site.  Asymmetric protocols
        override this — primary-copy sends updates to the primary.
        """
        self.server.submit(spec, on_done=on_done)

    def crash(self) -> None:
        """Stop the site (fault injection §5.3): the runtime boundary is
        sealed and the commit log freezes exactly at the crash point.
        Every protocol needs exactly this; forgetting ``commit_log.crashed``
        would silently break the §5.3 prefix check, so it lives here."""
        self.crashed = True
        self.commit_log.crashed = True
        self.runtime.crash()
        if self.monitor is not None:
            self.monitor.crash()

    def log_commit(self, commit_seq: int, tx_id: int) -> None:
        """Record one commit decision (the §5.3 log) and notify the
        site's monitor probe.  Protocols append through here, never
        directly to ``commit_log``, so the streaming certifier sees
        every decision the post-hoc check would."""
        self.commit_log.append(commit_seq, tx_id)
        if self.monitor is not None:
            self.monitor.commit(commit_seq, tx_id)

    def protocol_stats(self) -> Dict[str, int]:
        """Flat per-site protocol counters for
        :attr:`~repro.core.experiment.ScenarioResult.site_stats` —
        the per-protocol resource breakdowns of Figures 6/7."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # state transfer (recovery §ARCHITECTURE.md; hooks for gcs/statetransfer)
    # ------------------------------------------------------------------
    def begin_rejoin(self) -> None:
        """Reset protocol volatile state ahead of a rejoin.

        The commit log keeps its entries for orphan accounting (they are
        replaced when the snapshot installs) but stays marked
        non-operational until then — a §5.3 check on a run that ends
        mid-rejoin treats the site like a stopped one."""
        was_crashed = self.crashed
        self.crashed = False
        self.live = False
        self.commit_log.crashed = True
        self.reset_protocol_state(was_crashed)
        if self.monitor is not None:
            self.monitor.rejoin()

    def reset_protocol_state(self, was_crashed: bool) -> None:
        """Drop in-flight protocol state a restarted process would not
        have.  ``was_crashed`` is False for a partition-heal rejoin: the
        process survived, so client requests parked inside it may be
        preserved and re-routed once live."""

    def state_snapshot(self) -> Dict[str, object]:
        """The protocol metadata a donor ships to a rejoining replica:
        the committed sequence plus whatever :meth:`protocol_snapshot`
        contributes (certification position, apply watermark, ...)."""
        snap: Dict[str, object] = {
            "commit_log": [list(entry) for entry in self.commit_log.entries]
        }
        snap.update(self.protocol_snapshot())
        return snap

    def install_snapshot(self, snap: Dict[str, object]) -> int:
        """Adopt a donor's snapshot and go live.

        The joiner's committed state becomes bit-identical to the
        donor's cut; entries of the previous incarnation missing from
        the adopted sequence (a minority partition's divergence window)
        are counted and returned as *orphaned commits*."""
        adopted = [tuple(entry) for entry in snap["commit_log"]]
        old = list(self.commit_log.entries)
        common = 0
        for mine, theirs in zip(old, adopted):
            if mine != theirs:
                break
            common += 1
        orphans = len(old) - common
        self.commit_log.entries[:] = adopted
        self.commit_log.crashed = False
        self.install_protocol_snapshot(snap)
        self.live = True
        if self.monitor is not None:
            self.monitor.snapshot(adopted)
        return orphans

    def protocol_snapshot(self) -> Dict[str, object]:
        """Protocol-specific snapshot fields (see :meth:`state_snapshot`)."""
        return {}

    def install_protocol_snapshot(self, snap: Dict[str, object]) -> None:
        """Adopt the :meth:`protocol_snapshot` fields."""


class ProtocolGroup:
    """Directory of the per-site protocol instances of one run.

    Protocols that route requests across sites (primary-copy) resolve
    their peers here; symmetric protocols never need it.  The scenario
    registers each instance as it is built.
    """

    def __init__(self) -> None:
        self._instances: Dict[int, ReplicationProtocol] = {}

    def register(self, site_id: int, instance: ReplicationProtocol) -> None:
        self._instances[site_id] = instance

    def instance(self, site_id: int) -> ReplicationProtocol:
        return self._instances[site_id]

    def site_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._instances))


@dataclass
class ProtocolContext:
    """Everything a protocol builder may wire against for one site.

    ``gcs``/``runtime``/``config`` are typed loosely to keep this module
    import-light; they are the site's
    :class:`~repro.gcs.stack.GroupCommunication`,
    :class:`~repro.core.csrt.SiteRuntime` and the run's
    :class:`~repro.core.experiment.ScenarioConfig`.
    """

    site_id: int
    server: DatabaseServer
    gcs: Any
    runtime: Any
    config: Any
    group: ProtocolGroup


Builder = Callable[[ProtocolContext], ReplicationProtocol]

_REGISTRY: Dict[str, Builder] = {}
#: Submodules that register the built-in protocols on import.
_BUILTIN_MODULES = (".dbsm", ".primary_copy", ".partial")


def register_protocol(name: str, builder: Builder) -> None:
    """Register ``builder`` under ``name`` (unique, non-empty)."""
    if not name or not isinstance(name, str):
        raise ValueError("protocol name must be a non-empty string")
    # Load the built-ins first so a clash with a built-in name fails
    # *here*, at the caller — not later inside _load_builtins, which
    # would poison every subsequent registry lookup.  Reentrant calls
    # from the built-in modules themselves are fine: their in-progress
    # imports are already in sys.modules.
    _load_builtins()
    if name in _REGISTRY:
        raise ValueError(f"replication protocol {name!r} already registered")
    _REGISTRY[name] = builder


def _load_builtins() -> None:
    for module in _BUILTIN_MODULES:
        importlib.import_module(module, __package__)


def available_protocols() -> Tuple[str, ...]:
    """Sorted names of every registered protocol."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def get_protocol(name: str) -> Builder:
    """The builder registered under ``name``; raises ValueError if none."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown replication protocol {name!r} (available: {known})"
        ) from None


def build_protocol(name: str, ctx: ProtocolContext) -> ReplicationProtocol:
    """Build and group-register the ``name`` protocol for one site."""
    instance = get_protocol(name)(ctx)
    ctx.group.register(ctx.site_id, instance)
    return instance
