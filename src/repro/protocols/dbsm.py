"""The DBSM certification protocol behind the registry (``"dbsm"``).

The implementation is :class:`repro.dbsm.replica.Replica` — the paper's
distributed termination protocol (§3.3): read/write sets atomically
multicast, deterministic certification on total-order delivery, write
sets applied remotely.  This module only adapts it to the registry's
builder signature.
"""

from __future__ import annotations

from ..dbsm.replica import Replica
from .base import ProtocolContext, register_protocol


def _build(ctx: ProtocolContext) -> Replica:
    return Replica(ctx.site_id, ctx.server, ctx.gcs, ctx.runtime)


register_protocol("dbsm", _build)
