"""Partial replication with per-fragment groups (registry name ``"partial"``).

Each data fragment (a warehouse range, see :mod:`repro.placement`) is
replicated by its own group with its own GCS stack.  A transaction whose
read/write sets touch a single fragment certifies through that group's
total order exactly like a DBSM transaction — paying one small group's
broadcast instead of the whole system's.  A transaction touching several
fragments is *genuinely* multicast to exactly the touched groups (Sutra
& Shapiro, *Fault-Tolerant Partial Replication in Large-Scale Database
Systems*) and commits through a cross-group agreement step:

1. the origin sends the commit request to every touched group; each
   group runs it through its own total order;
2. at delivery every member of a touched group computes the same
   deterministic **vote** — no conflict with that group's in-flight
   cross-transaction reservations, plus (in the origin's own group,
   where the transaction's ``start_seq`` horizon is meaningful) the
   regular certification test — and *reserves* the transaction's
   footprint;
3. each group's delegate (lowest-id member of its current view) reports
   the vote to the origin; the origin commits iff every touched group
   voted yes, and multicasts the decision back into each group;
4. at decision delivery every member atomically releases the
   reservation and, on commit, assigns the group-local commit sequence
   and applies the writes.

Reads against fragments the origin never executed on are certified
*at delivery* ("read at delivery"): they conflict-check only against
concurrently reserved cross transactions, since the group's total order
is the first point where they have a meaningful position.  Reserved
footprints block conflicting single-fragment commits in between — a
conservative, deterministic stand-in for the prototype's cross-group
locks, so every member of a group still takes identical decisions at
identical delivery positions and the per-group one-copy-serializability
check holds unchanged.

With ``fragments == 1`` every transaction takes the single-group fast
path and the protocol degenerates to DBSM certification — the scale-out
campaign's baseline cell.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..core.csrt import SiteRuntime
from ..core.kernel import Signal
from ..core.safety import CommitLog
from ..db.server import DatabaseServer, WatermarkTracker
from ..db.transactions import Outcome, Transaction
from ..dbsm.certification import PER_ITEM_COST, Certifier, sets_conflict
from ..dbsm.marshal import (
    CommitRequest,
    marshal_request,
    unmarshal_request_cached,
)
from ..dbsm.replica import REMOTE_APPLY_CPU_FACTOR
from ..gcs.stack import GroupCommunication
from ..placement import (
    FragmentMap,
    TransactionRouter,
    fragment_of_site,
    sites_of_fragment,
)
from .base import (
    ProtocolContext,
    ProtocolGroup,
    ReplicationProtocol,
    register_protocol,
)

__all__ = ["PartialReplica"]

#: In-group wire prefixes: commit requests vs cross-group decisions.
_MSG_REQUEST = 0
_MSG_DECIDE = 1
_REQUEST_PREFIX = bytes([_MSG_REQUEST])
_DECIDE_PREFIX = bytes([_MSG_DECIDE])
_DECIDE_BODY = struct.Struct("<QB")  # tx_id, commit flag


class PartialReplica(ReplicationProtocol):
    """One site of the partially replicated database."""

    name = "partial"

    def __init__(
        self,
        site_id: int,
        server: DatabaseServer,
        gcs: GroupCommunication,
        site_runtime: SiteRuntime,
        group: ProtocolGroup,
        config,
        commit_log: Optional[CommitLog] = None,
    ):
        self.site_id = site_id
        self.server = server
        self.gcs = gcs
        self.runtime = site_runtime
        self.group = group
        self.sites = config.sites
        self.fragments = config.fragments
        #: This site's fragment (= its GCS group).
        self.fragment = fragment_of_site(site_id, self.sites, self.fragments)
        self.fragment_map = FragmentMap.for_clients(
            config.clients, self.fragments, config.placement
        )
        self.router = TransactionRouter(self.fragment_map)
        self.link_latency = config.net_link_latency
        self._group_sites: Dict[int, Tuple[int, ...]] = {
            f: sites_of_fragment(f, self.sites, self.fragments)
            for f in range(self.fragments)
        }
        self.certifier = Certifier(charge=site_runtime.rt_charge)
        self.commit_log = commit_log or CommitLog(site=server.name)
        self.crashed = False
        self._watermark = WatermarkTracker()
        self._view_members: Tuple[int, ...] = tuple(gcs.members)
        #: tx_id -> (transaction, outcome signal) awaiting a decision.
        self._pending: Dict[int, Tuple[Transaction, Signal]] = {}
        #: Reservations: tx_id -> (request, vote) for every cross
        #: transaction delivered in this group and not yet decided, in
        #: delivery order.  Vote-yes entries block conflicting commits.
        self._cross: Dict[int, Tuple[CommitRequest, bool]] = {}
        #: Origin side of the agreement: tx_id -> outstanding vote state.
        self._await: Dict[int, Dict[str, object]] = {}
        self.stats = {
            "submitted": 0,
            "single_fragment": 0,
            "cross_fragment": 0,
            "votes_sent": 0,
            "decisions": 0,
            "reserved_aborts": 0,
            "remote_applies": 0,
        }
        server.termination = self
        server.on_applied = self._on_applied
        gcs.on_deliver = self._on_deliver
        gcs.on_view_change = self._on_view_change
        gcs.snapshot_provider = self.state_snapshot
        gcs.snapshot_installer = self.install_snapshot

    # ------------------------------------------------------------------
    # state transfer (recovery/rejoin)
    # ------------------------------------------------------------------
    def reset_protocol_state(self, was_crashed: bool) -> None:
        self._pending.clear()
        self._await.clear()
        # Reservations are re-adopted from the donor's snapshot — they
        # are group-replicated state, not this process's volatile state.
        self._cross.clear()

    def protocol_snapshot(self) -> Dict[str, object]:
        """Certification position plus the open cross-transaction
        reservations — both are functions of the group's delivery
        sequence, so a joiner must adopt them to stay in lock-step."""
        return {
            "certifier": self.certifier.snapshot_state(),
            "cross": [
                [marshal_request(request), vote]
                for request, vote in self._cross.values()
            ],
        }

    def install_protocol_snapshot(self, snap: Dict[str, object]) -> None:
        self.certifier.restore_state(snap["certifier"])
        self._cross = {}
        for payload, vote in snap["cross"]:
            request = unmarshal_request_cached(bytes(payload))
            self._cross[request.tx_id] = (request, bool(vote))
        self._watermark = WatermarkTracker()
        self._watermark.watermark = self.certifier.next_commit_seq

    # ------------------------------------------------------------------
    # TerminationProtocol (called from server transaction processes)
    # ------------------------------------------------------------------
    def submit(self, tx: Transaction) -> Signal:
        """Route the committing transaction to the groups it touches."""
        outcome = Signal(self.server.sim, latch=True)
        if self.crashed or not self.live:
            return outcome
        spec = tx.spec
        request = CommitRequest(
            origin=self.site_id,
            tx_id=tx.tx_id,
            start_seq=tx.start_seq,
            tx_class=spec.tx_class,
            read_set=spec.read_set,
            write_set=spec.write_set,
            write_bytes=spec.write_bytes(),
            commit_cpu=spec.commit_cpu,
            commit_sectors=spec.commit_sectors,
        )
        decision = self.router.route(spec.read_set, spec.write_set, self.fragment)
        self._pending[tx.tx_id] = (tx, outcome)
        payload = _REQUEST_PREFIX + marshal_request(request)
        self.stats["submitted"] += 1
        if decision.fragments == (self.fragment,):
            # Single-fragment fast path: this group's total order alone.
            self.stats["single_fragment"] += 1
            self.runtime.submit_real(
                lambda: self.gcs.multicast(payload),
                tag="marshal",
                nbytes=len(payload),
            )
            return outcome
        # Genuine atomic multicast: exactly the touched groups see it.
        self.stats["cross_fragment"] += 1
        self._await[tx.tx_id] = {
            "needed": frozenset(decision.fragments),
            "votes": {},
        }
        for fragment in decision.fragments:
            if fragment == self.fragment:
                self.runtime.submit_real(
                    lambda: self.gcs.multicast(payload),
                    tag="marshal",
                    nbytes=len(payload),
                )
            else:
                self.server.sim.schedule(
                    self.link_latency, self._inject, fragment, payload
                )
        return outcome

    def applied_watermark(self) -> int:
        return self._watermark.watermark

    # ------------------------------------------------------------------
    # cross-group transport (the inter-group links of the fabric)
    # ------------------------------------------------------------------
    def _inject(self, fragment: int, payload: bytes) -> None:
        """Hand a message to some operational member of ``fragment``'s
        group for multicast through that group's total order.  Like a
        request forwarded to a dead primary, a message whose whole
        target group is down is lost and its clients block."""
        relay = self._first_operational(fragment)
        if relay is None:
            return
        relay.runtime.submit_real(
            lambda: relay.gcs.multicast(payload),
            tag="marshal",
            nbytes=len(payload),
        )

    def _first_operational(self, fragment: int) -> Optional["PartialReplica"]:
        for site_id in self._group_sites[fragment]:
            instance = self.group.instance(site_id)
            if not instance.crashed and instance.live:
                return instance
        return None

    # ------------------------------------------------------------------
    # total-order delivery (runs inside the real receive job)
    # ------------------------------------------------------------------
    def _on_deliver(self, global_seq: int, origin: int, payload: bytes) -> None:
        if self.crashed:
            return
        if payload[0] == _MSG_REQUEST:
            self._on_request(payload[1:])
        else:
            self._on_decide(payload[1:])

    def _on_request(self, body: bytes) -> None:
        request = unmarshal_request_cached(body)
        home = fragment_of_site(request.origin, self.sites, self.fragments)
        decision = self.router.route(request.read_set, request.write_set, home)
        if decision.fragments == (self.fragment,) and home == self.fragment:
            self._certify_local(request)
        else:
            self._vote(request, home)

    def _certify_local(self, request: CommitRequest) -> None:
        """The DBSM path: this group alone decides, at delivery."""
        if self._reservation_conflict(request):
            # A reserved cross transaction holds part of the footprint;
            # committing under it could invalidate a vote already cast.
            self.certifier.stats["certified"] += 1
            self.certifier.stats["aborted"] += 1
            self.stats["reserved_aborts"] += 1
            committed, commit_seq = False, -1
        else:
            committed, commit_seq = self.certifier.certify(request)
        if committed:
            self.log_commit(commit_seq, request.tx_id)
        if request.origin == self.site_id:
            self._resolve_local(request, committed, commit_seq)
        elif committed:
            self._apply_remote(request, commit_seq)

    def _vote(self, request: CommitRequest, home: int) -> None:
        """Deterministic vote + reservation for a cross-group request.

        Every member of the group computes the same vote at the same
        delivery position; only the delegate reports it to the origin.
        """
        vote = not self._reservation_conflict(request)
        if vote and home == self.fragment:
            # The origin executed against this group's data: its
            # start_seq horizon is meaningful here, so run the full
            # certification test too.
            vote = self.certifier.would_commit(request)
        elif home != self.fragment:
            # Read-at-delivery semantics: position in this group's order
            # is the read point, only reservations can conflict.
            self.certifier.stats["certified"] += 1
        self._cross[request.tx_id] = (request, vote)
        if self._is_delegate():
            self._send_vote(request, vote)

    def _on_decide(self, body: bytes) -> None:
        tx_id, commit = _DECIDE_BODY.unpack(body)
        entry = self._cross.pop(tx_id, None)
        if entry is None:
            return
        request, vote = entry
        if commit:
            commit_seq = self.certifier.force_commit(request)
            self.log_commit(commit_seq, request.tx_id)
            if request.origin == self.site_id:
                self._resolve_local(request, True, commit_seq)
            else:
                self._apply_remote(request, commit_seq)
        else:
            if vote:
                # Another touched group vetoed a transaction this group
                # had accepted.
                self.certifier.stats["aborted"] += 1
            if request.origin == self.site_id:
                self._resolve_local(request, False, -1)

    # ------------------------------------------------------------------
    # agreement plumbing (delegate votes, origin decision)
    # ------------------------------------------------------------------
    def _is_delegate(self) -> bool:
        return self._view_members and self.site_id == min(self._view_members)

    def _send_vote(self, request: CommitRequest, vote: bool) -> None:
        self.stats["votes_sent"] += 1
        self.server.sim.schedule(
            self.link_latency,
            self._deliver_vote,
            request.origin,
            request.tx_id,
            self.fragment,
            vote,
        )

    def _deliver_vote(
        self, origin_id: int, tx_id: int, fragment: int, vote: bool
    ) -> None:
        origin = self.group.instance(origin_id)
        if origin.crashed:
            return
        origin._receive_vote(tx_id, fragment, vote)

    def _receive_vote(self, tx_id: int, fragment: int, vote: bool) -> None:
        """Origin side: collect one group's vote; decide when all are in.

        Duplicate votes (a delegate failover re-reporting) are ignored —
        the first vote per group is the group's deterministic answer.
        """
        if self.crashed:
            return
        entry = self._await.get(tx_id)
        if entry is None or fragment in entry["votes"]:
            return
        entry["votes"][fragment] = vote
        if frozenset(entry["votes"]) != entry["needed"]:
            return
        del self._await[tx_id]
        commit = all(entry["votes"].values())
        self.stats["decisions"] += 1
        payload = _DECIDE_PREFIX + _DECIDE_BODY.pack(tx_id, 1 if commit else 0)
        for target in sorted(entry["needed"]):
            if target == self.fragment:
                self.runtime.submit_real(
                    lambda: self.gcs.multicast(payload),
                    tag="marshal",
                    nbytes=len(payload),
                )
            else:
                self.server.sim.schedule(
                    self.link_latency, self._inject, target, payload
                )
        if self.fragment not in entry["needed"]:
            # This site's own group never saw the transaction: resolve
            # the waiting client directly from the decision (its commit
            # is sequenced — and applied — in the touched groups).
            pending = self._pending.pop(tx_id, None)
            if pending is not None:
                _tx, outcome_signal = pending
                self.runtime.rt_schedule(
                    0.0,
                    outcome_signal.fire,
                    Outcome.COMMIT if commit else Outcome.ABORT,
                )

    def _on_view_change(self, view_id: int, members: Tuple[int, ...]) -> None:
        self._view_members = members
        if members and self.site_id == min(members):
            # Newly responsible delegate (or re-confirmed): re-report the
            # votes of every undecided reservation so a vote lost with
            # the previous delegate cannot wedge the agreement.
            for request, vote in list(self._cross.values()):
                self._send_vote(request, vote)

    # ------------------------------------------------------------------
    # conflict checking against open reservations
    # ------------------------------------------------------------------
    def _reservation_conflict(self, request: CommitRequest) -> bool:
        """Does ``request`` overlap a vote-yes reservation's footprint?

        Reserved reads are protected from incoming writes (a commit
        would invalidate the already-cast vote) and reserved writes from
        incoming reads and writes — 2PC-style conservative locking over
        the window between vote and decision.
        """
        conflict = False
        visited = 0
        reads = request.read_set
        writes = request.write_set
        for other, vote in self._cross.values():
            if not vote or other.tx_id == request.tx_id:
                continue
            visited += len(reads) + len(writes)
            visited += len(other.read_set) + len(other.write_set)
            if (
                sets_conflict(reads, other.write_set)
                or sets_conflict(other.read_set, writes)
                or sets_conflict(writes, other.write_set)
            ):
                conflict = True
                break
        if visited:
            self.runtime.rt_charge(visited * PER_ITEM_COST)
        return conflict

    # ------------------------------------------------------------------
    # local resolution & remote apply (the DBSM idiom)
    # ------------------------------------------------------------------
    def _resolve_local(
        self, request: CommitRequest, committed: bool, commit_seq: int
    ) -> None:
        entry = self._pending.pop(request.tx_id, None)
        if entry is None:
            return
        tx, outcome_signal = entry
        if committed:
            tx.global_seq = commit_seq
            value = Outcome.COMMIT
        else:
            value = Outcome.ABORT
        # Fire through the runtime so the wake-up lands after the CPU
        # time consumed so far by this delivery job.
        self.runtime.rt_schedule(0.0, outcome_signal.fire, value)

    def _apply_remote(self, request: CommitRequest, commit_seq: int) -> None:
        spec = request.remote_spec(REMOTE_APPLY_CPU_FACTOR)
        tx = Transaction(spec, self.server.name, remote=True)
        tx.global_seq = commit_seq
        tx.submit_time = self.runtime.rt_now()
        self.stats["remote_applies"] += 1
        self.runtime.rt_schedule(0.0, self.server.apply_remote, tx)

    # ------------------------------------------------------------------
    def _on_applied(self, tx: Transaction, global_seq: int) -> None:
        if global_seq > 0:
            self._watermark.mark(global_seq)

    def protocol_stats(self) -> Dict[str, int]:
        return {**self.certifier.stats, **self.stats}


def _build(ctx: ProtocolContext) -> PartialReplica:
    return PartialReplica(
        ctx.site_id,
        ctx.server,
        ctx.gcs,
        ctx.runtime,
        ctx.group,
        ctx.config,
    )


register_protocol("partial", _build)
