"""Pluggable replication protocols (registry + built-in implementations).

``"dbsm"`` — the paper's certification-based Database State Machine
(:mod:`repro.dbsm.replica` behind the registry); ``"primary-copy"`` —
passive replication on the same group-communication substrate
(:mod:`repro.protocols.primary_copy`).  See :mod:`repro.protocols.base`
for how to add a protocol.
"""

from .base import (
    ProtocolContext,
    ProtocolGroup,
    ReplicationProtocol,
    available_protocols,
    build_protocol,
    get_protocol,
    register_protocol,
)

__all__ = [
    "ProtocolContext",
    "ProtocolGroup",
    "ReplicationProtocol",
    "available_protocols",
    "build_protocol",
    "get_protocol",
    "register_protocol",
]
