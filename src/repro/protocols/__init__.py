"""Pluggable replication protocols (registry + built-in implementations).

``"dbsm"`` — the paper's certification-based Database State Machine
(:mod:`repro.dbsm.replica` behind the registry); ``"primary-copy"`` —
passive replication on the same group-communication substrate
(:mod:`repro.protocols.primary_copy`).  See :mod:`repro.protocols.base`
for how to add a protocol.

**Contract.** A :class:`ReplicationProtocol` instance is one site's
termination protocol plus client-request routing, crash/rejoin
handling (the state-transfer hook), a commit log, and protocol
counters — built from a :class:`ProtocolContext` by the builder
registered under the protocol's name.

**Invariants.**

* *Registry-complete* — every experiment resolves its protocol by name
  here; a registered protocol runs the entire shared grid (performance,
  §5.3 fault matrix, recovery fault-loads) unchanged;
* *Common safety bar* — whatever the replication style, all operational
  sites commit exactly the same transaction sequence, crashed sites a
  prefix, rejoined sites a bit-identical copy;
* *Gate discipline* — between ``begin_rejoin()`` and snapshot install a
  site serves no update traffic (``live`` is False) and its commit log
  counts as non-operational.
"""

from .base import (
    ProtocolContext,
    ProtocolGroup,
    ReplicationProtocol,
    available_protocols,
    build_protocol,
    get_protocol,
    register_protocol,
)

__all__ = [
    "ProtocolContext",
    "ProtocolGroup",
    "ReplicationProtocol",
    "available_protocols",
    "build_protocol",
    "get_protocol",
    "register_protocol",
]
