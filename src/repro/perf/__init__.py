"""Performance trajectory: the harness behind ``BENCH_<n>.json``.

``python -m repro.runner perf`` measures how fast the simulator itself
executes pinned campaigns and records the numbers into schema-versioned
``BENCH_<n>.json`` files at the repo root — one per performance PR, so
the file sequence is the perf trajectory.  See ``benchmarks/perf/`` for
the runnable entry points and README.
"""

from .bench import (
    BENCH_FORMAT,
    FIRST_BENCH_ID,
    BenchFormatError,
    bench_path,
    compute_speedups,
    load_bench,
    next_bench_id,
    validate_bench,
    write_bench,
)
from .harness import (
    PERF_CAMPAIGNS,
    PINNED_SEED,
    PINNED_TRANSACTIONS,
    measure_campaign,
    pinned_spec,
    run_perf,
)

__all__ = [
    "BENCH_FORMAT",
    "FIRST_BENCH_ID",
    "BenchFormatError",
    "bench_path",
    "compute_speedups",
    "load_bench",
    "next_bench_id",
    "validate_bench",
    "write_bench",
    "PERF_CAMPAIGNS",
    "PINNED_SEED",
    "PINNED_TRANSACTIONS",
    "measure_campaign",
    "pinned_spec",
    "run_perf",
]
