"""Schema-versioned ``BENCH_<n>.json`` perf-trajectory artifacts.

Every performance PR records the harness output (see
:mod:`repro.perf.harness`) into ``BENCH_<n>.json`` at the repo root —
``n`` is the PR number, so the sequence of files *is* the perf
trajectory: later PRs show their delta against earlier files without
re-running old code.  The format is versioned (``repro.bench/1``) and
validated on both write and load, so a drifted writer fails loudly
instead of producing files the trend tooling silently misreads.

A bench file carries, per measured campaign: cell count, wall-clock,
cells/sec, simulated-tx/sec, kernel events/sec, peak RSS, and the
wall-clock of every individual cell.  When the harness was given a
baseline file it also embeds the baseline's headline numbers and the
computed speedups.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = [
    "BENCH_FORMAT",
    "FIRST_BENCH_ID",
    "BenchFormatError",
    "bench_path",
    "next_bench_id",
    "validate_bench",
    "write_bench",
    "load_bench",
    "compute_speedups",
]

#: Artifact format tag; bump when the layout changes.
BENCH_FORMAT = "repro.bench/1"

#: The first bench id ever assigned (the PR that introduced the
#: harness); ids track PR numbers, not a dense sequence.
FIRST_BENCH_ID = 7

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")

#: Required numeric fields of one campaign entry.
_CAMPAIGN_FIELDS = (
    "cells",
    "transactions_total",
    "events_total",
    "wall_seconds",
    "cells_per_sec",
    "tx_per_sec",
    "events_per_sec",
    "peak_rss_kb",
)


class BenchFormatError(ValueError):
    """A bench payload does not conform to ``repro.bench/1``."""


def bench_path(root: Union[str, Path], bench_id: int) -> Path:
    return Path(root) / f"BENCH_{bench_id}.json"


def next_bench_id(root: Union[str, Path]) -> int:
    """The next unused bench id under ``root`` (max existing + 1,
    starting at :data:`FIRST_BENCH_ID`)."""
    ids = [
        int(m.group(1))
        for p in Path(root).glob("BENCH_*.json")
        if (m := _BENCH_NAME.match(p.name))
    ]
    return max(ids) + 1 if ids else FIRST_BENCH_ID


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchFormatError(message)


def _check_campaign(name: str, entry: object) -> None:
    _require(isinstance(entry, dict), f"campaign {name!r}: entry must be a dict")
    for field in _CAMPAIGN_FIELDS:
        _require(field in entry, f"campaign {name!r}: missing field {field!r}")
        value = entry[field]
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"campaign {name!r}: field {field!r} must be numeric, got {value!r}",
        )
        _require(value >= 0, f"campaign {name!r}: field {field!r} must be >= 0")
    _require(entry["cells"] >= 1, f"campaign {name!r}: needs at least one cell")
    _require(entry["wall_seconds"] > 0, f"campaign {name!r}: wall_seconds must be > 0")
    walls = entry.get("cell_walls")
    _require(
        isinstance(walls, dict) and walls,
        f"campaign {name!r}: cell_walls must be a non-empty dict",
    )
    _require(
        len(walls) == entry["cells"],
        f"campaign {name!r}: cell_walls has {len(walls)} entries "
        f"for {entry['cells']} cells",
    )
    for label, wall in walls.items():
        _require(
            isinstance(label, str)
            and isinstance(wall, (int, float))
            and not isinstance(wall, bool)
            and wall >= 0,
            f"campaign {name!r}: bad cell wall entry {label!r}: {wall!r}",
        )


def validate_bench(payload: Dict[str, object]) -> Dict[str, object]:
    """Validate a bench payload against ``repro.bench/1``; returns it.

    Raises :class:`BenchFormatError` naming the first offending field.
    """
    _require(isinstance(payload, dict), "bench payload must be a dict")
    _require(
        payload.get("format") == BENCH_FORMAT,
        f"unsupported bench format {payload.get('format')!r} "
        f"(expected {BENCH_FORMAT!r})",
    )
    bench_id = payload.get("bench_id")
    _require(
        isinstance(bench_id, int) and not isinstance(bench_id, bool) and bench_id >= 1,
        f"bench_id must be a positive integer, got {bench_id!r}",
    )
    pinned = payload.get("pinned")
    _require(isinstance(pinned, dict), "pinned must be a dict")
    for field in ("transactions", "seed", "workers"):
        _require(
            isinstance(pinned.get(field), int)
            and not isinstance(pinned.get(field), bool),
            f"pinned.{field} must be an integer",
        )
    _require(pinned["workers"] >= 1, "pinned.workers must be >= 1")
    campaigns = payload.get("campaigns")
    _require(
        isinstance(campaigns, dict) and campaigns,
        "campaigns must be a non-empty dict",
    )
    for name, entry in campaigns.items():
        _check_campaign(name, entry)
    baseline = payload.get("baseline")
    if baseline is not None:
        _require(isinstance(baseline, dict), "baseline must be a dict")
        base_campaigns = baseline.get("campaigns")
        _require(
            isinstance(base_campaigns, dict) and base_campaigns,
            "baseline.campaigns must be a non-empty dict",
        )
    return payload


def write_bench(
    path: Union[str, Path], payload: Dict[str, object], force: bool = False
) -> Path:
    """Validate and write a bench file.

    Refuses to overwrite an existing file unless ``force`` — a
    ``BENCH_<n>.json`` is a historical record; clobbering one silently
    would rewrite the trajectory.
    """
    path = Path(path)
    validate_bench(payload)
    if path.exists() and not force:
        raise FileExistsError(
            f"{path} already exists — bench files are append-only history; "
            "pick the next bench id or pass force/--force to overwrite"
        )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Union[str, Path]) -> Dict[str, object]:
    """Read and validate a bench file."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise BenchFormatError(f"cannot read bench file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchFormatError(f"{path}: not valid JSON ({exc})") from exc
    return validate_bench(payload)


def compute_speedups(
    campaigns: Dict[str, dict], baseline_campaigns: Dict[str, dict]
) -> Dict[str, Dict[str, Optional[float]]]:
    """Per-campaign current/baseline ratios for the headline rates.

    Ratios > 1 mean the current run is faster.  Campaigns absent from
    the baseline are skipped; a zero baseline rate yields ``None``.
    """
    speedups: Dict[str, Dict[str, Optional[float]]] = {}
    for name, entry in campaigns.items():
        base = baseline_campaigns.get(name)
        if base is None:
            continue
        ratios: Dict[str, Optional[float]] = {}
        for field in ("cells_per_sec", "tx_per_sec", "events_per_sec"):
            current = float(entry.get(field, 0.0))
            reference = float(base.get(field, 0.0))
            ratios[field] = (current / reference) if reference > 0 else None
        speedups[name] = ratios
    return speedups
