"""The perf-trajectory harness: measure the simulator, not the system.

Runs pinned campaigns — the registered specs with the ``transactions``
and ``seed`` axes fixed, so the measured work is identical across PRs
regardless of ``REPRO_SCALE`` — and records how fast the *simulator*
chews through them: wall-clock per cell, cells/sec,
simulated-transactions/sec, kernel events/sec, and peak RSS.  The
output is a validated ``repro.bench/1`` payload (see
:mod:`repro.perf.bench`) written as ``BENCH_<n>.json`` at the repo root.

``workers=1`` (the default) runs cells sequentially in-process;
``workers>1`` farms them to a process pool, mirroring the campaign
runner.  Since every :class:`~repro.core.experiment.Scenario` restarts
the transaction-id stream, cell *results* are bit-identical either way
(the determinism tests assert this); only the throughput numbers — and
the recorded ``pinned.workers`` — differ.

Cells always execute (never resume from artifacts — a loaded cell has no
meaningful wall-clock); pass ``artifact_root`` to additionally *save*
the measured results into a normal campaign artifact store, so
``python -m repro.runner report`` works over a perf run's outputs.

Exposed as ``python -m repro.runner perf``.
"""

from __future__ import annotations

import datetime
import os
import platform
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

try:  # POSIX; absent on some platforms — peak RSS then reads 0
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]

from ..campaigns import CampaignSpec, get_campaign
from ..core.experiment import Scenario, ScenarioConfig, ScenarioResult
from ..runner.runner import resolve_workers
from ..runner.store import ArtifactStore
from .bench import (
    BENCH_FORMAT,
    bench_path,
    compute_speedups,
    load_bench,
    next_bench_id,
    validate_bench,
    write_bench,
)

__all__ = [
    "PINNED_TRANSACTIONS",
    "PINNED_SEED",
    "PERF_CAMPAIGNS",
    "pinned_spec",
    "measure_campaign",
    "run_perf",
]

#: Per-cell transaction count of the pinned specs.  Fixed — never the
#: ``REPRO_SCALE``-scaled default — so every PR measures the same work.
PINNED_TRANSACTIONS = 600

#: Seed pinned across PRs for the same reason.
PINNED_SEED = 42

#: Campaigns the harness measures by default: the small ``smoke`` case
#: (fast, CI-friendly) and the full ``fig5`` performance sweep (the
#: number the ROADMAP's ≥3× target is judged against).
PERF_CAMPAIGNS: Tuple[str, ...] = ("smoke", "fig5")

ProgressFn = Callable[[str], None]


def pinned_spec(
    name: str,
    transactions: int = PINNED_TRANSACTIONS,
    seed: int = PINNED_SEED,
) -> CampaignSpec:
    """The registered campaign ``name`` with its work pinned."""
    return (
        get_campaign(name)
        .with_axis("transactions", (transactions,))
        .with_axis("seed", (seed,))
    )


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in KB (0 if unknown)."""
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        peak //= 1024
    return int(peak)


def _measure_cell(
    args: Tuple[str, ScenarioConfig, bool]
) -> Tuple[str, float, int, int, int, Optional[dict]]:
    """Pool-side entry point: run one pinned cell, report its timings.

    The live result holds simulator entities that must not cross the
    process boundary, so it returns as a ``to_dict()`` payload — and
    only when the parent needs it for an artifact store.
    """
    label, config, want_payload = args
    started = time.perf_counter()
    scenario = Scenario(config)
    result = scenario.run()
    wall = time.perf_counter() - started
    return (
        label,
        wall,
        len(result.metrics.records),
        scenario.sim.events_executed,
        _peak_rss_kb(),
        result.to_dict() if want_payload else None,
    )


def measure_campaign(
    name: str,
    transactions: int = PINNED_TRANSACTIONS,
    seed: int = PINNED_SEED,
    store: Optional[ArtifactStore] = None,
    progress: Optional[ProgressFn] = None,
    workers: int = 1,
    journal: bool = False,
) -> Dict[str, object]:
    """Execute the pinned campaign ``name`` and return its bench entry.

    ``workers=1``: every cell runs in-process
    (``Scenario(config).run()``), timed individually; per-cell kernel
    event counts come straight off the scenario's simulator, and
    ``peak_rss_kb`` is the process peak after the campaign — a
    high-water mark, so with multiple campaigns in one process the
    earlier entries lower-bound their own usage.

    ``workers>1``: cells are farmed to a :class:`ProcessPoolExecutor`
    in grid order.  Per-cell walls are measured inside the workers;
    the campaign wall (and hence every ``*_per_sec`` rate) is the
    parent's elapsed time around the pool, so the rates reflect the
    parallel speedup.  ``peak_rss_kb`` is the maximum over the parent
    and every worker — the footprint of the widest single process, not
    the sum.

    ``journal=True`` additionally writes the ``events.jsonl``
    observability journal inside the timed region, exactly as the
    campaign runner does — how the perf guard measures the journal's
    emission cost.  With a ``store`` the journal lands in the artifact
    directory; without one it goes to a scratch directory, so the
    emission cost is measured without conflating it with artifact
    serialization (which the pinned baselines do not include either).
    """
    spec = pinned_spec(name, transactions, seed)
    cells = spec.expand()
    if store is not None:
        store.write_manifest(spec.manifest())
    writer = None
    if journal:
        import tempfile

        from ..dashboard.journal import JournalWriter, journal_path

        root = store.root if store is not None else Path(tempfile.mkdtemp())
        writer = JournalWriter(journal_path(root))
        writer.campaign_started(
            campaign=name,
            total=len(cells),
            workers=workers,
            spec_hash=spec.spec_hash(),
        )
    cell_walls: Dict[str, float] = {}
    total_tx = 0
    total_events = 0
    worker_rss = 0
    campaign_started = time.perf_counter()
    if workers > 1:
        jobs = [(label, config, store is not None) for label, config in cells]
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            outcomes: List[Tuple] = list(pool.map(_measure_cell, jobs))
        configs = dict(cells)
        for done, (label, wall, tx, events, rss, payload) in enumerate(
            outcomes, start=1
        ):
            cell_walls[label] = wall
            total_tx += tx
            total_events += events
            worker_rss = max(worker_rss, rss)
            if store is not None:
                store.save(
                    label,
                    ScenarioResult.from_dict(payload),
                    config=configs[label],
                )
            if writer is not None:
                writer.cell_finished(
                    label, "ok", "worker", wall, done=done, total=len(cells)
                )
            if progress is not None:
                progress(
                    f"perf[{name}] {label}: {wall:.2f}s "
                    f"({tx} tx, {events} events)"
                )
    else:
        for done, (label, config) in enumerate(cells, start=1):
            if writer is not None:
                writer.cell_started(label)
            started = time.perf_counter()
            scenario = Scenario(config)
            result = scenario.run()
            wall = time.perf_counter() - started
            cell_walls[label] = wall
            tx = len(result.metrics.records)
            total_tx += tx
            total_events += scenario.sim.events_executed
            if store is not None:
                store.save(label, result, config=config)
            if writer is not None:
                writer.cell_finished(
                    label,
                    "ok",
                    "in-process",
                    wall,
                    worker=os.getpid(),
                    done=done,
                    total=len(cells),
                )
            if progress is not None:
                progress(
                    f"perf[{name}] {label}: {wall:.2f}s "
                    f"({tx} tx, {scenario.sim.events_executed} events)"
                )
    wall_seconds = time.perf_counter() - campaign_started
    if writer is not None:
        writer.campaign_finished(ok=len(cells), failed=0, elapsed=wall_seconds)
        writer.close()
    return {
        "cells": len(cells),
        "transactions_total": total_tx,
        "events_total": total_events,
        "wall_seconds": wall_seconds,
        "cells_per_sec": len(cells) / wall_seconds,
        "tx_per_sec": total_tx / wall_seconds,
        "events_per_sec": total_events / wall_seconds,
        "peak_rss_kb": max(_peak_rss_kb(), worker_rss),
        "cell_walls": cell_walls,
        "spec_hash": spec.spec_hash(),
    }


def _baseline_section(
    baseline: Union[str, Path, Dict[str, object]]
) -> Dict[str, object]:
    """The embedded summary of a baseline bench payload (or file)."""
    if isinstance(baseline, (str, Path)):
        payload = load_bench(baseline)
        source = str(baseline)
    else:
        payload = validate_bench(baseline)
        source = "inline"
    return {
        "source": source,
        "bench_id": payload["bench_id"],
        "campaigns": {
            name: {
                field: entry[field]
                for field in (
                    "cells",
                    "wall_seconds",
                    "cells_per_sec",
                    "tx_per_sec",
                    "events_per_sec",
                    "peak_rss_kb",
                )
            }
            for name, entry in payload["campaigns"].items()
        },
    }


def run_perf(
    campaigns: Sequence[str] = PERF_CAMPAIGNS,
    transactions: int = PINNED_TRANSACTIONS,
    seed: int = PINNED_SEED,
    bench_id: Optional[int] = None,
    output: Optional[Union[str, Path]] = None,
    baseline: Optional[Union[str, Path, Dict[str, object]]] = None,
    artifact_root: Optional[Union[str, Path]] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
    workers: Optional[int] = None,
    journal: bool = False,
) -> Tuple[Dict[str, object], Optional[Path]]:
    """Measure ``campaigns`` and return ``(payload, written_path)``.

    ``output=None`` writes ``BENCH_<id>.json`` in the current directory
    (``bench_id`` defaulting to the next unused id there); pass
    ``output=""`` to skip writing.  ``baseline`` (a prior bench file or
    payload) embeds its headline numbers and per-campaign speedups.
    ``workers`` follows the campaign runner's resolution (explicit
    argument, else ``REPRO_WORKERS``, else 1) and is recorded in the
    payload's ``pinned`` section — bench files always disclose how
    their rates were obtained.  ``journal=True`` writes the
    observability journal inside the timed region (into the artifact
    store when ``artifact_root`` is given, else a scratch directory)
    and is likewise disclosed as ``pinned.journal``.
    """
    workers = resolve_workers(workers)
    measured: Dict[str, object] = {}
    for name in campaigns:
        store = (
            ArtifactStore(Path(artifact_root) / f"perf-{name}")
            if artifact_root
            else None
        )
        measured[name] = measure_campaign(
            name,
            transactions,
            seed,
            store=store,
            progress=progress,
            workers=workers,
            journal=journal,
        )
    out_dir = Path(output).parent if output else Path.cwd()
    if bench_id is None:
        bench_id = next_bench_id(out_dir)
    payload: Dict[str, object] = {
        "format": BENCH_FORMAT,
        "bench_id": bench_id,
        "created_utc": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "pinned": {
            "transactions": transactions,
            "seed": seed,
            "workers": workers,
            "journal": journal,
        },
        "campaigns": measured,
    }
    if baseline is not None:
        section = _baseline_section(baseline)
        payload["baseline"] = section
        payload["speedup"] = compute_speedups(measured, section["campaigns"])
    validate_bench(payload)
    if output == "":
        return payload, None
    path = Path(output) if output else bench_path(out_dir, bench_id)
    return payload, write_bench(path, payload, force=force)
