"""The stdlib-only dashboard HTTP server.

``python -m repro.runner serve <artifact-dir|campaign>`` starts a
:class:`DashboardServer` (a ``ThreadingHTTPServer``) over one campaign
directory.  The server is read-only and dependency-free: every response
is computed from the journal and the artifact store by
:class:`~repro.dashboard.state.CampaignView`, and the single HTML page
(:mod:`~repro.dashboard.page`) polls the JSON API.

The API (all ``GET``, all ``application/json``) is :data:`ENDPOINTS`;
the docs endpoint table and the docs-consistency tests are generated
from it, so the two cannot drift apart.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Union
from urllib.parse import parse_qs, urlparse

from .page import render_live_html
from .state import CampaignView

__all__ = ["ENDPOINTS", "DashboardServer", "serve_campaign"]

#: The JSON API: path -> one-line description (the source of truth for
#: the docs endpoint tables).
ENDPOINTS: Dict[str, str] = {
    "/api/campaign": "campaign identity, progress counters, ETA and status counts",
    "/api/cells": "every cell with status, source, worker, axes and headline metrics",
    "/api/metrics": "one metric across all cells (``?name=<metric>``), for sparklines",
    "/api/violations": "all invariant violations, tagged with their cell label",
    "/api/events": "raw journal events (``?since=<seq>`` for incremental polls)",
}


class _Handler(BaseHTTPRequestHandler):
    """Routes ``GET`` to the view's payload builders; errors are JSON."""

    server: "DashboardServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        view = self.server.view
        try:
            if parsed.path in ("/", "/index.html"):
                self._send(200, render_live_html(), "text/html; charset=utf-8")
            elif parsed.path == "/api/campaign":
                self._send_json(200, view.campaign_payload())
            elif parsed.path == "/api/cells":
                self._send_json(200, view.cells_payload())
            elif parsed.path == "/api/metrics":
                name = query.get("name", [""])[0]
                if not name:
                    self._send_json(
                        400, {"error": "missing ?name=<metric> parameter"}
                    )
                    return
                try:
                    self._send_json(200, view.metrics_payload(name))
                except KeyError as exc:
                    self._send_json(400, {"error": str(exc.args[0])})
            elif parsed.path == "/api/violations":
                self._send_json(200, view.violations_payload())
            elif parsed.path == "/api/events":
                raw = query.get("since", ["0"])[0]
                try:
                    since = int(raw)
                except ValueError:
                    self._send_json(
                        400, {"error": f"?since must be an integer, got {raw!r}"}
                    )
                    return
                self._send_json(200, view.events_payload(since))
            else:
                self._send_json(
                    404,
                    {
                        "error": f"no such endpoint: {parsed.path}",
                        "endpoints": sorted(ENDPOINTS),
                    },
                )
        except BrokenPipeError:
            pass  # client went away mid-response

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status, json.dumps(payload), "application/json")

    def _send(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: object) -> None:
        pass  # the progress line is the runner's; keep the server quiet


class DashboardServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`CampaignView`."""

    daemon_threads = True

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1", port: int = 8035):
        self.view = CampaignView(root)
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}/"


def serve_campaign(
    root: Union[str, Path], host: str = "127.0.0.1", port: int = 8035
) -> None:
    """Serve ``root`` until interrupted (the ``serve`` subcommand)."""
    server = DashboardServer(root, host=host, port=port)
    print(f"dashboard: watching {root}")
    print(f"dashboard: serving on {server.url}  (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
