"""The campaign event journal: append-only ``events.jsonl``.

The runner (and the perf harness, when asked) appends one JSON line per
campaign event into the artifact directory, so a running campaign can
be observed — by ``python -m repro.runner serve``, by ``tail -f``, by
anything that can read JSON lines — without touching the execution
path.  The journal is *observability output only*: simulation results
are seeded solely by their configs, so a run with the journal disabled
is bit-identical to one with it enabled.

Format (``repro.events/1``): every line is a self-describing object
carrying the schema version ``v``, a monotonically increasing ``seq``,
the wall-clock instant ``wall`` and a ``kind``:

* ``campaign-start`` — campaign name, spec hash, cell/worker counts;
* ``cell-start`` — a cell was handed to an executor (``label``);
* ``cell-finish`` — a cell completed: status, source (``artifact``
  marks a resume cache hit), duration, worker attribution (pid), and
  the runner's progress counters (``done``/``total``/``eta``/
  ``elapsed``) at that instant;
* ``violation`` — one :class:`~repro.monitors.InvariantViolation`
  flushed through from a finished cell, tagged with its cell label;
* ``campaign-end`` — final ok/failed counts and the campaign wall.

The reader side is built for *live* files: :class:`JournalReader`
tracks a byte offset and only ever consumes complete lines, so a
partially written trailing line (the writer mid-append) is simply left
for the next poll.  Complete-but-corrupt lines and lines of an unknown
schema version are skipped and counted, never fatal.  Writers resume
sequence numbering from an existing journal, so a resumed campaign
appends to the same file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_VERSION",
    "JournalReader",
    "JournalWriter",
    "journal_path",
    "read_journal",
]

#: Journal file name inside a campaign artifact directory.
JOURNAL_NAME = "events.jsonl"

#: Schema version stamped on (and required of) every event line.
JOURNAL_VERSION = 1


def journal_path(root: Union[str, Path]) -> Path:
    """The journal file for the campaign artifact directory ``root``."""
    return Path(root) / JOURNAL_NAME


class JournalReader:
    """Incremental, partial-line-tolerant ``events.jsonl`` reader.

    ``poll()`` returns the events appended since the previous poll.
    Only byte ranges ending in a newline are consumed: a trailing line
    still being written stays in the file for the next poll instead of
    being misparsed.  A journal that shrank (truncated/replaced) is
    re-read from the start.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._offset = 0
        #: Highest sequence number seen so far (0 before any event).
        self.last_seq = 0
        #: Complete lines dropped so far: corrupt JSON, non-object
        #: payloads, or an unknown schema version.
        self.skipped = 0

    def poll(self) -> List[Dict[str, object]]:
        """New complete events since the last poll (oldest first)."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, 2)
                size = fh.tell()
                if size < self._offset:  # truncated/rotated: start over
                    self._offset = 0
                fh.seek(self._offset)
                chunk = fh.read()
        except OSError:
            return []
        # Consume only up to the last newline; the tail is a line the
        # writer has not finished yet.
        complete = chunk.rfind(b"\n") + 1
        if complete <= 0:
            return []
        self._offset += complete
        events: List[Dict[str, object]] = []
        for raw in chunk[:complete].split(b"\n"):
            if not raw.strip():
                continue
            try:
                event = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.skipped += 1
                continue
            if (
                not isinstance(event, dict)
                or event.get("v") != JOURNAL_VERSION
                or not isinstance(event.get("seq"), int)
            ):
                self.skipped += 1
                continue
            self.last_seq = max(self.last_seq, event["seq"])
            events.append(event)
        return events


def read_journal(
    path: Union[str, Path], since: int = 0
) -> List[Dict[str, object]]:
    """Every readable event in ``path`` with ``seq > since`` (a missing
    journal is an empty list, not an error)."""
    events = JournalReader(path).poll()
    return [e for e in events if e["seq"] > since]


class JournalWriter:
    """Append-only event writer; one flushed JSON line per event.

    Opening an existing journal resumes its sequence numbering, so a
    resumed campaign extends the same event history.  The writer is a
    context manager; it never buffers across events (each ``emit``
    flushes), so a live reader sees an event as soon as it happened.
    """

    def __init__(
        self,
        path: Union[str, Path],
        clock: Callable[[], float] = time.time,
    ):
        self.path = Path(path)
        self._clock = clock
        self._seq = 0
        if self.path.exists():
            reader = JournalReader(self.path)
            reader.poll()
            self._seq = reader.last_seq
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- plumbing ------------------------------------------------------
    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        """Append one event line and return the event."""
        self._seq += 1
        event: Dict[str, object] = {
            "v": JOURNAL_VERSION,
            "seq": self._seq,
            "wall": round(self._clock(), 6),
            "kind": kind,
        }
        event.update(fields)
        self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()
        return event

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the event vocabulary ------------------------------------------
    def campaign_started(
        self,
        campaign: str,
        total: int,
        workers: int,
        spec_hash: Optional[str] = None,
    ) -> None:
        self.emit(
            "campaign-start",
            campaign=campaign,
            total=total,
            workers=workers,
            spec_hash=spec_hash,
        )

    def cell_started(self, label: str) -> None:
        self.emit("cell-start", label=label)

    def cell_finished(
        self,
        label: str,
        status: str,
        source: str,
        duration: float,
        worker: Optional[int] = None,
        done: Optional[int] = None,
        total: Optional[int] = None,
        eta: Optional[float] = None,
        elapsed: Optional[float] = None,
        violations: int = 0,
    ) -> None:
        self.emit(
            "cell-finish",
            label=label,
            status=status,
            source=source,
            duration=round(duration, 6),
            worker=worker,
            done=done,
            total=total,
            eta=None if eta is None else round(eta, 3),
            elapsed=None if elapsed is None else round(elapsed, 3),
            violations=violations,
        )

    def violation(self, label: str, violation) -> None:
        """Flush one cell's :class:`~repro.monitors.InvariantViolation`
        through to the journal (``violation`` may be the dataclass or
        its ``to_dict`` payload)."""
        payload = (
            violation.tagged(label)
            if hasattr(violation, "tagged")
            else {**dict(violation), "label": label}
        )
        self.emit("violation", label=label, violation=payload)

    def campaign_finished(
        self, ok: int, failed: int, elapsed: float
    ) -> None:
        self.emit(
            "campaign-end", ok=ok, failed=failed, elapsed=round(elapsed, 3)
        )
