"""The dashboard page: one HTML file, two modes.

``render_live_html()`` is what the dashboard server serves at ``/`` —
the page boots with no data and polls the JSON API (``/api/events``
drives the refresh; a change in the journal sequence triggers a full
re-fetch).  ``render_report_html(rs)`` is the ``report --html``
exporter: the same template with the campaign's data embedded as one
JSON literal, producing a self-contained file that opens anywhere with
no server.

Determinism contract: ``render_report_html`` depends only on the
result set — no wall clocks, no randomness, ``sort_keys`` JSON — so
exporting the same artifacts twice yields byte-identical files (CI
diffs the two).

Styling follows the repo-wide chart conventions: colors are CSS custom
properties declared once for light mode and overridden for dark
(both the OS preference and an explicit ``data-theme`` attribute);
status colors never carry meaning alone (every status ships an icon
and a label); the single-series sparklines need no legend — the card
title names the series.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from ..analysis.figures import FIGURES
from ..analysis.metrics import HEADLINE_METRICS
from ..analysis.render import summary_text, table_grid
from ..analysis.resultset import AnalysisError, ResultSet
from .state import DASHBOARD_SCHEMA

__all__ = ["render_live_html", "render_report_html"]


def _json_for_html(payload: object) -> str:
    """JSON safe to inline in a ``<script>`` block (no ``</script>``
    breakout), with deterministic key order."""
    return json.dumps(payload, sort_keys=True).replace("</", "<\\/")


def _nan_to_none(value: object) -> object:
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _report_data(rs: ResultSet) -> Dict[str, object]:
    """The embedded data object for report mode — the same shapes the
    live page assembles from the JSON API, plus the figure tables."""
    cells = []
    violations: List[Dict[str, object]] = []
    for cell in rs.cells:
        cells.append(
            {
                "label": cell.label,
                "status": "ok",
                "source": cell.source,
                "duration": None,
                "worker": None,
                "violations": len(cell.result.violations),
                "metrics": {
                    name: _nan_to_none(cell.value(name))
                    for name in HEADLINE_METRICS
                },
                "axes": dict(cell.axes),
            }
        )
        violations.extend(
            v.tagged(cell.label) for v in cell.result.violations
        )
    figures = []
    for key in sorted(FIGURES):
        fig = FIGURES[key]
        try:
            table = fig.build(rs)
        except (AnalysisError, KeyError, ValueError):
            continue  # this result set lacks the figure's axes
        if not table.rows:
            continue
        headers, rows = table_grid(
            table, fig.fmt, fig.row_header, fig.col_names
        )
        figures.append(
            {
                "key": key,
                "title": fig.title,
                "headers": [str(h) for h in headers],
                "rows": [[str(c) for c in row] for row in rows],
            }
        )
    total = len(rs.cells) + len(rs.missing)
    return {
        "schema": DASHBOARD_SCHEMA,
        "mode": "report",
        "campaign": {
            "campaign": rs.name,
            "spec_hash": rs.spec_hash,
            "total": total,
            "done": len(rs.cells),
            "finished": True,
            "eta": None,
            "elapsed": None,
            "workers": None,
            "counts": {
                "pending": len(rs.missing),
                "running": 0,
                "ok": len(rs.cells),
                "failed": 0,
                "cached": 0,
            },
            "violations": len(violations),
        },
        "cells": {"metrics": list(HEADLINE_METRICS), "cells": cells},
        "violations": {"total": len(violations), "violations": violations},
        "figures": figures,
        "summary": summary_text(rs.cells),
        "missing": list(rs.missing),
    }


def render_report_html(rs: ResultSet) -> str:
    """One self-contained, byte-deterministic HTML report."""
    title = f"repro report — {rs.name}" if rs.name else "repro report"
    return (
        _TEMPLATE.replace("__TITLE__", title)
        .replace("__MODE__", "report")
        .replace("__DATA__", _json_for_html(_report_data(rs)))
    )


def render_live_html() -> str:
    """The live dashboard page (data arrives via the JSON API)."""
    return (
        _TEMPLATE.replace("__TITLE__", "repro campaign dashboard")
        .replace("__MODE__", "live")
        .replace("__DATA__", "null")
    )


_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
:root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --status-good:    #0ca30c;
  --status-warning: #fab219;
  --status-serious: #ec835a;
  --status-critical:#d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --gridline:       #2c2c2a;
  --baseline:       #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--text-secondary); margin: 0 0 18px; font-size: 13px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 14px; }
.tile { min-width: 128px; flex: 1 1 128px; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
.tile .v { font-size: 24px; font-weight: 600; margin-top: 2px; }
.tile .v small { font-size: 13px; font-weight: 400; color: var(--text-muted); }
.bar {
  height: 8px; border-radius: 4px; background: var(--gridline);
  overflow: hidden; margin: 6px 0 4px;
}
.bar > div { height: 100%; border-radius: 4px; background: var(--series-1); width: 0; }
.grid { display: flex; flex-wrap: wrap; gap: 4px; }
.c {
  width: 16px; height: 16px; border-radius: 4px;
  background: var(--gridline); border: 1px solid transparent;
}
.c.running { background: var(--series-1); }
.c.ok { background: var(--status-good); }
.c.cached { background: transparent; border-color: var(--status-good); }
.c.failed { background: var(--status-critical); }
.legend {
  display: flex; flex-wrap: wrap; gap: 14px; margin-top: 10px;
  color: var(--text-secondary); font-size: 12px;
}
.legend span { display: inline-flex; align-items: center; gap: 5px; }
.legend .c { width: 11px; height: 11px; }
.cards { display: grid; grid-template-columns: repeat(auto-fill, minmax(190px, 1fr)); gap: 12px; }
.spark .k { color: var(--text-secondary); font-size: 12px; }
.spark .v { font-size: 18px; font-weight: 600; margin: 2px 0 6px; }
.spark svg { display: block; width: 100%; height: 44px; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td {
  text-align: left; padding: 5px 10px 5px 0;
  border-bottom: 1px solid var(--gridline);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 500; }
td.num, th.num { text-align: right; }
.empty { color: var(--text-secondary); }
.statusword { font-weight: 600; }
.statusword.failed { color: var(--status-critical); }
.statusword.viol { color: var(--status-serious); }
.statusword.good { color: var(--status-good); }
details summary { cursor: pointer; color: var(--text-secondary); margin: 10px 0; }
pre {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px; overflow-x: auto; font-size: 12px;
}
#figures h2 { margin-top: 24px; }
.err { color: var(--status-critical); }
</style>
</head>
<body>
<main>
  <h1 id="title">__TITLE__</h1>
  <p class="sub" id="subtitle"></p>
  <section class="tiles" id="tiles"></section>
  <section class="card">
    <div class="bar"><div id="bar"></div></div>
    <div class="grid" id="cellgrid"></div>
    <div class="legend" id="legend"></div>
    <details>
      <summary>Cells as a table</summary>
      <div id="celltable"></div>
    </details>
  </section>
  <h2>Headline metrics</h2>
  <section class="cards" id="metrics"></section>
  <h2>Invariant violations</h2>
  <section class="card" id="violations"></section>
  <div id="figures"></div>
  <div id="summary"></div>
</main>
<script>
"use strict";
const MODE = "__MODE__";
const EMBEDDED = __DATA__;
const STATUSES = [
  ["pending", "\\u25cb", "pending"],
  ["running", "\\u25b6", "running"],
  ["ok", "\\u2713", "ok"],
  ["cached", "\\u21ba", "cached (resumed)"],
  ["failed", "\\u2717", "failed"],
];

function fmt(v) {
  if (v === null || v === undefined) return "\\u2013";
  if (typeof v !== "number") return String(v);
  if (Number.isInteger(v)) return String(v);
  const a = Math.abs(v);
  if (a >= 100) return v.toFixed(0);
  if (a >= 1) return v.toFixed(1);
  return v.toPrecision(2);
}
function fmtDur(s) {
  if (s === null || s === undefined) return "\\u2013";
  if (s >= 3600) return (s / 3600).toFixed(1) + "h";
  if (s >= 60) return (s / 60).toFixed(1) + "m";
  return s.toFixed(s >= 10 ? 0 : 1) + "s";
}
function el(tag, cls, text) {
  const node = document.createElement(tag);
  if (cls) node.className = cls;
  if (text !== undefined) node.textContent = text;
  return node;
}

function renderTiles(c) {
  const tiles = [
    ["progress", fmt(c.done) + " / " + fmt(c.total)],
    ["ETA", c.finished ? "done" : fmtDur(c.eta)],
    ["elapsed", fmtDur(c.elapsed)],
    ["workers", fmt(c.workers)],
    ["failed", fmt(c.counts.failed)],
    ["violations", fmt(c.violations)],
  ];
  const host = document.getElementById("tiles");
  host.textContent = "";
  for (const [k, v] of tiles) {
    const tile = el("div", "card tile");
    tile.appendChild(el("div", "k", k));
    const val = el("div", "v", v);
    if (k === "failed" && c.counts.failed > 0) val.classList.add("statusword", "failed");
    if (k === "violations" && c.violations > 0) val.classList.add("statusword", "viol");
    tile.appendChild(val);
    host.appendChild(tile);
  }
  const pct = c.total ? (100 * c.done / c.total) : 0;
  document.getElementById("bar").style.width = pct.toFixed(1) + "%";
  const parts = [];
  if (c.campaign) parts.push("campaign " + c.campaign);
  if (c.spec_hash) parts.push("spec " + String(c.spec_hash).slice(0, 12));
  parts.push(MODE === "live" ? "live view" : "static report");
  document.getElementById("subtitle").textContent = parts.join(" \\u00b7 ");
  if (c.campaign) {
    document.getElementById("title").textContent =
      (MODE === "live" ? "repro campaign \\u2014 " : "repro report \\u2014 ") + c.campaign;
  }
}

function renderCells(cells) {
  const grid = document.getElementById("cellgrid");
  grid.textContent = "";
  for (const cell of cells.cells) {
    const d = el("div", "c " + cell.status);
    const bits = [cell.label, cell.status];
    if (cell.duration != null) bits.push(fmtDur(cell.duration));
    if (cell.worker != null) bits.push("pid " + cell.worker);
    if (cell.violations) bits.push(cell.violations + " violation(s)");
    d.title = bits.join(" \\u00b7 ");
    grid.appendChild(d);
  }
  const legend = document.getElementById("legend");
  legend.textContent = "";
  for (const [key, icon, label] of STATUSES) {
    const item = el("span");
    item.appendChild(el("i", "c " + key));
    item.appendChild(el("span", "", icon + " " + label));
    legend.appendChild(item);
  }
  const host = document.getElementById("celltable");
  host.textContent = "";
  const table = el("table");
  const head = el("tr");
  const headers = ["cell", "status", "source", "duration", "worker", "violations"]
    .concat(cells.metrics);
  headers.forEach((h, i) => head.appendChild(el("th", i >= 3 ? "num" : "", h)));
  table.appendChild(head);
  for (const cell of cells.cells) {
    const tr = el("tr");
    tr.appendChild(el("td", "", cell.label));
    tr.appendChild(el("td", "", cell.status));
    tr.appendChild(el("td", "", cell.source || "\\u2013"));
    tr.appendChild(el("td", "num", cell.duration == null ? "\\u2013" : fmtDur(cell.duration)));
    tr.appendChild(el("td", "num", fmt(cell.worker)));
    tr.appendChild(el("td", "num", fmt(cell.violations)));
    for (const name of cells.metrics) {
      tr.appendChild(el("td", "num", fmt(cell.metrics ? cell.metrics[name] : null)));
    }
    table.appendChild(tr);
  }
  host.appendChild(table);
}

function sparkline(points) {
  const values = points.map(p => p.value).filter(v => v != null);
  const svgNS = "http://www.w3.org/2000/svg";
  const svg = document.createElementNS(svgNS, "svg");
  svg.setAttribute("viewBox", "0 0 200 44");
  svg.setAttribute("preserveAspectRatio", "none");
  if (values.length < 2) return svg;
  const min = Math.min(...values), max = Math.max(...values);
  const span = (max - min) || 1;
  const line = document.createElementNS(svgNS, "polyline");
  const coords = [];
  let i = 0;
  const n = points.filter(p => p.value != null).length;
  for (const p of points) {
    if (p.value == null) continue;
    const x = n === 1 ? 100 : (i / (n - 1)) * 196 + 2;
    const y = 40 - ((p.value - min) / span) * 36;
    coords.push(x.toFixed(1) + "," + y.toFixed(1));
    i += 1;
  }
  line.setAttribute("points", coords.join(" "));
  line.setAttribute("fill", "none");
  line.setAttribute("stroke", "var(--series-1)");
  line.setAttribute("stroke-width", "2");
  line.setAttribute("stroke-linejoin", "round");
  line.setAttribute("stroke-linecap", "round");
  svg.appendChild(line);
  return svg;
}

function renderMetrics(metricSeries) {
  const host = document.getElementById("metrics");
  host.textContent = "";
  for (const name of Object.keys(metricSeries)) {
    const points = metricSeries[name];
    const values = points.map(p => p.value).filter(v => v != null);
    const card = el("div", "card spark");
    card.appendChild(el("div", "k", name + " \\u00b7 across cells"));
    card.appendChild(el("div", "v",
      values.length ? fmt(values[values.length - 1]) : "\\u2013"));
    card.appendChild(sparkline(points));
    host.appendChild(card);
  }
}

function renderViolations(v) {
  const host = document.getElementById("violations");
  host.textContent = "";
  if (!v.violations.length) {
    const ok = el("p", "empty");
    ok.appendChild(el("span", "statusword good", "\\u2713 "));
    ok.appendChild(document.createTextNode("No invariant violations recorded."));
    host.appendChild(ok);
    return;
  }
  const table = el("table");
  const head = el("tr");
  for (const h of ["cell", "monitor", "site", "sim time", "seq", "detail"]) {
    head.appendChild(el("th", "", h));
  }
  table.appendChild(head);
  for (const row of v.violations) {
    const tr = el("tr");
    tr.appendChild(el("td", "", row.label ?? "\\u2013"));
    tr.appendChild(el("td", "", row.monitor));
    tr.appendChild(el("td", "", row.site));
    tr.appendChild(el("td", "num", fmt(row.sim_time)));
    tr.appendChild(el("td", "num", row.seq === -1 ? "\\u2013" : fmt(row.seq)));
    tr.appendChild(el("td", "", row.detail));
    table.appendChild(tr);
  }
  host.appendChild(table);
}

function renderFigures(figures) {
  const host = document.getElementById("figures");
  host.textContent = "";
  for (const fig of figures || []) {
    host.appendChild(el("h2", "", fig.title));
    const card = el("section", "card");
    const table = el("table");
    const head = el("tr");
    fig.headers.forEach((h, i) => head.appendChild(el("th", i ? "num" : "", h)));
    table.appendChild(head);
    for (const row of fig.rows) {
      const tr = el("tr");
      row.forEach((c, i) => tr.appendChild(el("td", i ? "num" : "", c)));
      table.appendChild(tr);
    }
    card.appendChild(table);
    host.appendChild(card);
  }
}

function renderSummary(text) {
  const host = document.getElementById("summary");
  host.textContent = "";
  if (!text) return;
  host.appendChild(el("h2", "", "Campaign summary"));
  host.appendChild(el("pre", "", text.replace(/^\\n/, "")));
}

function renderAll(data) {
  renderTiles(data.campaign);
  renderCells(data.cells);
  renderMetrics(data.metricSeries || {});
  renderViolations(data.violations);
  renderFigures(data.figures);
  renderSummary(data.summary);
}

if (MODE === "report") {
  const series = {};
  for (const name of EMBEDDED.cells.metrics) {
    series[name] = EMBEDDED.cells.cells.map(
      c => ({label: c.label, value: c.metrics ? c.metrics[name] : null}));
  }
  EMBEDDED.metricSeries = series;
  renderAll(EMBEDDED);
} else {
  let lastSeq = -1;
  let failures = 0;
  async function getJSON(path) {
    const res = await fetch(path);
    if (!res.ok) throw new Error(path + " -> " + res.status);
    return res.json();
  }
  async function refresh() {
    try {
      const events = await getJSON("/api/events?since=0");
      if (events.last_seq === lastSeq && lastSeq !== -1) return;
      lastSeq = events.last_seq;
      const campaign = await getJSON("/api/campaign");
      const cells = await getJSON("/api/cells");
      const violations = await getJSON("/api/violations");
      const series = {};
      for (const name of cells.metrics) {
        const m = await getJSON("/api/metrics?name=" + encodeURIComponent(name));
        series[name] = m.points;
      }
      failures = 0;
      renderAll({campaign, cells, violations, metricSeries: series,
                 figures: [], summary: null});
    } catch (err) {
      failures += 1;
      if (failures >= 3) {
        document.getElementById("subtitle").textContent =
          "connection lost \\u2014 " + String(err);
        document.getElementById("subtitle").classList.add("err");
      }
    }
  }
  refresh();
  setInterval(refresh, 2000);
}
</script>
</body>
</html>
"""
