"""CampaignView: the incremental model behind the dashboard API.

One view watches one campaign artifact directory and merges two
sources on every ``refresh()``:

* the ``events.jsonl`` journal (when present) — *liveness*: which cells
  are running right now, worker attribution, the runner's own progress
  counters and ETA, cache-hit provenance;
* the artifact store — *results*: headline metric values, axis tags and
  invariant violations, re-read only for files whose ``(mtime, size)``
  changed since the last scan.

Either source alone is enough: a finished campaign with no journal
still serves cells and metrics (every artifact-backed cell reads
``ok``); a campaign whose artifacts are still being written serves live
statuses from the journal while metrics fill in cell by cell.

Every payload carries :data:`DASHBOARD_SCHEMA` so API consumers (and
the CI smoke job) can pin the shape they parse.
"""

from __future__ import annotations

import math
import threading
from pathlib import Path
from typing import Dict, List, Union

from ..analysis.metrics import HEADLINE_METRICS, available_metrics, metric_value
from ..campaigns.spec import CampaignSpec
from ..core.experiment import ScenarioResult
from ..runner.store import ArtifactStore
from .journal import JournalReader, journal_path

__all__ = ["DASHBOARD_SCHEMA", "CampaignView"]

#: Schema tag stamped on every JSON payload the dashboard serves.
DASHBOARD_SCHEMA = "repro.dashboard/1"

#: Cell statuses, in display order: journal liveness first, then
#: terminal states.  ``cached`` is an ``ok`` cell that resumed from an
#: artifact instead of executing.
CELL_STATUSES = ("pending", "running", "ok", "failed", "cached")


def _sanitize(value: object) -> object:
    """NaN is unrepresentable in JSON — serve ``null``, never a fake 0."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


class CampaignView:
    """Incremental, thread-safe view over one campaign directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._store = ArtifactStore(self.root)
        self._reader = JournalReader(journal_path(self.root))
        self._lock = threading.Lock()
        #: Every journal event seen so far, in sequence order.
        self._events: List[Dict[str, object]] = []
        #: label -> mutable cell record (see ``_cell``).
        self._cells: Dict[str, Dict[str, object]] = {}
        #: Display order: spec-expansion order, then first-seen extras.
        self._order: List[str] = []
        #: artifact path -> (mtime_ns, size) of the last read.
        self._scanned: Dict[Path, tuple] = {}
        self._campaign: Dict[str, object] = {}
        self._finished = False
        self._progress: Dict[str, object] = {}
        self._manifest_loaded = False

    # ------------------------------------------------------------------
    def _cell(self, label: str) -> Dict[str, object]:
        if label not in self._cells:
            self._cells[label] = {
                "label": label,
                "status": "pending",
                "source": None,
                "duration": None,
                "worker": None,
                "violations": 0,
                "metrics": None,
                "axes": {},
            }
            self._order.append(label)
        return self._cells[label]

    def _load_manifest(self) -> None:
        """Seed campaign identity and the expected cell list from the
        store manifest (retried until one appears — ``serve`` may start
        before ``run`` writes it)."""
        if self._manifest_loaded:
            return
        manifest = self._store.load_manifest()
        if manifest is None:
            return
        self._manifest_loaded = True
        self._campaign.setdefault("campaign", manifest.get("campaign", ""))
        self._campaign.setdefault("spec_hash", manifest.get("spec_hash"))
        try:
            spec = CampaignSpec.from_dict(manifest["spec"])
            for label, _config, _axes in spec.expand_cells():
                self._cell(label)
        except (KeyError, TypeError, ValueError):
            pass  # manifest without a usable spec: cells appear as seen

    def _apply_event(self, event: Dict[str, object]) -> None:
        kind = event.get("kind")
        if kind == "campaign-start":
            self._campaign = {
                "campaign": event.get("campaign", ""),
                "spec_hash": event.get("spec_hash"),
                "total": event.get("total"),
                "workers": event.get("workers"),
            }
            self._finished = False
        elif kind == "cell-start":
            cell = self._cell(str(event.get("label", "")))
            if cell["status"] == "pending":
                cell["status"] = "running"
        elif kind == "cell-finish":
            cell = self._cell(str(event.get("label", "")))
            if event.get("status") == "ok":
                cached = event.get("source") == "artifact"
                cell["status"] = "cached" if cached else "ok"
            else:
                cell["status"] = "failed"
            cell["source"] = event.get("source")
            cell["duration"] = event.get("duration")
            cell["worker"] = event.get("worker")
            cell["violations"] = event.get("violations", 0)
            self._progress = {
                "done": event.get("done"),
                "total": event.get("total"),
                "eta": event.get("eta"),
                "elapsed": event.get("elapsed"),
            }
        elif kind == "campaign-end":
            self._finished = True
            self._progress["eta"] = 0.0
            self._progress["elapsed"] = event.get("elapsed")

    def _scan_artifacts(self) -> None:
        """Absorb new/changed cell artifacts: metrics, axes, violations."""
        for path, mtime_ns, size in self._store.list_cells():
            if self._scanned.get(path) == (mtime_ns, size):
                continue
            payload = ArtifactStore.read_payload(path)
            if payload is None:
                continue  # mid-write or stray file: retry next refresh
            self._scanned[path] = (mtime_ns, size)
            label = str(payload.get("label", path.stem))
            try:
                result = ScenarioResult.from_dict(payload["result"])
            except (KeyError, TypeError, ValueError):
                continue
            cell = self._cell(label)
            if cell["status"] in ("pending", "running"):
                cell["status"] = "ok"  # no journal: artifact is terminal
            cell["metrics"] = {
                name: _sanitize(metric_value(result, name))
                for name in HEADLINE_METRICS
            }
            cell["axes"] = {
                name: getattr(result.config, name)
                for name in ("protocol", "sites", "clients", "transactions", "seed")
            }
            cell["violations"] = len(result.violations)
            cell["_violations"] = [
                v.tagged(label) for v in result.violations
            ]

    def refresh(self) -> None:
        """Bring the view up to date (cheap when nothing changed)."""
        with self._lock:
            self._load_manifest()
            for event in self._reader.poll():
                self._events.append(event)
                self._apply_event(event)
            self._scan_artifacts()

    # ------------------------------------------------------------------
    # payloads (each refreshes first; all are JSON-ready dicts)
    # ------------------------------------------------------------------
    def campaign_payload(self) -> Dict[str, object]:
        self.refresh()
        with self._lock:
            counts = {status: 0 for status in CELL_STATUSES}
            violations = 0
            for label in self._order:
                cell = self._cells[label]
                counts[str(cell["status"])] += 1
                violations += int(cell["violations"] or 0)
            total = self._campaign.get("total") or len(self._order)
            done = sum(counts[s] for s in ("ok", "failed", "cached"))
            return {
                "schema": DASHBOARD_SCHEMA,
                "campaign": self._campaign.get("campaign", ""),
                "spec_hash": self._campaign.get("spec_hash"),
                "root": str(self.root),
                "total": total,
                "workers": self._campaign.get("workers"),
                "counts": counts,
                "done": done,
                "finished": self._finished or (total > 0 and done >= total),
                "eta": self._progress.get("eta"),
                "elapsed": self._progress.get("elapsed"),
                "violations": violations,
                "journal": {
                    "events": len(self._events),
                    "skipped": self._reader.skipped,
                    "last_seq": self._reader.last_seq,
                },
            }

    def cells_payload(self) -> Dict[str, object]:
        self.refresh()
        with self._lock:
            return {
                "schema": DASHBOARD_SCHEMA,
                "metrics": list(HEADLINE_METRICS),
                "cells": [
                    {
                        key: value
                        for key, value in self._cells[label].items()
                        if not key.startswith("_")
                    }
                    for label in self._order
                ],
            }

    def metrics_payload(self, name: str) -> Dict[str, object]:
        if name not in available_metrics():
            raise KeyError(
                f"unknown metric {name!r} "
                f"(available: {', '.join(available_metrics())})"
            )
        self.refresh()
        with self._lock:
            if name in HEADLINE_METRICS:
                values = {
                    label: (self._cells[label]["metrics"] or {}).get(name)
                    for label in self._order
                }
            else:
                # non-headline metrics are not cached on the cell
                # records; answer them with an on-demand artifact read
                values = self._metric_values(name)
            points = [
                {"label": label, "value": values.get(label)}
                for label in self._order
            ]
            return {
                "schema": DASHBOARD_SCHEMA,
                "metric": name,
                "points": points,
            }

    def _metric_values(self, name: str) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for path, _mtime, _size in self._store.list_cells():
            payload = ArtifactStore.read_payload(path)
            if payload is None:
                continue
            try:
                result = ScenarioResult.from_dict(payload["result"])
            except (KeyError, TypeError, ValueError):
                continue
            label = str(payload.get("label", path.stem))
            out[label] = _sanitize(metric_value(result, name))
        return out

    def violations_payload(self) -> Dict[str, object]:
        self.refresh()
        with self._lock:
            violations: List[Dict[str, object]] = []
            for label in self._order:
                violations.extend(self._cells[label].get("_violations", []))
            return {
                "schema": DASHBOARD_SCHEMA,
                "total": len(violations),
                "violations": violations,
            }

    def events_payload(self, since: int = 0) -> Dict[str, object]:
        self.refresh()
        with self._lock:
            return {
                "schema": DASHBOARD_SCHEMA,
                "since": since,
                "last_seq": self._reader.last_seq,
                "skipped": self._reader.skipped,
                "events": [
                    e for e in self._events if int(e.get("seq", 0)) > since
                ],
            }
