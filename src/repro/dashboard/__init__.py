"""Live campaign observability: journal, dashboard server, HTML report.

The paper's campaigns (Figures 5-7, Tables 1-2) run for minutes to
hours; this package makes them observable while they run and shareable
when they finish, without touching the simulation's execution path:

* :mod:`~repro.dashboard.journal` — the append-only ``events.jsonl``
  event journal the runner writes into the artifact directory, plus an
  incremental reader tolerant of a partially written trailing line;
* :mod:`~repro.dashboard.state` — :class:`CampaignView`, the
  incremental model a dashboard serves: journal events merged with
  artifact-store scans into per-cell statuses, headline metrics and
  violation feeds, each exposed as a versioned JSON payload;
* :mod:`~repro.dashboard.server` — the stdlib-only
  (``http.server``) dashboard behind ``python -m repro.runner serve``,
  serving the JSON API (:data:`~repro.dashboard.server.ENDPOINTS`) and
  the live HTML page;
* :mod:`~repro.dashboard.page` — the single-file HTML renderer shared
  by the live dashboard and the byte-deterministic ``report --html``
  exporter.

Everything here is stdlib-only and read-only with respect to results:
a campaign run with the journal disabled is bit-identical to one with
it enabled.
"""

from .journal import (
    JOURNAL_NAME,
    JOURNAL_VERSION,
    JournalReader,
    JournalWriter,
    journal_path,
    read_journal,
)
from .state import DASHBOARD_SCHEMA, CampaignView

__all__ = [
    "DASHBOARD_SCHEMA",
    "JOURNAL_NAME",
    "JOURNAL_VERSION",
    "CampaignView",
    "JournalReader",
    "JournalWriter",
    "journal_path",
    "read_journal",
]
