"""TPC-C traffic generation: schema, profiles, workload, clients.

The industry-standard TPC-C benchmark provides the realistic OLTP load
the paper drives its prototypes with (§3.2); only the workload matters —
throughput/screen constraints of the benchmark do not apply.
"""

from .calibration import calibrated_profiles, fit_profiles, generate_profiling_corpus
from .client import Client, ClientPool
from .profiles import (
    CLASSES,
    EmpiricalDistribution,
    LogNormalProfile,
    ProfileSet,
    default_profiles,
)
from .schema import TpccLayout, warehouses_for_clients
from .workload import MIX, TpccWorkload

__all__ = [
    "calibrated_profiles",
    "fit_profiles",
    "generate_profiling_corpus",
    "Client",
    "ClientPool",
    "CLASSES",
    "EmpiricalDistribution",
    "LogNormalProfile",
    "ProfileSet",
    "default_profiles",
    "TpccLayout",
    "warehouses_for_clients",
    "MIX",
    "TpccWorkload",
]
