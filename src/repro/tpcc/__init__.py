"""TPC-C traffic generation: schema, profiles, workload, clients.

The industry-standard TPC-C benchmark provides the realistic OLTP load
the paper drives its prototypes with (§3.2); only the workload matters —
throughput/screen constraints of the benchmark do not apply.

**Contract.** Closed-loop terminals: each client issues one
transaction, blocks until the reply, thinks, repeats — producing the
paper's five-class mix with profiled per-class CPU/storage costs and
read/write sets over the TPC-C schema.

**Invariants.**

* *Per-client determinism* — a client's request stream is a pure
  function of its id and the workload seed, independent of protocol,
  fault plan, or a mid-run restart of the client pool;
* *Load-mix stability* — class frequencies follow the TPC-C mix
  regardless of how requests are routed or how many sites exist;
* *Closed loop* — a client never has more than one transaction in
  flight (so blocked clients of a dead site throttle only themselves).
"""

from .calibration import calibrated_profiles, fit_profiles, generate_profiling_corpus
from .client import Client, ClientPool
from .profiles import (
    CLASSES,
    EmpiricalDistribution,
    LogNormalProfile,
    ProfileSet,
    default_profiles,
)
from .schema import TpccLayout, warehouses_for_clients
from .workload import MIX, TpccWorkload

__all__ = [
    "calibrated_profiles",
    "fit_profiles",
    "generate_profiling_corpus",
    "Client",
    "ClientPool",
    "CLASSES",
    "EmpiricalDistribution",
    "LogNormalProfile",
    "ProfileSet",
    "default_profiles",
    "TpccLayout",
    "warehouses_for_clients",
    "MIX",
    "TpccWorkload",
]
