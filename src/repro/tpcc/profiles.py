"""Per-class CPU-time profiles — the stand-in for profiling PostgreSQL.

The paper obtains, by instrumenting PostgreSQL with virtualized cycle
counters under a TPC-C run (§4.1), an **empirical distribution of CPU
time per transaction class**, with two published anchor facts: commit
processing costs roughly the same for every class (< 2 ms), and classes
with conditional code paths (payment, orderstatus) are bimodal and get
split into separate long/short classes.

We cannot profile a 2001-era PostgreSQL on a Pentium III, so this module
provides (a) parametric log-normal profiles whose means are chosen to
reproduce the paper's saturation points (a single 1 GHz CPU saturates
near 500 clients; see DESIGN.md §3), and (b) an
:class:`EmpiricalDistribution` that can be fitted to any sample — the
calibration module generates a synthetic profiling corpus and fits these,
mirroring the paper's procedure end to end.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "CLASSES",
    "UPDATE_CLASSES",
    "READONLY_CLASSES",
    "ClassProfile",
    "EmpiricalDistribution",
    "LogNormalProfile",
    "ProfileSet",
    "default_profiles",
]

#: The seven transaction classes of the paper's tables (bimodal classes
#: split into long/short, §4.1).
CLASSES = (
    "neworder",
    "payment-long",
    "payment-short",
    "orderstatus-long",
    "orderstatus-short",
    "delivery",
    "stocklevel",
)

UPDATE_CLASSES = ("neworder", "payment-long", "payment-short", "delivery")
READONLY_CLASSES = ("orderstatus-short", "stocklevel")
# NOTE: orderstatus-long is modeled with a SELECT FOR UPDATE on the
# customer row (see workload.py), so it participates in certification.


class ClassProfile:
    """A sampling distribution of per-transaction CPU seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


class LogNormalProfile(ClassProfile):
    """Log-normal CPU time: right-skewed like real query timings."""

    def __init__(self, mean: float, sigma: float = 0.25):
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = mean
        self.sigma = sigma
        #: mu chosen so that exp(mu + sigma^2/2) == mean.
        self.mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogNormalProfile(mean={self._mean:.6f}, sigma={self.sigma})"


class EmpiricalDistribution(ClassProfile):
    """Inverse-CDF sampling from observed values (the paper's §4.1 fit)."""

    def __init__(self, samples: Sequence[float]):
        if not samples:
            raise ValueError("need at least one sample")
        if any(s < 0 for s in samples):
            raise ValueError("samples must be non-negative")
        self._sorted = sorted(samples)
        self._mean = sum(self._sorted) / len(self._sorted)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        n = len(self._sorted)
        pos = u * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return self._sorted[lo] * (1 - frac) + self._sorted[hi] * frac

    def mean(self) -> float:
        return self._mean

    def cdf(self, x: float) -> float:
        return bisect.bisect_right(self._sorted, x) / len(self._sorted)

    def __len__(self) -> int:
        return len(self._sorted)

    def __repr__(self) -> str:
        # value-based (no object address): equal samples, equal repr —
        # profile fingerprints in config serialization depend on this
        digest = hashlib.sha1(
            ",".join(repr(s) for s in self._sorted).encode()
        ).hexdigest()[:12]
        return (
            f"EmpiricalDistribution(n={len(self._sorted)}, "
            f"mean={self._mean:.6g}, sha1={digest})"
        )


@dataclass
class ProfileSet:
    """Everything the workload generator needs about timing and I/O.

    ``cpu`` maps class name → CPU-time distribution for the execution
    stage.  ``commit_cpu`` is the near-constant commit cost;
    ``commit_sectors`` maps class → storage sectors (pages) flushed at
    commit, which together with the 9.486 MB/s device reproduces the
    disk-bandwidth ceiling of Figure 6(b).
    """

    cpu: Dict[str, ClassProfile]
    commit_cpu: float = 1.8e-3
    commit_sectors: Optional[Dict[str, int]] = None
    #: Mean client think time between transactions, seconds (§3.2).
    think_time_mean: float = 12.0

    def __post_init__(self) -> None:
        missing = [cls for cls in CLASSES if cls not in self.cpu]
        if missing:
            raise ValueError(f"profiles missing for classes: {missing}")
        if self.commit_sectors is None:
            self.commit_sectors = dict(DEFAULT_COMMIT_SECTORS)

    def sample_cpu(self, tx_class: str, rng: random.Random) -> float:
        return self.cpu[tx_class].sample(rng)

    def sectors(self, tx_class: str) -> int:
        assert self.commit_sectors is not None
        return self.commit_sectors.get(tx_class, 0)


#: CPU means (seconds) reproducing the paper's saturation points on the
#: reference 1 GHz CPU: ~22 ms weighted mean per transaction, so one CPU
#: saturates around 45 tx/s ~ 500 clients at 12 s think time (§5.1).
DEFAULT_CPU_MEANS = {
    "neworder": 22e-3,
    "payment-long": 8e-3,
    "payment-short": 5e-3,
    "orderstatus-long": 7e-3,
    "orderstatus-short": 4e-3,
    "delivery": 140e-3,
    "stocklevel": 45e-3,
}

#: Pages flushed at commit (4 KB sectors): stock rows are random access
#: (one page each); order lines cluster; read-only classes flush nothing.
DEFAULT_COMMIT_SECTORS = {
    "neworder": 24,
    "payment-long": 5,
    "payment-short": 5,
    "orderstatus-long": 0,
    "orderstatus-short": 0,
    "delivery": 34,
    "stocklevel": 0,
}


def default_profiles(
    cpu_means: Optional[Dict[str, float]] = None,
    sigma: float = 0.25,
    think_time_mean: float = 12.0,
) -> ProfileSet:
    """The calibrated profile set used by all paper experiments."""
    means = dict(DEFAULT_CPU_MEANS)
    if cpu_means:
        means.update(cpu_means)
    return ProfileSet(
        cpu={cls: LogNormalProfile(means[cls], sigma) for cls in CLASSES},
        think_time_mean=think_time_mean,
    )
