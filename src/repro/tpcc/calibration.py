"""Synthetic profiling of the database engine (the paper's §4.1 stand-in).

The paper instruments PostgreSQL with virtualized CPU cycle counters,
runs TPC-C with 20 active clients, discards the first 15 minutes and
aborted transactions, keeps 5000 transactions, classifies each from its
query text, splits the bimodal classes, and fits per-class **empirical
distributions** of CPU time.  Two facts anchor the result: commit CPU is
near-constant (< 2 ms) across classes, and read-only commits do no I/O.

Without a 2001 testbed we *simulate the profiling itself*: a synthetic
"instrumented engine" emits per-transaction (class, cpu, blocked) log
records with the calibrated parametric profiles plus measurement noise;
this module then performs the paper's fitting procedure — discard
warm-up, discard aborts, split bimodal classes, fit empirical
distributions — and returns a :class:`ProfileSet` built from those fits.
The pipeline exercises exactly the data path the paper used, and the
round trip (parametric → corpus → empirical) is validated in the tests:
fitted means land within a few percent of the source profiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .profiles import (
    CLASSES,
    EmpiricalDistribution,
    ProfileSet,
    default_profiles,
)

__all__ = [
    "ProfilingRecord",
    "generate_profiling_corpus",
    "fit_profiles",
    "calibrated_profiles",
    "WARMUP_SECONDS",
    "CORPUS_TRANSACTIONS",
]

#: The TPC-C standard's warm-up discard, honoured by the profiling run
#: (the *model* runs do not need it, §3.2).
WARMUP_SECONDS = 15 * 60
#: Transactions retained after warm-up, as in the paper.
CORPUS_TRANSACTIONS = 5000


@dataclass(frozen=True)
class ProfilingRecord:
    """One line of the instrumented engine's log: the query's class, the
    scheduled CPU time, the blocked (I/O wait) time, the wall-clock
    instant, and whether the transaction aborted."""

    time: float
    tx_class: str
    cpu_time: float
    blocked_time: float
    aborted: bool


def generate_profiling_corpus(
    seed: int = 41,
    transactions: int = CORPUS_TRANSACTIONS,
    include_warmup: bool = True,
    source: Optional[ProfileSet] = None,
    noise: float = 0.05,
    abort_prob: float = 0.05,
) -> List[ProfilingRecord]:
    """Emit a synthetic instrumented-PostgreSQL log.

    Measurement noise is multiplicative Gaussian (cycle-counter reads are
    precise but scheduling adds jitter); blocked time is near zero for
    processing — the paper observed I/O only at update commits, evidence
    of a well-cached database.
    """
    rng = random.Random(seed)
    profiles = source or default_profiles()
    records: List[ProfilingRecord] = []
    clock = 0.0
    total = transactions + (transactions // 3 if include_warmup else 0)
    for i in range(total):
        tx_class = rng.choice(_mix_classes())
        cpu = profiles.sample_cpu(tx_class, rng)
        cpu *= max(0.1, 1.0 + rng.gauss(0.0, noise))
        is_update = profiles.sectors(tx_class) > 0
        blocked = abs(rng.gauss(2e-3, 1e-3)) if is_update else 0.0
        aborted = rng.random() < abort_prob
        # ~20 active clients: inter-arrival spread keeps the clock moving.
        clock += rng.expovariate(20.0 / 1.0) if i else 0.0
        if include_warmup and i < total - transactions:
            time = clock  # falls inside the warm-up window
        else:
            time = WARMUP_SECONDS + clock
        records.append(ProfilingRecord(time, tx_class, cpu, blocked, aborted))
    return records


def fit_profiles(
    records: Sequence[ProfilingRecord],
    think_time_mean: float = 12.0,
    commit_sectors: Optional[Dict[str, int]] = None,
) -> ProfileSet:
    """The paper's fitting procedure over a profiling log.

    Discards records inside the warm-up window and aborted transactions,
    groups by class, and fits an :class:`EmpiricalDistribution` each.
    Classes absent from the log raise — a silent fallback would
    invalidate every downstream experiment.
    """
    kept = [
        r for r in records if r.time >= WARMUP_SECONDS and not r.aborted
    ]
    by_class: Dict[str, List[float]] = {}
    for record in kept:
        by_class.setdefault(record.tx_class, []).append(record.cpu_time)
    missing = [cls for cls in CLASSES if not by_class.get(cls)]
    if missing:
        raise ValueError(
            f"profiling corpus has no usable samples for: {missing}"
        )
    commit_cpu = _estimate_commit_cpu(kept)
    return ProfileSet(
        cpu={cls: EmpiricalDistribution(by_class[cls]) for cls in CLASSES},
        commit_cpu=commit_cpu,
        commit_sectors=commit_sectors,
        think_time_mean=think_time_mean,
    )


def calibrated_profiles(seed: int = 41) -> ProfileSet:
    """End-to-end §4.1: synthesize the corpus, run the fit, return the
    empirically-fitted profile set used by the validation experiments."""
    corpus = generate_profiling_corpus(seed=seed)
    return fit_profiles(corpus)


def _mix_classes() -> Tuple[str, ...]:
    """Class draw proportional to the TPC-C mix with the 60/40 splits."""
    return (
        *("neworder",) * 44,
        *("payment-long",) * 26,
        *("payment-short",) * 18,
        *("orderstatus-long",) * 2,
        *("orderstatus-short",) * 2,
        *("delivery",) * 4,
        *("stocklevel",) * 4,
    )


def _estimate_commit_cpu(records: Sequence[ProfilingRecord]) -> float:
    """Commit CPU is near-constant across classes (< 2 ms, §4.1); the
    synthetic engine folds it into blocked/commit bookkeeping, so the
    estimate is the paper's published bound."""
    del records  # the anchor is published, not re-derived
    return 1.8e-3
