"""The database client model (paper §3.2).

A client is attached to one database server and produces a stream of
transaction requests.  After issuing a request the client blocks until
the server replies — a single-threaded client process — then pauses for
a think time before the next request.  Clients log submission time,
termination time, outcome and identifier per transaction; the collector
in :mod:`repro.core.metrics` derives latency, throughput and abort rate
for any subset of users or transaction classes.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.kernel import Entity, Signal, Simulator
from ..db.server import DatabaseServer
from ..db.transactions import Transaction, TransactionSpec
from .workload import TpccWorkload

__all__ = ["Client", "ClientPool"]

#: How a client hands a request to the system: ``submit(spec, on_done)``.
#: Defaults to the attached server; replication protocols that route
#: requests (primary-copy) install their own.
SubmitFn = Callable[[TransactionSpec, Callable[[Transaction], None]], None]


class Client(Entity):
    """One emulated terminal in a closed loop with its server."""

    def __init__(
        self,
        sim: Simulator,
        client_id: int,
        server: DatabaseServer,
        workload: TpccWorkload,
        max_transactions: Optional[int] = None,
        think_first: bool = True,
        submit: Optional[SubmitFn] = None,
    ):
        super().__init__(sim, f"client{client_id}")
        self.client_id = client_id
        self.server = server
        self.workload = workload
        self.max_transactions = max_transactions
        self.think_first = think_first
        self._submit: SubmitFn = submit or (
            lambda spec, on_done: server.submit(spec, on_done=on_done)
        )
        self.issued = 0
        self.completed = 0
        self._stopped = False
        self.process = sim.process(self._loop(), name=self.name)

    def stop(self) -> None:
        """Stop issuing after the in-flight transaction (if any)."""
        self._stopped = True

    def _loop(self):
        if self.think_first:
            # Staggered start: clients begin at a random think offset so
            # the ramp-up does not arrive as a thundering herd.
            yield self.workload.think_time()
        while not self._stopped:
            if (
                self.max_transactions is not None
                and self.issued >= self.max_transactions
            ):
                return
            spec = self.workload.next_transaction(self.client_id)
            done = Signal(self.sim, latch=True)
            self.issued += 1
            self._submit(spec, lambda tx: done.fire(tx))
            yield done
            self.completed += 1
            yield self.workload.think_time()


class ClientPool:
    """Spawns and tracks a population of clients on one server."""

    def __init__(
        self,
        sim: Simulator,
        server: DatabaseServer,
        workload: TpccWorkload,
        count: int,
        first_id: int = 0,
        max_transactions_per_client: Optional[int] = None,
        submit: Optional[SubmitFn] = None,
    ):
        self._sim = sim
        self._server = server
        self._workload = workload
        self._first_id = first_id
        self._max_per_client = max_transactions_per_client
        self._submit = submit
        #: Stopped generations from before a restart: a retired client
        #: blocked on an in-flight request may still complete it later
        #: (e.g. a parked primary-copy update re-routed after a heal),
        #: so its counters keep contributing to the pool totals live.
        self._retired: list = []
        self.clients = [
            Client(
                sim,
                first_id + i,
                server,
                workload,
                max_transactions=max_transactions_per_client,
                submit=submit,
            )
            for i in range(count)
        ]

    def stop_all(self) -> None:
        for client in self.clients:
            client.stop()

    def restart(self) -> None:
        """Respawn the population after its site recovered.

        The previous generation's clients are stopped and retired (one
        still blocked on an in-flight request may complete it later —
        it issues nothing new afterwards) and fresh processes take over
        their terminal ids — the workload streams they draw from are
        keyed by client id, so a restart does not change the load mix.
        """
        count = len(self.clients)
        self.stop_all()
        self._retired.extend(self.clients)
        self.clients = [
            Client(
                self._sim,
                self._first_id + i,
                self._server,
                self._workload,
                max_transactions=self._max_per_client,
                submit=self._submit,
            )
            for i in range(count)
        ]

    def total_issued(self) -> int:
        return sum(c.issued for c in self.clients) + sum(
            c.issued for c in self._retired
        )

    def total_completed(self) -> int:
        return sum(c.completed for c in self.clients) + sum(
            c.completed for c in self._retired
        )
