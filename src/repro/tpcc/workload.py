"""TPC-C transaction generators (paper §3.2).

Produces :class:`~repro.db.transactions.TransactionSpec` instances for
the five TPC-C transaction types, with the bimodal classes (payment,
orderstatus) split into long/short sub-classes exactly as the paper does
for its Table 1/2 breakdowns.  Only the *workload* matters here — the
benchmark's throughput constraints, screen loads and 15-minute warm-up
discard do not apply (§3.2).

Conflict structure (calibrated against the paper's Tables 1 and 2):

* **payment** updates its home warehouse's YTD row — the small, hot
  Warehouse table the paper identifies as the conflict source;
* **delivery** reads and rewrites the new-order queue heads of all ten
  districts of its warehouse, so concurrent deliveries on one warehouse
  conflict, with a rate that grows with residence time (hence with
  saturation, replication, and injected faults);
* **neworder** carries TPC-C's mandated 1 % end-of-execution rollback
  and only rarely conflicts (random stock rows, striped insert ids);
* **payment-long** and **orderstatus-long** carry a constant intrinsic
  abort probability: in the paper those classes show an offset over
  their short variants that is strikingly constant (≈ +6 points) across
  every configuration and fault load, which identifies it as a code-path
  artifact rather than contention — we reproduce it as such and document
  the substitution in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from ..db.transactions import Operation, OpKind, TransactionSpec
from ..db.tuples import make_tuple_id, table_lock_id
from . import schema
from .profiles import ProfileSet, default_profiles

__all__ = ["TpccWorkload", "MIX"]

#: Transaction mix: neworder and payment each account for 44 % of
#: submitted transactions (paper §3.2); the remainder split evenly.
MIX: Tuple[Tuple[str, float], ...] = (
    ("neworder", 0.44),
    ("payment", 0.44),
    ("orderstatus", 0.04),
    ("delivery", 0.04),
    ("stocklevel", 0.04),
)

#: TPC-C: 1 % of neworder transactions roll back on an unused item id.
NEWORDER_ROLLBACK_PROB = 0.01
#: Constant per-class abort offsets observed in the paper's Table 1
#: (long minus short ≈ 6 points in every configuration).
PAYMENT_LONG_INTRINSIC = 0.06
ORDERSTATUS_LONG_INTRINSIC = 0.06
#: TPC-C customer-selection splits.
BY_NAME_PROB = 0.60
REMOTE_CUSTOMER_PROB = 0.15
REMOTE_SUPPLY_PROB = 0.01

#: Settled-order and delivery queue-head row namespaces live in the
#: schema module so the placement layer can invert them back to a
#: warehouse (see :func:`repro.tpcc.schema.warehouse_of_tuple`).
_SETTLED_BASE = schema.SETTLED_ROW_BASE
_NOHEAD_BASE = schema.NOHEAD_ROW_BASE


class TpccWorkload:
    """Generates the transaction stream for the clients of one site."""

    def __init__(
        self,
        warehouses: int,
        profiles: Optional[ProfileSet] = None,
        rng: Optional[random.Random] = None,
        site_index: int = 0,
        site_count: int = 1,
        readset_escalation_threshold: Optional[int] = None,
    ):
        self.layout = schema.TpccLayout(warehouses, site_index, site_count)
        self.profiles = profiles or default_profiles()
        self.rng = rng or random.Random(20050628)
        #: Read-sets larger than this (per table) are escalated to a
        #: single table lock before multicast (paper §3.3); ``None``
        #: disables escalation, the default configuration.
        self.readset_escalation_threshold = readset_escalation_threshold
        self.generated: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def next_transaction(self, client_id: int) -> TransactionSpec:
        """The next transaction for ``client_id`` per the TPC-C mix."""
        w, d = self.home_of(client_id)
        kind = self._pick_kind()
        if kind == "neworder":
            spec = self.neworder(w, d)
        elif kind == "payment":
            spec = self.payment(w, d)
        elif kind == "orderstatus":
            spec = self.orderstatus(w, d)
        elif kind == "delivery":
            spec = self.delivery(w)
        else:
            spec = self.stocklevel(w, d)
        self.generated[spec.tx_class] = self.generated.get(spec.tx_class, 0) + 1
        return spec

    def home_of(self, client_id: int) -> Tuple[int, int]:
        """Home (warehouse, district) of a client: 10 clients per
        warehouse, one per district (§3.2)."""
        w = (client_id // schema.CLIENTS_PER_WAREHOUSE) % self.layout.warehouses
        d = client_id % schema.DISTRICTS_PER_WAREHOUSE
        return w, d

    def think_time(self) -> float:
        """Exponentially distributed client think time (§3.2)."""
        return self.rng.expovariate(1.0 / self.profiles.think_time_mean)

    # ------------------------------------------------------------------
    # transaction builders
    # ------------------------------------------------------------------
    def neworder(self, w: int, d: int) -> TransactionSpec:
        rng = self.rng
        layout = self.layout
        ol_cnt = rng.randint(5, 15)
        customer = layout.customer(w, d, rng.randrange(schema.CUSTOMERS_PER_DISTRICT))
        items = rng.sample(range(schema.ITEM_COUNT), ol_cnt)
        supplies = [
            self._other_warehouse(w)
            if rng.random() < REMOTE_SUPPLY_PROB
            else w
            for _ in items
        ]
        # Certification read set = update-intent reads only (rows read
        # FOR UPDATE).  Plain reads (warehouse tax rate, item catalog,
        # customer discount) are never shipped: the paper's Table 1 shows
        # neworder unaffected by replication, which is only possible if
        # its plain read of the hot Warehouse row is not certified.
        reads = {layout.district(w, d)}
        reads.update(layout.stock(sw, i) for sw, i in zip(supplies, items))
        writes = {layout.district(w, d)}
        writes.update(layout.stock(sw, i) for sw, i in zip(supplies, items))
        inserts = [layout.fresh_row(schema.ORDER), layout.fresh_row(schema.NEWORDER)]
        inserts += [layout.fresh_row(schema.ORDERLINE) for _ in range(ol_cnt)]
        writes.update(inserts)
        write_sizes = self._sizes(writes)
        cpu = self.profiles.sample_cpu("neworder", rng)
        ops = self._ops(
            fetch_groups=[
                (schema.WAREHOUSE.row_bytes + schema.DISTRICT.row_bytes, 0.15),
                (schema.CUSTOMER.row_bytes, 0.15),
                (ol_cnt * (schema.ITEM.row_bytes + schema.STOCK.row_bytes), 0.70),
            ],
            total_cpu=cpu,
        )
        return TransactionSpec(
            tx_class="neworder",
            operations=ops,
            read_set=self._finalize_reads(reads),
            write_set=tuple(sorted(writes)),
            write_sizes=write_sizes,
            commit_cpu=self.profiles.commit_cpu,
            commit_sectors=self.profiles.sectors("neworder"),
            intrinsic_abort=rng.random() < NEWORDER_ROLLBACK_PROB,
        )

    def payment(self, w: int, d: int) -> TransactionSpec:
        rng = self.rng
        layout = self.layout
        by_name = rng.random() < BY_NAME_PROB
        tx_class = "payment-long" if by_name else "payment-short"
        # 15 % of payments are for a customer of another warehouse; the
        # home warehouse/district YTD rows are updated regardless.
        if rng.random() < REMOTE_CUSTOMER_PROB and self.layout.warehouses > 1:
            cw = self._other_warehouse(w)
            cd = rng.randrange(schema.DISTRICTS_PER_WAREHOUSE)
        else:
            cw, cd = w, d
        customer = layout.customer(cw, cd, rng.randrange(schema.CUSTOMERS_PER_DISTRICT))
        # All three rows are read FOR UPDATE, so they are certified.
        reads = {layout.warehouse(w), layout.district(w, d), customer}
        writes = {
            layout.warehouse(w),  # the W_YTD hotspot (§5.2)
            layout.district(w, d),
            customer,
            layout.fresh_row(schema.HISTORY),
        }
        cpu = self.profiles.sample_cpu(tx_class, rng)
        customer_bytes = schema.CUSTOMER.row_bytes * (3 if by_name else 1)
        ops = self._ops(
            fetch_groups=[
                (schema.WAREHOUSE.row_bytes + schema.DISTRICT.row_bytes, 0.3),
                (customer_bytes, 0.7),
            ],
            total_cpu=cpu,
        )
        return TransactionSpec(
            tx_class=tx_class,
            operations=ops,
            read_set=self._finalize_reads(reads),
            write_set=tuple(sorted(writes)),
            write_sizes=self._sizes(writes),
            commit_cpu=self.profiles.commit_cpu,
            commit_sectors=self.profiles.sectors(tx_class),
            intrinsic_abort=by_name and rng.random() < PAYMENT_LONG_INTRINSIC,
        )

    def orderstatus(self, w: int, d: int) -> TransactionSpec:
        rng = self.rng
        by_name = rng.random() < BY_NAME_PROB
        tx_class = "orderstatus-long" if by_name else "orderstatus-short"
        lines = rng.randint(5, 15)
        # Read-only: nothing is read with update intent, nothing is
        # certified — hence the 0.00 abort rows in Tables 1 and 2.
        cpu = self.profiles.sample_cpu(tx_class, rng)
        ops = self._ops(
            fetch_groups=[
                (schema.CUSTOMER.row_bytes * (3 if by_name else 1), 0.5),
                (schema.ORDER.row_bytes + lines * schema.ORDERLINE.row_bytes, 0.5),
            ],
            total_cpu=cpu,
        )
        return TransactionSpec(
            tx_class=tx_class,
            operations=ops,
            read_set=(),
            write_set=(),
            commit_cpu=self.profiles.commit_cpu,
            commit_sectors=0,
            intrinsic_abort=by_name and rng.random() < ORDERSTATUS_LONG_INTRINSIC,
        )

    def delivery(self, w: int) -> TransactionSpec:
        rng = self.rng
        layout = self.layout
        reads: Set[int] = set()
        writes: Set[int] = set()
        # One oldest new-order per district: read + rewrite the queue
        # head, deliver the order, update the customer balance.
        for d in range(schema.DISTRICTS_PER_WAREHOUSE):
            head = self._nohead(w, d)
            order = self._settled_row(schema.ORDER, w, d, rng.randrange(64))
            customer = layout.customer(
                w, d, rng.randrange(schema.CUSTOMERS_PER_DISTRICT)
            )
            reads.update((head, order, customer))
            writes.update((head, order, customer))
            lines = [
                self._settled_row(schema.ORDERLINE, w, d, rng.randrange(64) * 16 + i)
                for i in range(10)
            ]
            reads.update(lines)
            writes.update(lines)
        cpu = self.profiles.sample_cpu("delivery", rng)
        per_district = schema.ORDER.row_bytes + 10 * schema.ORDERLINE.row_bytes
        ops = self._ops(
            fetch_groups=[
                (schema.DISTRICTS_PER_WAREHOUSE * per_district, 0.5),
                (schema.DISTRICTS_PER_WAREHOUSE * schema.CUSTOMER.row_bytes, 0.5),
            ],
            total_cpu=cpu,
        )
        return TransactionSpec(
            tx_class="delivery",
            operations=ops,
            read_set=self._finalize_reads(reads),
            write_set=tuple(sorted(writes)),
            write_sizes=self._sizes(writes),
            commit_cpu=self.profiles.commit_cpu,
            commit_sectors=self.profiles.sectors("delivery"),
        )

    def stocklevel(self, w: int, d: int) -> TransactionSpec:
        rng = self.rng
        # The join over the last 20 orders' lines touches ~200 stock
        # rows — all plain reads, so nothing is certified (read-only).
        cpu = self.profiles.sample_cpu("stocklevel", rng)
        ops = self._ops(
            fetch_groups=[
                (20 * schema.ORDERLINE.row_bytes, 0.3),
                (180 * schema.STOCK.row_bytes, 0.7),
            ],
            total_cpu=cpu,
        )
        return TransactionSpec(
            tx_class="stocklevel",
            operations=ops,
            read_set=(),
            write_set=(),
            commit_cpu=self.profiles.commit_cpu,
            commit_sectors=0,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pick_kind(self) -> str:
        u = self.rng.random()
        acc = 0.0
        for kind, weight in MIX:
            acc += weight
            if u < acc:
                return kind
        return MIX[-1][0]

    def _other_warehouse(self, w: int) -> int:
        if self.layout.warehouses == 1:
            return w
        other = self.rng.randrange(self.layout.warehouses - 1)
        return other if other < w else other + 1

    def _ops(
        self, fetch_groups: List[Tuple[int, float]], total_cpu: float
    ) -> Tuple[Operation, ...]:
        """Interleave batched fetches with processing chunks.

        ``fetch_groups`` pairs (bytes, cpu_fraction): after each fetch
        the given fraction of the sampled CPU time is processed.  The
        model is coarse-grained on purpose — the cache is a hit ratio,
        not a page map (§3.2) — so one fetch op stands for a group of
        item fetches and keeps the event count per transaction small.
        """
        ops: List[Operation] = []
        for nbytes, fraction in fetch_groups:
            ops.append(Operation(OpKind.FETCH, item=0, nbytes=nbytes))
            if fraction > 0:
                ops.append(Operation(OpKind.PROCESS, cpu_time=total_cpu * fraction))
        return tuple(ops)

    def _sizes(self, writes: Set[int]) -> Dict[int, int]:
        return {
            item: schema.TABLES[item >> 48].row_bytes
            for item in writes
        }

    def _finalize_reads(self, reads: Set[int]) -> Tuple[int, ...]:
        """Sort the read set, applying table-lock escalation if enabled."""
        threshold = self.readset_escalation_threshold
        if threshold is None:
            return tuple(sorted(reads))
        per_table: Dict[int, List[int]] = {}
        for item in reads:
            per_table.setdefault(item >> 48, []).append(item)
        final: Set[int] = set()
        for table, items in per_table.items():
            if len(items) > threshold:
                final.add(table_lock_id(table))
            else:
                final.update(items)
        return tuple(sorted(final))

    def _settled_row(self, table: schema.Table, w: int, d: int, slot: int) -> int:
        row = _SETTLED_BASE + ((w * schema.DISTRICTS_PER_WAREHOUSE + d) << 16) + slot
        return make_tuple_id(table.table_id, row)

    def _nohead(self, w: int, d: int) -> int:
        """The new-order queue-head pseudo-row of (warehouse, district):
        every delivery on the warehouse reads and rewrites all ten of
        these, making warehouse-level delivery the self-conflicting class
        the paper observes."""
        row = _NOHEAD_BASE + w * schema.DISTRICTS_PER_WAREHOUSE + d + 1
        return make_tuple_id(schema.NEWORDER.table_id, row)
