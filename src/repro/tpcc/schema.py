"""TPC-C schema: tables, cardinalities, tuple sizes, identifier layout.

The paper uses the TPC-C workload purely as a realistic traffic source
(§3.2): a wholesale supplier with geographically distributed districts
and warehouses, sized at one warehouse per 10 emulated clients, tuples
ranging from 8 to 655 bytes.  Tuple identifiers are 64-bit integers with
the table id in the high-order bits (§3.3), which this module lays out
on top of :mod:`repro.db.tuples`.

Insert identifiers (orders, order lines, history rows) are striped by
site index so that two replicas can never generate the same fresh row id
— in a real system this uniqueness comes from the district's
``next_o_id`` counter, which is serialized by certification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..db.tuples import make_tuple_id, row_of, table_of

__all__ = [
    "Table",
    "TABLES",
    "TpccLayout",
    "WAREHOUSE",
    "DISTRICT",
    "CUSTOMER",
    "HISTORY",
    "NEWORDER",
    "ORDER",
    "ORDERLINE",
    "ITEM",
    "STOCK",
    "DISTRICTS_PER_WAREHOUSE",
    "CUSTOMERS_PER_DISTRICT",
    "STOCK_PER_WAREHOUSE",
    "ITEM_COUNT",
    "CLIENTS_PER_WAREHOUSE",
    "SETTLED_ROW_BASE",
    "NOHEAD_ROW_BASE",
    "warehouse_of_tuple",
    "warehouses_for_clients",
]


@dataclass(frozen=True)
class Table:
    """One TPC-C table: id for the tuple-identifier prefix, typical row
    size in bytes (used to pad messages and size storage transfers)."""

    table_id: int
    name: str
    row_bytes: int


WAREHOUSE = Table(1, "warehouse", 89)
DISTRICT = Table(2, "district", 95)
CUSTOMER = Table(3, "customer", 655)
HISTORY = Table(4, "history", 46)
NEWORDER = Table(5, "neworder", 8)
ORDER = Table(6, "order", 24)
ORDERLINE = Table(7, "orderline", 54)
ITEM = Table(8, "item", 82)
STOCK = Table(9, "stock", 306)

TABLES: Dict[int, Table] = {
    t.table_id: t
    for t in (
        WAREHOUSE,
        DISTRICT,
        CUSTOMER,
        HISTORY,
        NEWORDER,
        ORDER,
        ORDERLINE,
        ITEM,
        STOCK,
    )
}

#: TPC-C scaling constants.
DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3000
STOCK_PER_WAREHOUSE = 100_000
ITEM_COUNT = 100_000
#: Each warehouse supports 10 emulated clients (paper §3.2).
CLIENTS_PER_WAREHOUSE = 10

#: Synthetic row-id namespace for "settled" (pre-existing) order rows
#: referenced by orderstatus/delivery/stocklevel.  Fresh insert ids are
#: striped upward from zero by :class:`TpccLayout`, so settled rows get
#: their own high range to guarantee disjointness.  The encoding is
#: ``SETTLED_ROW_BASE + ((w * 10 + d) << 16) + slot`` — warehouse
#: recoverable, which the placement layer relies on.
SETTLED_ROW_BASE = 1 << 40
#: Delivery queue-head pseudo-rows, one per (warehouse, district):
#: ``NOHEAD_ROW_BASE + w * 10 + d + 1``.
NOHEAD_ROW_BASE = 1 << 39


class TpccLayout:
    """Maps logical TPC-C keys to 64-bit tuple identifiers.

    One instance per simulation; ``site_index``/``site_count`` stripe
    fresh insert ids across replicas so concurrent inserts at different
    sites never collide.
    """

    def __init__(self, warehouses: int, site_index: int = 0, site_count: int = 1):
        if warehouses < 1:
            raise ValueError("need at least one warehouse")
        if not 0 <= site_index < site_count:
            raise ValueError("site_index out of range")
        self.warehouses = warehouses
        self.site_index = site_index
        self.site_count = site_count
        self._insert_counter = 0

    # -- keyed rows -----------------------------------------------------
    def warehouse(self, w: int) -> int:
        self._check_wh(w)
        return make_tuple_id(WAREHOUSE.table_id, w + 1)

    def district(self, w: int, d: int) -> int:
        self._check_wh(w)
        self._check_district(d)
        return make_tuple_id(
            DISTRICT.table_id, w * DISTRICTS_PER_WAREHOUSE + d + 1
        )

    def customer(self, w: int, d: int, c: int) -> int:
        self._check_wh(w)
        self._check_district(d)
        if not 0 <= c < CUSTOMERS_PER_DISTRICT:
            raise ValueError(f"customer {c} out of range")
        row = (w * DISTRICTS_PER_WAREHOUSE + d) * CUSTOMERS_PER_DISTRICT + c + 1
        return make_tuple_id(CUSTOMER.table_id, row)

    def stock(self, w: int, item: int) -> int:
        self._check_wh(w)
        if not 0 <= item < ITEM_COUNT:
            raise ValueError(f"item {item} out of range")
        return make_tuple_id(STOCK.table_id, w * STOCK_PER_WAREHOUSE + item + 1)

    def item(self, item: int) -> int:
        if not 0 <= item < ITEM_COUNT:
            raise ValueError(f"item {item} out of range")
        return make_tuple_id(ITEM.table_id, item + 1)

    # -- fresh rows (inserts) --------------------------------------------
    def fresh_row(self, table: Table) -> int:
        """A globally unique row id for an insert into ``table``."""
        self._insert_counter += 1
        row = self._insert_counter * self.site_count + self.site_index + 1
        return make_tuple_id(table.table_id, row)

    # -- sizes ------------------------------------------------------------
    def approx_tuple_count(self) -> int:
        """Rough total database cardinality (the paper quotes > 1e9
        tuples at 2000 clients — dominated by stock and customers times
        history growth; we count the static tables)."""
        per_warehouse = (
            1
            + DISTRICTS_PER_WAREHOUSE
            + DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT
            + STOCK_PER_WAREHOUSE
        )
        return self.warehouses * per_warehouse + ITEM_COUNT

    # -- internals ---------------------------------------------------------
    def _check_wh(self, w: int) -> None:
        if not 0 <= w < self.warehouses:
            raise ValueError(f"warehouse {w} out of range")

    @staticmethod
    def _check_district(d: int) -> None:
        if not 0 <= d < DISTRICTS_PER_WAREHOUSE:
            raise ValueError(f"district {d} out of range")


def warehouses_for_clients(clients: int) -> int:
    """The paper sizes the database as one warehouse per 10 clients."""
    return max(1, (clients + CLIENTS_PER_WAREHOUSE - 1) // CLIENTS_PER_WAREHOUSE)


def warehouse_of_tuple(tuple_id: int) -> Optional[int]:
    """Invert a tuple identifier to the warehouse that owns it.

    This is the single inverse of the row formulas above — the placement
    layer derives fragment ownership through it instead of re-deriving
    the encodings.  Returns ``None`` for identifiers that carry no
    warehouse: whole-table locks, the replicated item catalog, and fresh
    insert rows (striped by site counter, deliberately warehouse-free —
    a fresh row can never conflict, so it never needs placing).
    """
    table = table_of(tuple_id)
    row = row_of(tuple_id)
    if row == 0:  # whole-table lock: covers every warehouse
        return None
    if table == WAREHOUSE.table_id:
        return row - 1
    if table == DISTRICT.table_id:
        return (row - 1) // DISTRICTS_PER_WAREHOUSE
    if table == CUSTOMER.table_id:
        return (row - 1) // CUSTOMERS_PER_DISTRICT // DISTRICTS_PER_WAREHOUSE
    if table == STOCK.table_id:
        return (row - 1) // STOCK_PER_WAREHOUSE
    if row >= SETTLED_ROW_BASE:
        return ((row - SETTLED_ROW_BASE) >> 16) // DISTRICTS_PER_WAREHOUSE
    if row >= NOHEAD_ROW_BASE:
        return (row - NOHEAD_ROW_BASE - 1) // DISTRICTS_PER_WAREHOUSE
    # Item catalog rows and striped fresh-insert rows.
    return None
