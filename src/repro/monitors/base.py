"""Online invariant monitoring: the hub, the registry, the artifact.

The paper's §5.3 safety argument is checked *after* a run today
(:func:`repro.core.safety.check_consistency`); this package moves the
same guarantees — and the GCS stack's own virtual-synchrony contract —
into the event path, so a broken protocol is flagged at the delivery
that breaks it instead of hours later in a log comparison (the
runtime-checking approach of Shivam et al.'s Derecho work).

Monitors are **observers**: they never schedule events, never draw
random numbers, never charge simulated CPU, and never mutate protocol
state.  Every production hook is guarded by ``if <probe> is not None``,
so a run with monitoring disabled executes the exact pre-monitor code
path — bit-identical results, no per-event overhead.

Wiring: scenario assembly builds one :class:`MonitorHub` per run (only
when ``ScenarioConfig.monitors`` selects at least one monitor and the
configuration is replicated) and hands each site a :class:`SiteProbe`
— a site-tagged fan-out point installed on the replica, the GCS stack,
the total-order session and the view manager.  Probes forward each
event to the monitors that actually override the corresponding hook
(computed once per run), the hub merges the recorded
:class:`InvariantViolation` events at the end, and the scenario result
carries them as first-class serialized artifacts for the analysis
registry (the ``violations`` metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "ALL_MONITORS",
    "InvariantViolation",
    "Monitor",
    "MonitorHub",
    "SiteProbe",
    "available_monitors",
    "build_monitor",
    "register_monitor",
    "resolve_monitors",
]

#: Sentinel accepted in ``ScenarioConfig.monitors``: every registered
#: monitor, in registration order.
ALL_MONITORS = "all"


@dataclass
class InvariantViolation:
    """One observed invariant breach — a first-class result artifact."""

    #: Registry name of the monitor that fired.
    monitor: str
    #: Site at which the breach was observed (e.g. ``"site2"``).
    site: str
    #: Simulated seconds at which the breach was *detected* (for checks
    #: confirmed at end of run this is the earliest detection instant).
    sim_time: float
    #: Human-readable description of the breach.
    detail: str
    #: Sequence number involved, ``-1`` when not applicable.
    seq: int = -1

    def to_dict(self) -> Dict[str, object]:
        return {
            "monitor": self.monitor,
            "site": self.site,
            "sim_time": self.sim_time,
            "detail": self.detail,
            "seq": self.seq,
        }

    def tagged(self, label: str) -> Dict[str, object]:
        """The ``to_dict`` payload plus the campaign cell ``label`` that
        produced it — the shape the event journal and the dashboard's
        violations feed carry, where violations from many cells mix."""
        payload = self.to_dict()
        payload["label"] = label
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InvariantViolation":
        return cls(
            monitor=str(data["monitor"]),
            site=str(data["site"]),
            sim_time=float(data["sim_time"]),
            detail=str(data["detail"]),
            seq=int(data.get("seq", -1)),
        )


class Monitor:
    """Base class: the full observation surface, every hook a no-op.

    Subclasses override only the hooks they need; the hub skips a
    monitor entirely on hot paths whose hooks it left untouched.
    Monitors are usable standalone (no hub) — property tests drive the
    hooks directly; ``sim_time`` then falls back to an event counter.
    """

    #: Registry name (subclasses set it; it keys the docs table and the
    #: ``violations[monitor]`` metric family).
    name: str = "?"
    #: Whether the monitor understands per-fragment replica groups
    #: (partial replication): its invariants hold *within* a GCS group,
    #: and it scopes every cross-site comparison through
    #: :meth:`group_of`.  Monitors that leave this False are excluded
    #: from fragmented runs by ``build_hub`` — their metrics read NaN
    #: there, never a fake-clean zero.
    fragment_aware: bool = False

    def __init__(self) -> None:
        self.violations: List[InvariantViolation] = []
        self._hub: Optional["MonitorHub"] = None
        self._names: Dict[int, str] = {}
        self._ticks = 0

    # -- hub plumbing ---------------------------------------------------
    def attach(self, hub: "MonitorHub") -> None:
        self._hub = hub

    def note_site(self, site: int, name: str) -> None:
        """Record ``site``'s display name (called once per site)."""
        self._names[site] = name

    def site_name(self, site: int) -> str:
        return self._names.get(site, f"site{site}")

    def group_of(self, site: int) -> int:
        """The replica group (fragment) ``site`` belongs to.

        Full replication — and standalone (hub-less) use — is one group:
        everything maps to group 0, which keeps every pre-fragment
        comparison exactly as it was.
        """
        return 0 if self._hub is None else self._hub.group_of(site)

    def _now(self) -> float:
        if self._hub is not None:
            return self._hub.now()
        self._ticks += 1
        return float(self._ticks)

    def emit(
        self,
        site: int,
        detail: str,
        seq: int = -1,
        sim_time: Optional[float] = None,
    ) -> None:
        self.violations.append(
            InvariantViolation(
                monitor=self.name,
                site=self.site_name(site),
                sim_time=self._now() if sim_time is None else sim_time,
                detail=detail,
                seq=seq,
            )
        )

    # -- observation hooks (all optional) -------------------------------
    def on_commit(self, site: int, commit_seq: int, tx_id: int) -> None:
        """``site`` appended ``(commit_seq, tx_id)`` to its commit log."""

    def on_crash(self, site: int) -> None:
        """``site`` was crashed by fault injection."""

    def on_rejoin(self, site: int) -> None:
        """``site`` started a rejoin (non-operational until snapshot)."""

    def on_snapshot_install(
        self, site: int, entries: Sequence[Tuple[int, int]]
    ) -> None:
        """``site`` adopted a donor snapshot; its commit log now equals
        ``entries`` and it is operational again."""

    def on_deliver(self, site: int, global_seq: int, origin: int) -> None:
        """The GCS stack delivered an application message at ``site``."""

    def on_ordered(
        self, site: int, global_seq: int, origin: int, origin_seq: int
    ) -> None:
        """The total-order session delivered ``(origin, origin_seq)``
        as global number ``global_seq`` at ``site``."""

    def on_view_installed(
        self,
        site: int,
        view_id: int,
        members: Tuple[int, ...],
        joined: Tuple[int, ...],
        targets: Dict[int, int],
        contiguous: Dict[int, int],
    ) -> None:
        """``site`` installed view ``view_id`` with ``members`` (of
        which ``joined`` were (re)admitted); ``targets`` are the
        DECIDE's flush targets and ``contiguous`` the site's
        contiguously-received vector at install time."""

    def finalize(self) -> None:
        """End of run: confirm or discard deferred observations."""


#: Hook names the hub builds per-hook dispatch lists for.
_HOOKS = (
    "on_commit",
    "on_crash",
    "on_rejoin",
    "on_snapshot_install",
    "on_deliver",
    "on_ordered",
    "on_view_installed",
)


class SiteProbe:
    """Site-tagged fan-out point installed on one site's components.

    The probe is the only monitor object production code sees; each
    method forwards to the monitors that override the matching hook.
    Observe-only by construction: probes expose no mutators.
    """

    __slots__ = ("hub", "site")

    def __init__(self, hub: "MonitorHub", site: int):
        self.hub = hub
        self.site = site

    def commit(self, commit_seq: int, tx_id: int) -> None:
        for m in self.hub.subscribers["on_commit"]:
            m.on_commit(self.site, commit_seq, tx_id)

    def crash(self) -> None:
        for m in self.hub.subscribers["on_crash"]:
            m.on_crash(self.site)

    def rejoin(self) -> None:
        for m in self.hub.subscribers["on_rejoin"]:
            m.on_rejoin(self.site)

    def snapshot(self, entries: Sequence[Tuple[int, int]]) -> None:
        for m in self.hub.subscribers["on_snapshot_install"]:
            m.on_snapshot_install(self.site, entries)

    def deliver(self, global_seq: int, origin: int) -> None:
        for m in self.hub.subscribers["on_deliver"]:
            m.on_deliver(self.site, global_seq, origin)

    def ordered(self, global_seq: int, origin: int, origin_seq: int) -> None:
        for m in self.hub.subscribers["on_ordered"]:
            m.on_ordered(self.site, global_seq, origin, origin_seq)

    def view(
        self,
        view_id: int,
        members: Tuple[int, ...],
        joined: Tuple[int, ...],
        targets: Dict[int, int],
        contiguous: Dict[int, int],
    ) -> None:
        for m in self.hub.subscribers["on_view_installed"]:
            m.on_view_installed(
                self.site, view_id, members, joined, targets, contiguous
            )


class MonitorHub:
    """One run's monitors: binding, dispatch and violation collection."""

    def __init__(
        self,
        monitors: Sequence[Monitor],
        total_sites: int,
        clock: Callable[[], float],
        site_groups: Optional[Dict[int, int]] = None,
    ):
        self.monitors: List[Monitor] = list(monitors)
        self.total_sites = total_sites
        self._clock = clock
        self._views: Dict[int, object] = {}
        #: site -> replica group (fragment); empty under full
        #: replication, where every site is in group 0.
        self._site_groups: Dict[int, int] = dict(site_groups or {})
        for monitor in self.monitors:
            monitor.attach(self)
        #: hook name -> monitors that actually override it, so hot-path
        #: probes never touch a monitor that would no-op the event.
        self.subscribers: Dict[str, Tuple[Monitor, ...]] = {
            hook: tuple(
                m
                for m in self.monitors
                if getattr(type(m), hook) is not getattr(Monitor, hook)
            )
            for hook in _HOOKS
        }

    def now(self) -> float:
        return self._clock()

    def group_of(self, site: int) -> int:
        """The replica group (fragment) ``site`` belongs to (0 under
        full replication)."""
        return self._site_groups.get(site, 0)

    def group_members(self, site: int) -> Tuple[int, ...]:
        """The full (initial) member set of ``site``'s replica group."""
        group = self.group_of(site)
        return tuple(
            s for s in range(self.total_sites) if self.group_of(s) == group
        )

    def views_of(self, site: int):
        """The bound site's :class:`~repro.gcs.views.ViewManager` (the
        primary-component monitor reads its installed view / blocked
        flag at commit time), or None for unbound sites."""
        return self._views.get(site)

    def bind_site(self, site: int, name: str, gcs) -> SiteProbe:
        """Register one site's stack and hand back its probe."""
        self._views[site] = gcs.views
        for monitor in self.monitors:
            monitor.note_site(site, name)
        return SiteProbe(self, site)

    def finish(self) -> List[InvariantViolation]:
        """Finalize every monitor and return the merged violations in a
        deterministic order (detection time, monitor, site)."""
        for monitor in self.monitors:
            monitor.finalize()
        merged = [v for monitor in self.monitors for v in monitor.violations]
        merged.sort(key=lambda v: (v.sim_time, v.monitor, v.site, v.seq))
        return merged


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
MonitorFactory = Callable[[], Monitor]

_REGISTRY: Dict[str, MonitorFactory] = {}


def register_monitor(name: str, factory: MonitorFactory) -> None:
    """Register ``factory`` under ``name`` (unique, non-empty, not the
    ``"all"`` sentinel)."""
    if not name or not isinstance(name, str) or name == ALL_MONITORS:
        raise ValueError(f"invalid monitor name {name!r}")
    if name in _REGISTRY:
        raise ValueError(f"invariant monitor {name!r} already registered")
    _REGISTRY[name] = factory


def available_monitors() -> Tuple[str, ...]:
    """Registered monitor names, in registration order."""
    return tuple(_REGISTRY)


def build_monitor(name: str) -> Monitor:
    """A fresh instance of the ``name`` monitor."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ValueError(
            f"unknown invariant monitor {name!r} (available: {known})"
        ) from None
    return factory()


def resolve_monitors(names: Union[str, Sequence[str]]) -> Tuple[str, ...]:
    """Expand a monitor selection to concrete registry names.

    ``"all"`` expands to every registered monitor; explicit names keep
    their order, duplicates collapse, unknown names raise ValueError.
    """
    if isinstance(names, str):
        names = (names,)
    resolved: List[str] = []
    for name in names:
        expanded = available_monitors() if name == ALL_MONITORS else (name,)
        for concrete in expanded:
            if concrete not in _REGISTRY:
                known = ", ".join(_REGISTRY)
                raise ValueError(
                    f"unknown invariant monitor {concrete!r} "
                    f"(available: {known})"
                )
            if concrete not in resolved:
                resolved.append(concrete)
    return tuple(resolved)
