"""FIFO and total-order delivery checks on the GCS stack (§3.4).

Three predicates over the ordered-delivery stream:

* **per-origin FIFO** — at any one site, the origin sequence numbers of
  delivered messages from a given origin strictly increase (view
  changes may legitimately *drop* a suffix beyond a departed origin's
  flush target, so the check is strict increase, not gap-freedom);
* **global monotonicity** — the global sequence numbers a site delivers
  strictly increase, both at the total-order session and at the stack's
  application delivery (reassembled fragments);
* **cross-site agreement** — a global sequence number denotes the same
  ``(origin, origin_seq)`` message at every site that delivers it (the
  paper's "a message's position never changes once delivered
  anywhere").  Like the streaming 1SR certifier, this check detects a
  disagreement at the delivery that causes it but *confirms* it at end
  of run: a partitioned-away member (typically an old sequencer that
  does not yet know it was excluded) may deliver a short divergent
  window under global numbers the primary component assigns
  differently, and that whole window is wiped — deliveries, commits
  and all — when the member rejoins via state transfer, so the group
  history never contains it.

Each predicate reports at most one violation per site (per origin, for
FIFO) — the first breach is the diagnostic one; repeats after a real
ordering bug would only storm the artifact.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .base import Monitor, register_monitor

__all__ = ["GcsOrdering"]


class GcsOrdering(Monitor):
    """FIFO / total-order delivery invariants of the GCS stack."""

    name = "gcs-ordering"
    #: Each fragment group runs its own total-order session with its
    #: own global-sequence space, so cross-site agreement is checked
    #: within the group; per-site FIFO/monotonicity need no scoping.
    fragment_aware = True

    def __init__(self) -> None:
        super().__init__()
        #: (site, origin) -> last origin_seq delivered in total order.
        self._fifo: Dict[Tuple[int, int], int] = {}
        #: site -> last global_seq delivered by the total-order session.
        self._last_ordered: Dict[int, int] = {}
        #: site -> last global_seq delivered by the stack (application).
        self._last_app: Dict[int, int] = {}
        #: site -> global_seq -> (origin, origin_seq): each site's
        #: delivered history, wiped on rejoin (the snapshot replaces the
        #: member's state, so its pre-rejoin window leaves no trace in
        #: the group history — exactly like the commit log).
        self._delivered: Dict[int, Dict[int, Tuple[int, int]]] = {}
        #: site -> first instant one of its deliveries disagreed with
        #: another site's (detection timestamps for finalize()).
        self._conflict_at: Dict[int, float] = {}
        self._fifo_flagged: Set[Tuple[int, int]] = set()
        self._mono_flagged: Set[int] = set()

    def on_ordered(
        self, site: int, global_seq: int, origin: int, origin_seq: int
    ) -> None:
        key = (site, origin)
        last = self._fifo.get(key, 0)
        if origin_seq <= last and key not in self._fifo_flagged:
            self._fifo_flagged.add(key)
            self.emit(
                site,
                f"FIFO order broken for origin {origin}: delivered seq "
                f"{origin_seq} after seq {last}",
                seq=global_seq,
            )
        if origin_seq > last:
            self._fifo[key] = origin_seq
        last_global = self._last_ordered.get(site, 0)
        if global_seq <= last_global and site not in self._mono_flagged:
            self._mono_flagged.add(site)
            self.emit(
                site,
                f"total-order delivery not monotonic: global {global_seq} "
                f"after {last_global}",
                seq=global_seq,
            )
        if global_seq > last_global:
            self._last_ordered[site] = global_seq
        message = (origin, origin_seq)
        self._delivered.setdefault(site, {})[global_seq] = message
        group = self.group_of(site)
        for other, history in self._delivered.items():
            if other == site or self.group_of(other) != group:
                continue
            theirs = history.get(global_seq)
            if theirs is not None and theirs != message:
                now = self._now()
                self._conflict_at.setdefault(site, now)
                self._conflict_at.setdefault(other, now)

    def on_deliver(self, site: int, global_seq: int, origin: int) -> None:
        last = self._last_app.get(site, 0)
        if global_seq <= last and site not in self._mono_flagged:
            self._mono_flagged.add(site)
            self.emit(
                site,
                f"application delivery not monotonic: global {global_seq} "
                f"after {last}",
                seq=global_seq,
            )
        if global_seq > last:
            self._last_app[site] = global_seq

    def on_rejoin(self, site: int) -> None:
        # A restarted member's delivery stream resumes above its
        # snapshot's cut with fresh per-origin state; stale watermarks
        # (and the wiped incarnation's delivered history) would
        # false-positive.
        for key in [k for k in self._fifo if k[0] == site]:
            del self._fifo[key]
        self._last_ordered.pop(site, None)
        self._last_app.pop(site, None)
        self._delivered.pop(site, None)

    def finalize(self) -> None:
        # Confirm cross-site agreement over the surviving delivered
        # histories (divergent windows wiped by a rejoin are gone, like
        # the orphaned commits they carried).  Anchors are per replica
        # group: each group numbers its own delivery sequence.
        authoritative: Dict[
            Tuple[int, int], Tuple[Tuple[int, int], int]
        ] = {}
        for site in sorted(self._delivered):
            history = self._delivered[site]
            group = self.group_of(site)
            for global_seq in sorted(history):
                message = history[global_seq]
                anchor = authoritative.setdefault(
                    (group, global_seq), (message, site)
                )
                if anchor[0] != message:
                    self.emit(
                        site,
                        f"total-order disagreement: global {global_seq} "
                        f"is {message} here but {anchor[0]} at "
                        f"{self.site_name(anchor[1])}",
                        seq=global_seq,
                        sim_time=self._conflict_at.get(site),
                    )
                    break  # first mismatch per site is the diagnostic one


register_monitor("gcs-ordering", GcsOrdering)
