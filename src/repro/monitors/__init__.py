"""Always-on runtime invariant monitors (online §5.3 / §3.4 checking).

A registry of cheap observe-only monitors wired into the scenario
event path, selected per cell by ``ScenarioConfig.monitors`` (monitor
names, or ``"all"``):

* ``one-copy-sr`` — streaming one-copy-serializability certifier:
  cross-site commit-sequence agreement checked at delivery time,
  crash-prefix aware like :func:`repro.core.safety.check_consistency`;
* ``view-synchrony`` — same-view members agree on membership and hold
  the same message set before a view change; no delivery from departed
  members beyond their flush targets;
* ``primary-component`` — at most one partition commits: every view
  carries a majority of its predecessor, and nothing commits while
  blocked or outside the primary lineage;
* ``gcs-ordering`` — FIFO and total-order delivery checks on the GCS
  stack, including cross-site agreement on every global number.

Violations are recorded as :class:`InvariantViolation` artifacts on
the :class:`~repro.core.experiment.ScenarioResult` (the ``violations``
metric in the analysis registry).  Disabled monitoring is free: every
production hook is ``if <probe> is not None``-guarded, so results are
bit-identical with monitors off.
"""

from .base import (
    ALL_MONITORS,
    InvariantViolation,
    Monitor,
    MonitorHub,
    SiteProbe,
    available_monitors,
    build_monitor,
    register_monitor,
    resolve_monitors,
)

# Importing the implementation modules registers the built-ins, in the
# order the docs table lists them.
from .serializability import OneCopySerializability
from .viewsync import ViewSynchrony
from .primary import PrimaryComponent
from .ordering import GcsOrdering

__all__ = [
    "ALL_MONITORS",
    "InvariantViolation",
    "Monitor",
    "MonitorHub",
    "SiteProbe",
    "OneCopySerializability",
    "ViewSynchrony",
    "PrimaryComponent",
    "GcsOrdering",
    "applicable_monitors",
    "available_monitors",
    "build_hub",
    "build_monitor",
    "register_monitor",
    "resolve_monitors",
]


def applicable_monitors(config) -> tuple:
    """The resolved monitor names that actually apply to ``config``.

    This is the single arming decision shared by :func:`build_hub` and
    the ``violations`` metrics: centralized baselines arm nothing, and
    fragmented (partial-replication) runs arm only fragment-aware
    monitors — one whose invariant is not meaningful across per-fragment
    groups is *excluded*, so its metric reads NaN there rather than a
    fake-clean zero.
    """
    if not config.monitors or config.sites < 2:
        return ()
    names = resolve_monitors(config.monitors)
    if getattr(config, "fragments", 1) > 1:
        names = tuple(
            name for name in names if build_monitor(name).fragment_aware
        )
    return names


def build_hub(config, clock) -> "MonitorHub | None":
    """The run's :class:`MonitorHub`, or None when monitoring is off.

    Centralized baselines (``sites == 1``) have no replication layer to
    observe and run without a hub whatever ``config.monitors`` says —
    mirroring how they ignore ``config.protocol``.  Fragmented runs get
    a hub that knows the site→group mapping, so monitors scope their
    cross-site comparisons to each replica group.
    """
    names = applicable_monitors(config)
    if not names:
        return None
    fragments = getattr(config, "fragments", 1)
    site_groups = None
    if fragments > 1:
        from ..placement import fragment_of_site

        site_groups = {
            site: fragment_of_site(site, config.sites, fragments)
            for site in range(config.sites)
        }
    return MonitorHub(
        [build_monitor(name) for name in names],
        config.sites,
        clock,
        site_groups=site_groups,
    )
