"""Always-on runtime invariant monitors (online §5.3 / §3.4 checking).

A registry of cheap observe-only monitors wired into the scenario
event path, selected per cell by ``ScenarioConfig.monitors`` (monitor
names, or ``"all"``):

* ``one-copy-sr`` — streaming one-copy-serializability certifier:
  cross-site commit-sequence agreement checked at delivery time,
  crash-prefix aware like :func:`repro.core.safety.check_consistency`;
* ``view-synchrony`` — same-view members agree on membership and hold
  the same message set before a view change; no delivery from departed
  members beyond their flush targets;
* ``primary-component`` — at most one partition commits: every view
  carries a majority of its predecessor, and nothing commits while
  blocked or outside the primary lineage;
* ``gcs-ordering`` — FIFO and total-order delivery checks on the GCS
  stack, including cross-site agreement on every global number.

Violations are recorded as :class:`InvariantViolation` artifacts on
the :class:`~repro.core.experiment.ScenarioResult` (the ``violations``
metric in the analysis registry).  Disabled monitoring is free: every
production hook is ``if <probe> is not None``-guarded, so results are
bit-identical with monitors off.
"""

from .base import (
    ALL_MONITORS,
    InvariantViolation,
    Monitor,
    MonitorHub,
    SiteProbe,
    available_monitors,
    build_monitor,
    register_monitor,
    resolve_monitors,
)

# Importing the implementation modules registers the built-ins, in the
# order the docs table lists them.
from .serializability import OneCopySerializability
from .viewsync import ViewSynchrony
from .primary import PrimaryComponent
from .ordering import GcsOrdering

__all__ = [
    "ALL_MONITORS",
    "InvariantViolation",
    "Monitor",
    "MonitorHub",
    "SiteProbe",
    "OneCopySerializability",
    "ViewSynchrony",
    "PrimaryComponent",
    "GcsOrdering",
    "available_monitors",
    "build_hub",
    "build_monitor",
    "register_monitor",
    "resolve_monitors",
]


def build_hub(config, clock) -> "MonitorHub | None":
    """The run's :class:`MonitorHub`, or None when monitoring is off.

    Centralized baselines (``sites == 1``) have no replication layer to
    observe and run without a hub whatever ``config.monitors`` says —
    mirroring how they ignore ``config.protocol``.
    """
    if not config.monitors or config.sites < 2:
        return None
    names = resolve_monitors(config.monitors)
    if not names:
        return None
    return MonitorHub(
        [build_monitor(name) for name in names], config.sites, clock
    )
