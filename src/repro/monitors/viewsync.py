"""View-synchrony predicates (§3.4 virtual synchrony contract).

Three predicates over view installs and ordered deliveries:

* **view agreement** — every site that installs view *v* installs it
  with the same member set (the first installer fixes it);
* **flush completeness** — a member installs a view only after its
  contiguously-received vector covers every flush target the DECIDE
  carries, i.e. same-view survivors hold the identical message set
  before the change (vacuous for a state-transfer joiner, whose
  missing history is covered by the snapshot, and for origins
  (re)admitted in this very view, whose old stream was reset);
* **no delivery from departed members** — after a view change, a site
  may keep delivering a departed origin's *flushed* messages (at or
  below the highest flush target ever decided for it) but nothing
  beyond them.

Together with the cross-site agreement check of
:class:`~repro.monitors.ordering.GcsOrdering` this realizes the
"same-view members deliver the same message set" obligation: member
sets agree, every survivor reaches the common flush cut before
installing, and nothing outside the cut is ever delivered.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .base import Monitor, register_monitor

__all__ = ["ViewSynchrony"]


class ViewSynchrony(Monitor):
    """Same-view agreement, flush completeness, departed-origin fence."""

    name = "view-synchrony"
    #: View ids are per replica group (each fragment group runs its own
    #: view manager), so the agreement anchor is keyed by group too.
    fragment_aware = True

    def __init__(self) -> None:
        super().__init__()
        #: (group, view_id) -> (members, first installer) — the
        #: agreement anchor.
        self._views: Dict[
            Tuple[int, int], Tuple[Tuple[int, ...], int]
        ] = {}
        #: site -> members of its currently installed view.
        self._members: Dict[int, Tuple[int, ...]] = {}
        #: site -> origin -> highest flush target ever decided; the
        #: delivery allowance for origins that have since departed
        #: (accumulated max: rapid consecutive view changes must not
        #: shrink a previously granted allowance).
        self._allowance: Dict[int, Dict[int, int]] = {}
        #: sites between a rejoin and their next (merge-view) install.
        self._joining: Set[int] = set()
        self._agree_flagged: Set[int] = set()
        self._departed_flagged: Set[Tuple[int, int]] = set()

    def on_view_installed(
        self,
        site: int,
        view_id: int,
        members: Tuple[int, ...],
        joined: Tuple[int, ...],
        targets: Dict[int, int],
        contiguous: Dict[int, int],
    ) -> None:
        members = tuple(sorted(members))
        anchor = self._views.setdefault(
            (self.group_of(site), view_id), (members, site)
        )
        if anchor[0] != members and site not in self._agree_flagged:
            self._agree_flagged.add(site)
            self.emit(
                site,
                f"view {view_id} installed with members {members} but "
                f"{self.site_name(anchor[1])} installed it with "
                f"{anchor[0]}",
                seq=view_id,
            )
        was_joining = site in self._joining
        self._joining.discard(site)
        if not was_joining:
            for origin, target in sorted(targets.items()):
                if origin in joined:
                    continue  # old stream reset; snapshot covers it
                if contiguous.get(origin, 0) < target:
                    self.emit(
                        site,
                        f"view {view_id} installed before reaching the "
                        f"flush target for origin {origin}: received "
                        f"{contiguous.get(origin, 0)} of {target}",
                        seq=view_id,
                    )
        allowance = self._allowance.setdefault(site, {})
        for origin, target in targets.items():
            if target > allowance.get(origin, 0):
                allowance[origin] = target
        self._members[site] = members

    def on_ordered(
        self, site: int, global_seq: int, origin: int, origin_seq: int
    ) -> None:
        members = self._members.get(site)
        if members is None or origin in members:
            return
        if origin_seq <= self._allowance.get(site, {}).get(origin, 0):
            return  # flushed before the origin departed — legitimate
        key = (site, origin)
        if key not in self._departed_flagged:
            self._departed_flagged.add(key)
            self.emit(
                site,
                f"delivered message {origin_seq} from departed member "
                f"{origin} beyond its flush target",
                seq=global_seq,
            )

    def on_rejoin(self, site: int) -> None:
        # The restarted member's view state is wiped; judge it afresh
        # from the merge view it installs next.
        self._joining.add(site)
        self._members.pop(site, None)
        self._allowance.pop(site, None)


register_monitor("view-synchrony", ViewSynchrony)
