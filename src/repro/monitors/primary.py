"""Primary-component uniqueness (§3.4: at most one partition commits).

The dynamic primary-component rule the view layer enforces by
blocking: a member may only install a view containing a **majority of
its predecessor view** — so of any two disjoint successor components
at most one can continue, and chained majorities keep uniqueness
across cascading failures.  The monitor checks the rule at every
install and tracks the *lineage*: once a site installs a rogue view
(no predecessor majority), every view it chains from it is outside
the primary component until a state-transfer rejoin readmits the site
through the real group.

Commit-time checks close the loop from membership to the database:
nothing may commit while the site is partition-blocked, and nothing
may commit in a view outside the primary lineage — together, "at most
one partition commits".
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from .base import Monitor, register_monitor

__all__ = ["PrimaryComponent"]


class PrimaryComponent(Monitor):
    """No minority view installs; no commits outside the primary."""

    name = "primary-component"
    #: Majority chains are per replica group: a fragment group's views
    #: draw from its own member set, so the initial-view fallback is the
    #: group's members, not all sites.
    fragment_aware = True

    def __init__(self) -> None:
        super().__init__()
        #: site -> members of its last installed view; a missing key
        #: means "still in the initial view" (all sites), an explicit
        #: ``None`` means "unknown" (state wiped by a rejoin).
        self._members: Dict[int, Optional[Tuple[int, ...]]] = {}
        #: site -> False once the site's view lineage left the primary
        #: component; reset by a state-transfer rejoin.
        self._in_primary: Dict[int, bool] = {}
        self._commit_flagged: Set[Tuple[int, int, str]] = set()

    def _predecessor(self, site: int) -> Optional[Tuple[int, ...]]:
        if site in self._members:
            return self._members[site]
        if self._hub is not None:
            return self._hub.group_members(site)
        return None

    def on_view_installed(
        self,
        site: int,
        view_id: int,
        members: Tuple[int, ...],
        joined: Tuple[int, ...],
        targets: Dict[int, int],
        contiguous: Dict[int, int],
    ) -> None:
        prev = self._predecessor(site)
        if prev is not None:
            need = len(prev) // 2 + 1
            overlap = len(set(members) & set(prev))
            if overlap < need:
                self._in_primary[site] = False
                self.emit(
                    site,
                    f"view {view_id} {tuple(sorted(members))} installed "
                    f"without a majority of its predecessor {prev} "
                    f"({overlap} of the {need} required)",
                    seq=view_id,
                )
            elif self._in_primary.get(site, True):
                self._in_primary[site] = True
            # else: rogue lineage — a majority of a rogue view is still
            # outside the primary component.
        self._members[site] = tuple(sorted(members))

    def on_commit(self, site: int, commit_seq: int, tx_id: int) -> None:
        views = self._hub.views_of(site) if self._hub is not None else None
        view_id = views.view_id if views is not None else -1
        if views is not None and views.blocked:
            key = (site, view_id, "blocked")
            if key not in self._commit_flagged:
                self._commit_flagged.add(key)
                self.emit(
                    site,
                    f"committed tx {tx_id} while partition-blocked "
                    f"(outside any primary component)",
                    seq=commit_seq,
                )
        if not self._in_primary.get(site, True):
            key = (site, view_id, "minority")
            if key not in self._commit_flagged:
                self._commit_flagged.add(key)
                self.emit(
                    site,
                    f"committed tx {tx_id} in view {view_id}, which is "
                    f"outside the primary component",
                    seq=commit_seq,
                )

    def on_rejoin(self, site: int) -> None:
        # State transfer readmits the site through the real primary
        # component; its stale lineage verdict no longer applies.
        self._members[site] = None
        self._in_primary.pop(site, None)


register_monitor("primary-component", PrimaryComponent)
