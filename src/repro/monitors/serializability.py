"""Streaming one-copy-serializability certifier (§5.3, online).

The post-hoc :func:`repro.core.safety.check_consistency` condition,
maintained incrementally: every operational site must commit exactly
the same ``(commit_seq, tx_id)`` sequence, sites whose commit log is
non-operational (crashed, or mid-rejoin) only a *prefix* of it.

The monitor mirrors each site's commit log as decisions stream in and
compares every new entry against the other sites' logs at the same
position — so a disagreement is *detected* at the delivery that causes
it, and the violation artifact carries that simulated instant.
Confirmation is deferred to ``finalize()``: a minority partition may
legitimately commit a short divergent window before the group excludes
it, and those entries are wiped (and counted as *orphaned commits* by
the recovery metrics) when the site rejoins via state transfer — the
post-hoc check never sees them, and neither does this monitor's
verdict.  At end of run the recorded logs are checked with exactly the
:func:`check_consistency` rules, so the two certifiers agree verdict
for verdict (the property suite asserts this on randomized
interleavings); confirmed violations are stamped with the earliest
detection instant involving the offending site.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..core.safety import describe_divergence
from .base import Monitor, register_monitor

__all__ = ["OneCopySerializability"]


class OneCopySerializability(Monitor):
    """Cross-site commit-sequence agreement, crash-prefix aware."""

    name = "one-copy-sr"
    #: One-copy equivalence holds per replica group under partial
    #: replication: sites of different fragments legitimately commit
    #: disjoint sequences, so every comparison is scoped to the group.
    fragment_aware = True

    def __init__(self) -> None:
        super().__init__()
        #: site -> mirrored commit log, in decision order.
        self._logs: Dict[int, List[Tuple[int, int]]] = {}
        #: sites whose log is currently non-operational (crashed or
        #: mid-rejoin) — mirrors ``CommitLog.crashed`` exactly.
        self._crashed: Set[int] = set()
        #: (site_a, site_b) -> (sim_time, index) of the first observed
        #: disagreement between the pair (detection timestamps only;
        #: the verdict comes from the final logs).
        self._first_conflict: Dict[Tuple[int, int], Tuple[float, int]] = {}

    # -- streaming observation ------------------------------------------
    def on_commit(self, site: int, commit_seq: int, tx_id: int) -> None:
        entry = (commit_seq, tx_id)
        log = self._logs.setdefault(site, [])
        index = len(log)
        log.append(entry)
        group = self.group_of(site)
        for other, other_log in self._logs.items():
            if (
                other == site
                or len(other_log) <= index
                or self.group_of(other) != group
            ):
                continue
            if other_log[index] != entry:
                pair = (site, other) if site < other else (other, site)
                if pair not in self._first_conflict:
                    self._first_conflict[pair] = (self._now(), index)

    def on_crash(self, site: int) -> None:
        self._crashed.add(site)

    def on_rejoin(self, site: int) -> None:
        # Entries are kept for orphan accounting but the log counts as
        # non-operational until the snapshot installs.
        self._crashed.add(site)

    def on_snapshot_install(
        self, site: int, entries: Sequence[Tuple[int, int]]
    ) -> None:
        self._logs[site] = [tuple(entry) for entry in entries]
        self._crashed.discard(site)

    # -- verdict ---------------------------------------------------------
    def finalize(self) -> None:
        sites = sorted(set(self._names) | set(self._logs))
        groups: Dict[int, List[int]] = {}
        for site in sites:
            groups.setdefault(self.group_of(site), []).append(site)
        for group in sorted(groups):
            self._finalize_group(groups[group])

    def _finalize_group(self, sites: List[int]) -> None:
        """The :func:`check_consistency` rules over one replica group."""
        logs = {site: tuple(self._logs.get(site, ())) for site in sites}
        operational = [site for site in sites if site not in self._crashed]
        if not operational:
            return
        ref_site = operational[0]
        reference = logs[ref_site]
        for site in operational[1:]:
            if logs[site] != reference:
                self._emit_divergence(
                    site,
                    f"committed a different sequence than "
                    f"{self.site_name(ref_site)}: "
                    f"{describe_divergence(reference, logs[site])}",
                    reference,
                    logs[site],
                )
        for site in sites:
            if site not in self._crashed:
                continue
            seq = logs[site]
            if seq != reference[: len(seq)]:
                self._emit_divergence(
                    site,
                    f"non-operational log is not a prefix of the agreed "
                    f"sequence: "
                    f"{describe_divergence(reference[: len(seq)], seq)}",
                    reference,
                    seq,
                )

    def _emit_divergence(
        self,
        site: int,
        detail: str,
        reference: Tuple[Tuple[int, int], ...],
        log: Tuple[Tuple[int, int], ...],
    ) -> None:
        detected = min(
            (
                record
                for pair, record in self._first_conflict.items()
                if site in pair
            ),
            default=None,
        )
        index = next(
            (i for i, (a, b) in enumerate(zip(reference, log)) if a != b),
            min(len(reference), len(log)),
        )
        seq = log[index][0] if index < len(log) else -1
        self.emit(
            site,
            detail,
            seq=seq,
            sim_time=None if detected is None else detected[0],
        )


register_monitor("one-copy-sr", OneCopySerializability)
