"""Group communication prototype: reliable multicast, total order,
views, and rejoin via state transfer.

The atomic multicast protocol of paper §3.4 in two layers — a
view-synchronous reliable multicast (window-based receiver-initiated
retransmission, gossip stability detection, rate+share flow control) and
a fixed-sequencer total order — plus failure detection, view change,
and the state-transfer endpoint that readmits restarted members.

**Contract.** :class:`GroupCommunication` offers atomic multicast:
``multicast(payload)`` delivers the payload reliably, exactly once and
in the same total order at every operational member of the current
view, with view-change and rejoin-completion notifications.

**Invariants.**

* *Virtual synchrony* — members that install the same pair of
  consecutive views deliver the same set of messages between them;
* *Total order* — delivery order is a single global sequence; a
  message's position never changes once delivered anywhere;
* *Stability* — a message is garbage collected only after every
  operational member received it (so anyone can serve retransmissions
  until then);
* *Primary component* — a view can only shrink to a majority of its
  predecessor; members outside the primary component block rather than
  deliver;
* *Incarnation safety* — a rejoined member's FIFO numbering resumes
  above everything the group ever saw from its previous incarnations,
  and it delivers nothing until a state-transfer snapshot covers the
  garbage-collected history it can no longer fetch.
"""

from .config import GcsConfig
from .flowcontrol import TokenBucket
from .messages import marshal, unmarshal
from .reliable import ReliableMulticast
from .sequencer import TotalOrder
from .stability import StabilityState
from .stack import GroupCommunication
from .statetransfer import RecoveryEvent, StateTransfer
from .views import ViewManager
from .window import BufferPool, ReceiveWindow

__all__ = [
    "GcsConfig",
    "TokenBucket",
    "marshal",
    "unmarshal",
    "ReliableMulticast",
    "TotalOrder",
    "StabilityState",
    "GroupCommunication",
    "StateTransfer",
    "RecoveryEvent",
    "ViewManager",
    "BufferPool",
    "ReceiveWindow",
]
