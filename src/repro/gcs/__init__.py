"""Group communication prototype: reliable multicast, total order, views.

The atomic multicast protocol of paper §3.4 in two layers — a
view-synchronous reliable multicast (window-based receiver-initiated
retransmission, gossip stability detection, rate+share flow control) and
a fixed-sequencer total order — plus failure detection and view change.
"""

from .config import GcsConfig
from .flowcontrol import TokenBucket
from .messages import marshal, unmarshal
from .reliable import ReliableMulticast
from .sequencer import TotalOrder
from .stability import StabilityState
from .stack import GroupCommunication
from .views import ViewManager
from .window import BufferPool, ReceiveWindow

__all__ = [
    "GcsConfig",
    "TokenBucket",
    "marshal",
    "unmarshal",
    "ReliableMulticast",
    "TotalOrder",
    "StabilityState",
    "GroupCommunication",
    "ViewManager",
    "BufferPool",
    "ReceiveWindow",
]
