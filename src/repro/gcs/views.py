"""View synchrony: failure detection, consensus-style view agreement,
and the flush that preserves virtual synchrony across membership change
(paper §3.4: "View synchrony uses a consensus protocol and imposes a
negligible overhead during stable operation").

Protocol sketch (coordinator = lowest live member id):

1. heartbeats run continuously; silence beyond ``suspect_after`` marks a
   member suspected;
2. the coordinator multicasts ``PROPOSE(view+1, live members)`` and
   retransmits until every proposed member answers ``FLUSH_ACK`` with
   its per-origin contiguous reception vector and known total-order
   assignments;
3. the coordinator computes per-origin flush **targets** (element-wise
   max of the vectors — everything anyone FIFO-delivered) and multicasts
   ``DECIDE``;
4. each member gap-fills to the targets via NACKs served from peers'
   stability buffers, then installs the view deterministically (see
   :meth:`repro.gcs.sequencer.TotalOrder.install_view`).

A coordinator crash mid-change is survived: the next lowest live member
re-proposes the same (or a higher) view id and members re-answer.  The
implementation targets crash faults — the paper's §5.3 campaign — and
assumes suspicion timeouts are set above injected scheduling delays so
live members are never excluded (see GcsConfig.suspect_after).

Beyond the paper's crash-only model, the manager supports **rejoin**
(recovery and partition-heal fault actions):

* a restarted member announces itself by heartbeating ``view_id 0``
  after a silence period that guarantees its previous incarnation has
  been excluded; the coordinator proposes a merge view naming it in
  ``DECIDE.joined``;
* a joining member skips the flush gap-fill (history is garbage
  collected — unrecoverable by retransmission) and instead
  fast-forwards its receive windows to the flush targets, installs the
  view *gated*, and acquires a state-transfer snapshot before going
  live (:mod:`repro.gcs.statetransfer`);
* every member resumes the joiner's FIFO numbering above everything any
  previous incarnation ever used, so incarnations cannot collide in
  windows, buffers or total-order assignments;
* a **primary-component rule** guards partitions: views may only shrink
  to a majority of the previous view, and a member that cannot see a
  majority blocks (multicast frozen, delivery gated) until the
  partition heals — so a minority component can never commit.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.runtime_api import ProtocolRuntime
from .config import GcsConfig
from .messages import (
    DecideMsg,
    FlushAckMsg,
    HeartbeatMsg,
    ProposeMsg,
    marshal,
)
from .reliable import ReliableMulticast
from .sequencer import TotalOrder

__all__ = ["ViewManager"]

ViewChange = Callable[[int, Tuple[int, ...], Tuple[int, ...]], None]


class ViewManager:
    """One member's membership state machine."""

    STABLE = "stable"
    FLUSHING = "flushing"  # answered a proposal, waiting for DECIDE
    SYNCING = "syncing"  # gap-filling towards the decided targets
    JOINING = "joining"  # restarted; announcing for readmission

    def __init__(
        self,
        runtime: ProtocolRuntime,
        member_id: int,
        members: Dict[int, object],
        reliable: ReliableMulticast,
        total_order: TotalOrder,
        group_dest: object,
        config: Optional[GcsConfig] = None,
        on_view_change: Optional[ViewChange] = None,
    ):
        self.runtime = runtime
        self.member_id = member_id
        self.addresses = dict(members)
        self.reliable = reliable
        self.total_order = total_order
        self.group_dest = group_dest
        self.config = config or GcsConfig()
        self.on_view_change = on_view_change
        self.view_id = 1
        self.members: Tuple[int, ...] = tuple(sorted(members))
        self.state = self.STABLE
        #: True between a rejoin reset and the install of the merge view.
        self.joining = False
        #: True while this member cannot see a primary component (it
        #: froze multicast and gated delivery; heals on reconnection).
        self.blocked = False
        self.last_heard: Dict[int, float] = {}
        self.peer_view: Dict[int, int] = {m: 1 for m in self.members}
        #: view id stamped on the latest *heartbeat* from each member —
        #: a heartbeat stamped 0 announces a restarted member asking to
        #: be (re)admitted with empty state.
        self._heard_view: Dict[int, int] = {}
        self._silent_until = 0.0
        #: Invariant-monitoring probe (observe-only; None when off).
        self.monitor = None
        # coordinator-side proposal state
        self._proposal_view = 0
        self._proposal_members: Tuple[int, ...] = ()
        self._proposal_joined: Tuple[int, ...] = ()
        self._acks: Dict[int, FlushAckMsg] = {}
        # member-side decided state
        self._decided: Optional[DecideMsg] = None
        self._started = False
        #: Tick-chain generation: bumped on rejoin so timer chains from a
        #: previous incarnation (still pending when the site never
        #: crashed, e.g. partition heal) die instead of doubling up.
        self._epoch = 0
        self.stats = {
            "view_changes": 0,
            "proposals_sent": 0,
            "false_alarms": 0,
            "rejoins": 0,
            "blocked_periods": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._epoch += 1
        now = self.runtime.now()
        for member in self.members:
            self.last_heard[member] = now
        self.runtime.schedule(
            self.config.heartbeat_interval, self._heartbeat_tick, self._epoch
        )
        self.runtime.schedule(
            self.config.heartbeat_interval, self._suspicion_tick, self._epoch
        )

    def reset_for_rejoin(self, silent: bool = True) -> None:
        """Restart after a crash/partition with empty membership state.

        The member re-enters as an outsider: view id 0, no members, and
        (unless the caller *knows* the group already excluded us — e.g.
        the stack detected persistent higher-view traffic) a silence
        window long enough that the survivors are guaranteed to have
        excluded the previous incarnation before the first announcement
        heartbeat goes out (otherwise the old incarnation's windows at
        the survivors would collide with the fresh state).  Ticks
        restart via :meth:`start` — a crash killed the previous timer
        chains, and the epoch guard retires them otherwise.
        """
        self.view_id = 0
        self.members = ()
        self.state = self.JOINING
        self.joining = True
        self.blocked = False
        self.last_heard = {}
        self.peer_view = {}
        self._heard_view = {}
        self._silent_until = self.runtime.now() + (
            self.config.suspect_after + 4 * self.config.view_retransmit
            if silent
            else 0.0
        )
        self._proposal_view = 0
        self._proposal_members = ()
        self._proposal_joined = ()
        self._acks = {}
        self._decided = None
        self._started = False
        self.stats["rejoins"] += 1
        self.start()

    def note_heard(
        self, member: int, view_id: int, heartbeat: bool = False
    ) -> None:
        """Called by the stack on any reception physically from ``member``."""
        self.last_heard[member] = self.runtime.now()
        if view_id > self.peer_view.get(member, 0):
            self.peer_view[member] = view_id
        if heartbeat:
            self._heard_view[member] = view_id

    def alive_members(self) -> Tuple[int, ...]:
        threshold = self.runtime.now() - self.config.suspect_after
        return tuple(
            m
            for m in self.members
            if m == self.member_id or self.last_heard.get(m, 0.0) >= threshold
        )

    def majority(self) -> int:
        """Primary-component threshold: a majority of the current view."""
        return len(self.members) // 2 + 1

    def _join_candidates(self, alive: Tuple[int, ...]) -> Tuple[int, ...]:
        """Members announcing themselves for (re)admission with empty
        state: recently heard heartbeats stamped with view id 0, from a
        configured address, that the installed view does not already
        account for."""
        threshold = self.runtime.now() - self.config.suspect_after
        candidates = []
        for member, heard_at in self.last_heard.items():
            if member == self.member_id or heard_at < threshold:
                continue
            if member not in self.addresses:
                continue
            if self._heard_view.get(member) != 0:
                continue
            if member in self.members and self.peer_view.get(member, 0) >= self.view_id:
                continue  # already readmitted; stale heartbeat in flight
            candidates.append(member)
        return tuple(sorted(candidates))

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------
    def _heartbeat_tick(self, epoch: int = 0) -> None:
        if epoch and epoch != self._epoch:
            return  # superseded incarnation's chain
        if self.runtime.now() >= self._silent_until:
            beat = HeartbeatMsg(self.member_id, self.view_id)
            self.runtime.send(self.group_dest, marshal(beat))
        self.runtime.schedule(
            self.config.heartbeat_interval, self._heartbeat_tick, epoch
        )

    def _suspicion_tick(self, epoch: int = 0) -> None:
        if epoch and epoch != self._epoch:
            return  # superseded incarnation's chain
        self.runtime.schedule(
            self.config.heartbeat_interval, self._suspicion_tick, epoch
        )
        if self.joining:
            return  # nothing to detect: we are outside the membership
        alive = self.alive_members()
        suspected = set(self.members) - set(alive)
        self.reliable.suspected = set(suspected)
        if len(alive) < self.majority():
            # Minority side of a partition: block until it heals — a
            # non-primary component must not commit anything.
            if not self.blocked:
                self.blocked = True
                self.stats["blocked_periods"] += 1
                self.reliable.freeze()
                self.total_order.gated = True
            return
        if self.blocked:
            # Regained a primary component without a view change (the
            # cut healed before anyone was excluded): resume.
            self.blocked = False
            self.total_order.gated = False
            if self.state == self.STABLE:
                self.reliable.thaw()
            self.total_order._try_deliver()
        joiners = self._join_candidates(alive)
        if (suspected or joiners) and self.member_id == min(alive):
            self._initiate(alive, joiners)

    # ------------------------------------------------------------------
    # coordinator role
    # ------------------------------------------------------------------
    def _initiate(
        self, alive: Tuple[int, ...], joiners: Tuple[int, ...] = ()
    ) -> None:
        members = tuple(sorted(set(alive) | set(joiners)))
        proposed = max(self.view_id, self._proposal_view) + (
            0 if self._proposal_view > self.view_id else 1
        )
        if self._proposal_view >= proposed and self._proposal_members == members:
            return  # proposal already in flight
        self._proposal_view = proposed
        self._proposal_members = members
        self._proposal_joined = joiners
        self._acks = {self.member_id: self._own_ack(proposed)}
        self.reliable.freeze()
        self.state = self.FLUSHING
        self._send_propose()

    def _send_propose(self) -> None:
        if self._proposal_view <= self.view_id:
            return
        missing = [m for m in self._proposal_members if m not in self._acks]
        if not missing:
            return
        msg = ProposeMsg(self.member_id, self._proposal_view, self._proposal_members)
        self.runtime.send(self.group_dest, marshal(msg))
        self.stats["proposals_sent"] += 1
        self.runtime.schedule(self.config.view_retransmit, self._send_propose)

    def handle_flush_ack(self, msg: FlushAckMsg) -> None:
        if msg.view_id != self._proposal_view:
            return
        self._acks[msg.sender] = msg
        if all(m in self._acks for m in self._proposal_members):
            self._decide()

    def _decide(self) -> None:
        targets: Dict[int, int] = {}
        assignments: Dict[Tuple[int, int, int], None] = {}
        pending: Dict[Tuple[int, int], None] = {}
        for ack in self._acks.values():
            # A joiner's empty-state vector must not pull targets up or
            # down — it reports zeros, and max() ignores them.
            for origin, contiguous in ack.contiguous:
                if contiguous > targets.get(origin, 0):
                    targets[origin] = contiguous
            for triple in ack.assignments:
                assignments[triple] = None
            for key in ack.pending:
                pending[key] = None
        assigned_keys = {(origin, seq) for _, origin, seq in assignments}
        decide = DecideMsg(
            self.member_id,
            self._proposal_view,
            self._proposal_members,
            tuple(sorted(targets.items())),
            tuple(sorted(assignments)),
            tuple(sorted(k for k in pending if k not in assigned_keys)),
            self._proposal_joined,
        )
        self._decided = decide
        self.state = self.SYNCING
        self._broadcast_decide()
        self._sync_tick()

    def _broadcast_decide(self) -> None:
        decide = self._decided
        if decide is None or self.view_id >= decide.view_id and self._all_adopted():
            return
        self.runtime.send(self.group_dest, marshal(decide))
        self.runtime.schedule(self.config.view_retransmit, self._broadcast_decide)

    def _all_adopted(self) -> bool:
        decide = self._decided
        if decide is None:
            return True
        return all(
            self.peer_view.get(m, 0) >= decide.view_id for m in decide.members
        )

    # ------------------------------------------------------------------
    # member role
    # ------------------------------------------------------------------
    def handle_propose(self, msg: ProposeMsg) -> None:
        if msg.view_id <= self.view_id:
            return
        if self.member_id not in msg.members:
            return  # being excluded: wait it out, rejoin via state transfer
        self.reliable.freeze()
        if self.state == self.STABLE:
            self.state = self.FLUSHING
        ack = self._own_ack(msg.view_id)
        coordinator = self.addresses.get(msg.sender)
        if coordinator is not None:
            self.runtime.send(coordinator, marshal(ack))

    def handle_decide(self, msg: DecideMsg) -> None:
        if msg.view_id <= self.view_id:
            return
        if self.member_id not in msg.members:
            return
        self._decided = msg
        if self.joining:
            # A joiner has no history to gap-fill (it is unrecoverable by
            # retransmission anyway): fast-forward to the targets and
            # install gated; the state-transfer snapshot replaces the
            # skipped history.
            self._install(msg)
            return
        self.state = self.SYNCING
        # Redirect retransmission requests away from freshly (re)joined
        # origins: their new incarnation cannot serve its predecessor's
        # stream, but every survivor's stability buffer can.
        self.reliable.suspected |= set(msg.joined) - {self.member_id}
        self.total_order._adopt_assignments(msg.assignments)
        self._sync_tick()

    def _own_ack(self, proposed_view: int) -> FlushAckMsg:
        contiguous = tuple(sorted(self.reliable.contiguous_vector().items()))
        assignments = tuple(
            sorted(
                (g, origin, seq)
                for g, (origin, seq) in self.total_order.assignments.items()
            )
        )
        pending = tuple(
            sorted(
                key
                for key in self.total_order.held
                if key not in self.total_order._assigned
            )
        )
        return FlushAckMsg(
            self.member_id, proposed_view, contiguous, assignments, pending
        )

    # ------------------------------------------------------------------
    # sync phase
    # ------------------------------------------------------------------
    def _sync_tick(self) -> None:
        decide = self._decided
        if decide is None or self.state != self.SYNCING:
            return
        vector = self.reliable.contiguous_vector()
        behind = [
            (origin, target)
            for origin, target in decide.targets
            if vector.get(origin, 0) < target
        ]
        if not behind:
            self._install(decide)
            return
        for origin, target in behind:
            self.reliable.request_catchup(origin, target)
        self.runtime.schedule(self.config.view_retransmit, self._sync_tick)

    def maybe_complete_sync(self) -> None:
        """Cheap completion probe the stack calls on DATA receptions."""
        decide = self._decided
        if decide is None or self.state != self.SYNCING:
            return
        vector = self.reliable.contiguous_vector()
        if all(vector.get(o, 0) >= t for o, t in decide.targets):
            self._install(decide)

    def _install(self, decide: DecideMsg) -> None:
        if decide.view_id <= self.view_id:
            return
        was_joining = self.joining
        targets = dict(decide.targets)
        joined = tuple(m for m in decide.joined if m in decide.members)
        resume = self._resume_points(decide, joined)
        departed = set(self.members) - set(decide.members)
        self.view_id = decide.view_id
        self.members = tuple(sorted(decide.members))
        self.joining = False
        self.peer_view[self.member_id] = self.view_id
        addresses = {
            m: self.addresses[m] for m in self.members if m in self.addresses
        }
        for origin in departed:
            self.reliable.note_departed_top(origin, targets.get(origin, 0))
        self.reliable.reset_membership(addresses)
        if was_joining:
            # Our windows are empty: skip every origin's garbage-collected
            # history (the snapshot covers its effects) and resume our own
            # numbering above anything our previous incarnations used.
            for origin in self.members:
                self.reliable.fast_forward_origin(
                    origin, resume.get(origin, targets.get(origin, 0))
                )
        else:
            for origin in joined:
                # A (re)admitted origin restarts with empty state: drop
                # its old stream's window and expect its new incarnation
                # to number from above everything the group ever saw.
                self.reliable.reset_origin(origin)
                self.reliable.fast_forward_origin(origin, resume[origin])
                self.reliable.pool.purge_origin_above(origin, resume[origin])
            self.reliable.suspected -= set(joined)
        self.total_order.install_view(
            decide.view_id,
            self.members,
            targets,
            decide.assignments,
            decide.pending,
        )
        self.state = self.STABLE
        self._proposal_view = max(self._proposal_view, self.view_id)
        if not self.blocked:
            self.reliable.thaw()
        self.stats["view_changes"] += 1
        if self.monitor is not None:
            self.monitor.view(
                self.view_id,
                self.members,
                joined,
                targets,
                self.reliable.contiguous_vector(),
            )
        if self.on_view_change is not None:
            self.on_view_change(self.view_id, self.members, joined)

    @staticmethod
    def _resume_points(
        decide: DecideMsg, joined: Tuple[int, ...]
    ) -> Dict[int, int]:
        """Where a (re)joined origin's FIFO numbering resumes: above its
        flush target *and* above every sequence number any assignment
        ever referenced — deterministic from the DECIDE alone, so every
        member (including the joiner itself) computes the same point."""
        resume = {j: 0 for j in joined}
        targets = dict(decide.targets)
        for j in joined:
            resume[j] = targets.get(j, 0)
        for _, origin, seq in decide.assignments:
            if origin in resume and seq > resume[origin]:
                resume[origin] = seq
        return resume
