"""View synchrony: failure detection, consensus-style view agreement,
and the flush that preserves virtual synchrony across membership change
(paper §3.4: "View synchrony uses a consensus protocol and imposes a
negligible overhead during stable operation").

Protocol sketch (coordinator = lowest live member id):

1. heartbeats run continuously; silence beyond ``suspect_after`` marks a
   member suspected;
2. the coordinator multicasts ``PROPOSE(view+1, live members)`` and
   retransmits until every proposed member answers ``FLUSH_ACK`` with
   its per-origin contiguous reception vector and known total-order
   assignments;
3. the coordinator computes per-origin flush **targets** (element-wise
   max of the vectors — everything anyone FIFO-delivered) and multicasts
   ``DECIDE``;
4. each member gap-fills to the targets via NACKs served from peers'
   stability buffers, then installs the view deterministically (see
   :meth:`repro.gcs.sequencer.TotalOrder.install_view`).

A coordinator crash mid-change is survived: the next lowest live member
re-proposes the same (or a higher) view id and members re-answer.  The
implementation targets crash faults — the paper's §5.3 campaign — and
assumes suspicion timeouts are set above injected scheduling delays so
live members are never excluded (DESIGN.md §7).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.runtime_api import ProtocolRuntime
from .config import GcsConfig
from .messages import (
    DecideMsg,
    FlushAckMsg,
    HeartbeatMsg,
    ProposeMsg,
    marshal,
)
from .reliable import ReliableMulticast
from .sequencer import TotalOrder

__all__ = ["ViewManager"]

ViewChange = Callable[[int, Tuple[int, ...]], None]


class ViewManager:
    """One member's membership state machine."""

    STABLE = "stable"
    FLUSHING = "flushing"  # answered a proposal, waiting for DECIDE
    SYNCING = "syncing"  # gap-filling towards the decided targets

    def __init__(
        self,
        runtime: ProtocolRuntime,
        member_id: int,
        members: Dict[int, object],
        reliable: ReliableMulticast,
        total_order: TotalOrder,
        group_dest: object,
        config: Optional[GcsConfig] = None,
        on_view_change: Optional[ViewChange] = None,
    ):
        self.runtime = runtime
        self.member_id = member_id
        self.addresses = dict(members)
        self.reliable = reliable
        self.total_order = total_order
        self.group_dest = group_dest
        self.config = config or GcsConfig()
        self.on_view_change = on_view_change
        self.view_id = 1
        self.members: Tuple[int, ...] = tuple(sorted(members))
        self.state = self.STABLE
        self.last_heard: Dict[int, float] = {}
        self.peer_view: Dict[int, int] = {m: 1 for m in self.members}
        # coordinator-side proposal state
        self._proposal_view = 0
        self._proposal_members: Tuple[int, ...] = ()
        self._acks: Dict[int, FlushAckMsg] = {}
        # member-side decided state
        self._decided: Optional[DecideMsg] = None
        self._started = False
        self.stats = {"view_changes": 0, "proposals_sent": 0, "false_alarms": 0}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        now = self.runtime.now()
        for member in self.members:
            self.last_heard[member] = now
        self.runtime.schedule(self.config.heartbeat_interval, self._heartbeat_tick)
        self.runtime.schedule(self.config.heartbeat_interval, self._suspicion_tick)

    def note_heard(self, member: int, view_id: int) -> None:
        """Called by the stack on any reception physically from ``member``."""
        self.last_heard[member] = self.runtime.now()
        if view_id > self.peer_view.get(member, 0):
            self.peer_view[member] = view_id

    def alive_members(self) -> Tuple[int, ...]:
        threshold = self.runtime.now() - self.config.suspect_after
        return tuple(
            m
            for m in self.members
            if m == self.member_id or self.last_heard.get(m, 0.0) >= threshold
        )

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        beat = HeartbeatMsg(self.member_id, self.view_id)
        self.runtime.send(self.group_dest, marshal(beat))
        self.runtime.schedule(self.config.heartbeat_interval, self._heartbeat_tick)

    def _suspicion_tick(self) -> None:
        alive = self.alive_members()
        suspected = set(self.members) - set(alive)
        self.reliable.suspected = set(suspected)
        if suspected and self.member_id == min(alive):
            self._initiate(alive)
        self.runtime.schedule(self.config.heartbeat_interval, self._suspicion_tick)

    # ------------------------------------------------------------------
    # coordinator role
    # ------------------------------------------------------------------
    def _initiate(self, alive: Tuple[int, ...]) -> None:
        proposed = max(self.view_id, self._proposal_view) + (
            0 if self._proposal_view > self.view_id else 1
        )
        if self._proposal_view >= proposed and self._proposal_members == alive:
            return  # proposal already in flight
        self._proposal_view = proposed
        self._proposal_members = alive
        self._acks = {self.member_id: self._own_ack(proposed)}
        self.reliable.freeze()
        self.state = self.FLUSHING
        self._send_propose()

    def _send_propose(self) -> None:
        if self._proposal_view <= self.view_id:
            return
        missing = [m for m in self._proposal_members if m not in self._acks]
        if not missing:
            return
        msg = ProposeMsg(self.member_id, self._proposal_view, self._proposal_members)
        self.runtime.send(self.group_dest, marshal(msg))
        self.stats["proposals_sent"] += 1
        self.runtime.schedule(self.config.view_retransmit, self._send_propose)

    def handle_flush_ack(self, msg: FlushAckMsg) -> None:
        if msg.view_id != self._proposal_view:
            return
        self._acks[msg.sender] = msg
        if all(m in self._acks for m in self._proposal_members):
            self._decide()

    def _decide(self) -> None:
        targets: Dict[int, int] = {}
        assignments: Dict[Tuple[int, int, int], None] = {}
        for ack in self._acks.values():
            for origin, contiguous in ack.contiguous:
                if contiguous > targets.get(origin, 0):
                    targets[origin] = contiguous
            for triple in ack.assignments:
                assignments[triple] = None
        decide = DecideMsg(
            self.member_id,
            self._proposal_view,
            self._proposal_members,
            tuple(sorted(targets.items())),
            tuple(sorted(assignments)),
        )
        self._decided = decide
        self.state = self.SYNCING
        self._broadcast_decide()
        self._sync_tick()

    def _broadcast_decide(self) -> None:
        decide = self._decided
        if decide is None or self.view_id >= decide.view_id and self._all_adopted():
            return
        self.runtime.send(self.group_dest, marshal(decide))
        self.runtime.schedule(self.config.view_retransmit, self._broadcast_decide)

    def _all_adopted(self) -> bool:
        decide = self._decided
        if decide is None:
            return True
        return all(
            self.peer_view.get(m, 0) >= decide.view_id for m in decide.members
        )

    # ------------------------------------------------------------------
    # member role
    # ------------------------------------------------------------------
    def handle_propose(self, msg: ProposeMsg) -> None:
        if msg.view_id <= self.view_id:
            return
        if self.member_id not in msg.members:
            return  # we are being excluded; nothing useful to do (no rejoin)
        self.reliable.freeze()
        if self.state == self.STABLE:
            self.state = self.FLUSHING
        ack = self._own_ack(msg.view_id)
        coordinator = self.addresses.get(msg.sender)
        if coordinator is not None:
            self.runtime.send(coordinator, marshal(ack))

    def handle_decide(self, msg: DecideMsg) -> None:
        if msg.view_id <= self.view_id:
            return
        if self.member_id not in msg.members:
            return
        self._decided = msg
        self.state = self.SYNCING
        self.total_order._adopt_assignments(msg.assignments)
        self._sync_tick()

    def _own_ack(self, proposed_view: int) -> FlushAckMsg:
        contiguous = tuple(sorted(self.reliable.contiguous_vector().items()))
        assignments = tuple(
            sorted(
                (g, origin, seq)
                for g, (origin, seq) in self.total_order.assignments.items()
            )
        )
        return FlushAckMsg(self.member_id, proposed_view, contiguous, assignments)

    # ------------------------------------------------------------------
    # sync phase
    # ------------------------------------------------------------------
    def _sync_tick(self) -> None:
        decide = self._decided
        if decide is None or self.state != self.SYNCING:
            return
        vector = self.reliable.contiguous_vector()
        behind = [
            (origin, target)
            for origin, target in decide.targets
            if vector.get(origin, 0) < target
        ]
        if not behind:
            self._install(decide)
            return
        for origin, target in behind:
            self.reliable.request_catchup(origin, target)
        self.runtime.schedule(self.config.view_retransmit, self._sync_tick)

    def maybe_complete_sync(self) -> None:
        """Cheap completion probe the stack calls on DATA receptions."""
        decide = self._decided
        if decide is None or self.state != self.SYNCING:
            return
        vector = self.reliable.contiguous_vector()
        if all(vector.get(o, 0) >= t for o, t in decide.targets):
            self._install(decide)

    def _install(self, decide: DecideMsg) -> None:
        if decide.view_id <= self.view_id:
            return
        self.view_id = decide.view_id
        self.members = tuple(sorted(decide.members))
        self.peer_view[self.member_id] = self.view_id
        addresses = {
            m: self.addresses[m] for m in self.members if m in self.addresses
        }
        self.reliable.reset_membership(addresses)
        self.total_order.install_view(self.members, dict(decide.targets))
        self.state = self.STABLE
        self._proposal_view = max(self._proposal_view, self.view_id)
        self.reliable.thaw()
        self.stats["view_changes"] += 1
        if self.on_view_change is not None:
            self.on_view_change(self.view_id, self.members)
