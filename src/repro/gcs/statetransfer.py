"""View-synchronous state transfer: how a (re)joined member goes live.

A member admitted into a view with empty volatile state (named in
``DECIDE.joined``) cannot recover the group's history through
retransmission — stability detection garbage-collected it long ago.
Instead it acquires a **snapshot** from an established member and
replays only the traffic delivered after the snapshot's cut:

1. on installing the merge view the joiner's stack runs *gated*: the
   reliable and total-order layers accept and order new traffic
   normally (windows were fast-forwarded past the history), but nothing
   is delivered to the replication protocol;
2. the joiner unicasts ``STATE_REQ`` to the lowest established member
   and retries on a timer, rotating donors, until a complete snapshot
   arrives — so a donor crash mid-transfer only delays the rejoin;
3. the donor captures its snapshot synchronously inside the request's
   receive job (between total-order deliveries, so the cut is a
   consistent prefix), fragments it below the safe packet size and
   unicasts the ``STATE`` fragments;
4. the joiner reassembles, installs the snapshot (protocol metadata:
   commit log, certification position, apply watermark — plus the
   total-order delivery cut), opens the delivery gate, replays the
   buffered backlog in order, and reports itself **live**.

Fragments of one capture share a ``snapshot_id``; a retry triggers a
fresh capture and the joiner discards the stale partial one, which
keeps the protocol correct under message loss without per-fragment
acknowledgements.

Invariant: after the replay, the joiner's committed sequence is
bit-identical to the donor's at the cut plus the group's deliveries
after it — exactly what §5.3 demands of an operational site.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.runtime_api import ProtocolRuntime
from .config import GcsConfig
from .messages import StateMsg, StateReqMsg, marshal

__all__ = ["StateTransfer", "RecoveryEvent"]


@dataclass
class RecoveryEvent:
    """One rejoin's timeline and volume, for recovery-time metrics."""

    site: int
    #: Simulated time the rejoin was initiated (stack reset).
    started_at: float
    #: When the merge view installed at the joiner (-1: never happened).
    view_installed_at: float = -1.0
    #: When the snapshot finished installing and the member went live.
    live_at: float = -1.0
    snapshot_bytes: int = 0
    requests_sent: int = 0
    #: Ordered messages buffered while gated and replayed at install.
    backlog_replayed: int = 0
    #: Commits from the previous incarnation absent from the adopted
    #: snapshot (non-zero only for minority-partition rejoins).
    orphaned_commits: int = 0

    def time_to_rejoin(self) -> Optional[float]:
        if self.live_at < 0:
            return None
        return self.live_at - self.started_at

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RecoveryEvent":
        known = cls.__dataclass_fields__
        return cls(**{k: v for k, v in data.items() if k in known})


class StateTransfer:
    """One member's state-transfer endpoint (joiner and donor roles)."""

    def __init__(
        self,
        runtime: ProtocolRuntime,
        member_id: int,
        addresses: Dict[int, object],
        config: Optional[GcsConfig] = None,
    ):
        self.runtime = runtime
        self.member_id = member_id
        self.addresses = dict(addresses)
        self.config = config or GcsConfig()
        #: Donor side: returns the marshaled snapshot blob (None while
        #: we are not established — a joiner must refuse to donate).
        self.capture: Optional[Callable[[], Optional[bytes]]] = None
        #: Joiner side: installs a snapshot blob, returns the number of
        #: backlog messages replayed and the orphaned-commit count.
        self.install: Optional[Callable[[bytes], Tuple[int, int]]] = None
        #: Joiner side: ordered donor candidates (established first).
        self.candidates: Callable[[], Tuple[int, ...]] = lambda: ()
        #: Fired once the member is live again.
        self.on_live: Optional[Callable[[], None]] = None
        self.transferring = False
        self._epoch = 0
        self._next_snapshot_id = 0
        #: (donor, snapshot_id) -> fragment slots.  Keyed by donor too:
        #: every donor numbers its captures independently, and a retry
        #: that rotated donors must not mix two donors' fragments.
        self._fragments: Dict[Tuple[int, int], List[Optional[bytes]]] = {}
        self._event: Optional[RecoveryEvent] = None
        #: Completed rejoin timelines (recovery-time metrics).
        self.events: List[RecoveryEvent] = []
        self.stats = {
            "snapshots_served": 0,
            "snapshots_installed": 0,
            "fragments_sent": 0,
            "requests_refused": 0,
        }

    # ------------------------------------------------------------------
    # joiner role
    # ------------------------------------------------------------------
    def begin_rejoin(self) -> RecoveryEvent:
        """Open a rejoin timeline (called at the stack reset)."""
        self._epoch += 1
        self.transferring = False
        self._fragments.clear()
        self._event = RecoveryEvent(
            site=self.member_id, started_at=self.runtime.now()
        )
        self.events.append(self._event)
        return self._event

    def start_transfer(self) -> None:
        """Start requesting a snapshot (called at merge-view install)."""
        if self.transferring:
            return
        self.transferring = True
        if self._event is not None:
            self._event.view_installed_at = self.runtime.now()
        self._request_tick(self._epoch)

    def _request_tick(self, epoch: int) -> None:
        if epoch != self._epoch or not self.transferring:
            return
        candidates = self.candidates()
        if candidates:
            event = self._event
            donor = candidates[
                (event.requests_sent if event else 0) % len(candidates)
            ]
            address = self.addresses.get(donor)
            if address is not None:
                self.runtime.send(
                    address, marshal(StateReqMsg(self.member_id, 0))
                )
                if event is not None:
                    event.requests_sent += 1
        self.runtime.schedule(
            self.config.state_retry, self._request_tick, epoch
        )

    def handle_state(self, msg: StateMsg) -> None:
        """Collect one snapshot fragment; install when complete."""
        if not self.transferring:
            return
        key = (msg.sender, msg.snapshot_id)
        parts = self._fragments.get(key)
        if parts is None:
            # A fresh capture supersedes any stale partial one.
            self._fragments = {key: [None] * msg.frag_count}
            parts = self._fragments[key]
        if msg.frag_index >= len(parts):
            return  # corrupt/foreign fragment
        parts[msg.frag_index] = msg.payload
        if any(part is None for part in parts):
            return
        blob = b"".join(parts)
        self._fragments.clear()
        self.transferring = False
        self._epoch += 1  # stops the request tick
        assert self.install is not None, "no snapshot installer wired"
        backlog, orphans = self.install(blob)
        self.stats["snapshots_installed"] += 1
        if self._event is not None:
            self._event.live_at = self.runtime.now()
            self._event.snapshot_bytes = len(blob)
            self._event.backlog_replayed = backlog
            self._event.orphaned_commits = orphans
            self._event = None
        if self.on_live is not None:
            self.on_live()

    # ------------------------------------------------------------------
    # donor role
    # ------------------------------------------------------------------
    def handle_request(self, msg: StateReqMsg) -> None:
        """Serve a snapshot to a joiner (refused while not established)."""
        requester = self.addresses.get(msg.sender)
        if requester is None:
            return
        blob = self.capture() if self.capture is not None else None
        if blob is None:
            self.stats["requests_refused"] += 1
            return
        self._next_snapshot_id += 1
        snapshot_id = self._next_snapshot_id
        limit = self.config.max_packet
        chunks = [blob[i : i + limit] for i in range(0, len(blob), limit)] or [b""]
        for index, chunk in enumerate(chunks):
            self.runtime.send(
                requester,
                marshal(
                    StateMsg(
                        self.member_id,
                        0,
                        snapshot_id,
                        index,
                        len(chunks),
                        chunk,
                    )
                ),
            )
            self.stats["fragments_sent"] += 1
        self.stats["snapshots_served"] += 1
