"""Flow control: rate-based first phase, window-based second phase.

The paper's protocol combines a **rate-based** mechanism governing
initial transmissions with the **window/buffer-share** mechanism that
governs how many unstable messages a sender may have outstanding
(§3.4).  The rate limiter here is a token bucket: initial multicasts
spend one token each and tokens refill at the configured rate, so a
burst up to ``burst`` messages passes immediately and anything faster
is delayed — smoothing exactly the kind of load spike a busy sequencer
or a hot replica produces.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """Deterministic token bucket over the protocol runtime's clock."""

    def __init__(self, rate: float = 2000.0, burst: int = 64):
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last_refill = 0.0
        self.stats = {"passed": 0, "delayed": 0}

    def reserve(self, now: float) -> float:
        """Take one token; returns the delay (0 if it may go now).

        When the bucket is empty the caller must wait the returned delay
        before transmitting; the token is pre-charged so concurrent
        reservations queue up behind one another deterministically.
        """
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.stats["passed"] += 1
            return 0.0
        deficit = 1.0 - self._tokens
        self._tokens -= 1.0  # go negative: later callers wait longer
        self.stats["delayed"] += 1
        return deficit / self.rate

    def available(self, now: float) -> float:
        self._refill(now)
        return max(0.0, self._tokens)

    def _refill(self, now: float) -> None:
        if now <= self._last_refill:
            return
        self._tokens = min(
            float(self.burst),
            self._tokens + (now - self._last_refill) * self.rate,
        )
        self._last_refill = now
