"""Fixed-sequencer total order (paper §3.4, top layer).

One site — the lowest member id of the current view — issues sequence
numbers for messages; other sites buffer FIFO-delivered messages and
deliver them in the assigned global order.  View synchrony ensures a
single sequencer is easily chosen and replaced when it fails.

Assignments travel as SEQUENCE messages *through the reliable multicast
itself* (batched over a small window), which is exactly why the
sequencer multicasts far more messages than anyone else and is the first
to exhaust its buffer share when stability detection stalls under
random loss — the paper's §5.3 diagnosis, reproduced here measurably via
:attr:`ReliableMulticast.stats` and :attr:`TotalOrder.stats`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.runtime_api import ProtocolRuntime
from .config import GcsConfig
from .messages import SequenceMsg, marshal, unmarshal_cached
from .reliable import ReliableMulticast

__all__ = ["TotalOrder", "TAG_APP", "TAG_SEQ"]

#: Inner-payload tags: application data vs. sequencer assignments.
TAG_APP = 0
TAG_SEQ = 1

ToDeliver = Callable[[int, int, int, bytes], None]


class TotalOrder:
    """Total-order session on top of :class:`ReliableMulticast`."""

    def __init__(
        self,
        runtime: ProtocolRuntime,
        member_id: int,
        members: Tuple[int, ...],
        reliable: ReliableMulticast,
        config: Optional[GcsConfig] = None,
    ):
        self.runtime = runtime
        self.member_id = member_id
        self.members = tuple(sorted(members))
        self.reliable = reliable
        self.config = config or GcsConfig()
        reliable.on_fifo_deliver = self._on_fifo
        #: Callback: (global_seq, origin, origin_seq, app_payload).
        self.on_to_deliver: Optional[ToDeliver] = None
        #: The installed view this session is operating in; SEQUENCE
        #: messages are stamped with it so assignments racing a view
        #: change cannot leak stale global numbers into the new view.
        self.view_id = 1
        #: global_seq -> (origin, origin_seq); authoritative order.
        self.assignments: Dict[int, Tuple[int, int]] = {}
        #: (origin, origin_seq) -> app payload, held until ordered.
        self.held: Dict[Tuple[int, int], bytes] = {}
        self._assigned: set = set()  # (origin, seq) pairs already ordered
        self._next_deliver = 1
        self._next_global = 1
        #: While True (a state-transfer joiner before its snapshot is
        #: installed, or a member blocked in a minority partition) no
        #: message is delivered to the application; everything keeps
        #: accumulating in ``held``/``assignments``.
        self.gated = False
        self._batch: List[Tuple[int, int, int]] = []
        self._batch_timer_armed = False
        #: Invariant-monitoring probe (observe-only; None when off).
        self.monitor = None
        self.stats = {
            "to_delivered": 0,
            "sequence_msgs": 0,
            "max_hold": 0,
            "install_assigned": 0,
        }

    # ------------------------------------------------------------------
    @property
    def sequencer_id(self) -> int:
        return self.members[0]

    @property
    def is_sequencer(self) -> bool:
        return self.member_id == self.sequencer_id

    def multicast(self, payload: bytes) -> None:
        """Atomically multicast ``payload``: reliable + totally ordered."""
        self.reliable.multicast(bytes([TAG_APP]) + payload)

    def delivered_up_to(self) -> int:
        return self._next_deliver - 1

    # ------------------------------------------------------------------
    # FIFO stream from the reliable layer
    # ------------------------------------------------------------------
    def _on_fifo(self, origin: int, seq: int, payload: bytes) -> None:
        tag = payload[0]
        body = payload[1:]
        if tag == TAG_APP:
            self.held[(origin, seq)] = body
            if len(self.held) > self.stats["max_hold"]:
                self.stats["max_hold"] = len(self.held)
            if self.is_sequencer and (origin, seq) not in self._assigned:
                self._queue_assignment(origin, seq)
            self._try_deliver()
        elif tag == TAG_SEQ:
            # Every member decodes the same assignment batch; the memo
            # makes all but the first decode a dict probe.
            msg = unmarshal_cached(body)
            if msg.view_id < self.view_id:
                return  # stale assignments from a superseded view
            self._adopt_assignments(msg.assignments)
            self._try_deliver()

    # ------------------------------------------------------------------
    # sequencer role
    # ------------------------------------------------------------------
    def _queue_assignment(self, origin: int, seq: int) -> None:
        # _record_assignment advances _next_global past the new global.
        self._batch.append((self._next_global, origin, seq))
        self._record_assignment(self._next_global, origin, seq)
        if not self._batch_timer_armed:
            self._batch_timer_armed = True
            self.runtime.schedule(
                self.config.sequence_batch_interval, self._flush_batch
            )

    def _flush_batch(self) -> None:
        self._batch_timer_armed = False
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        msg = SequenceMsg(self.member_id, self.view_id, tuple(batch))
        self.reliable.multicast(bytes([TAG_SEQ]) + marshal(msg))
        self.stats["sequence_msgs"] += 1

    # ------------------------------------------------------------------
    # ordered delivery
    # ------------------------------------------------------------------
    def _adopt_assignments(
        self, triples: Tuple[Tuple[int, int, int], ...]
    ) -> None:
        for global_seq, origin, seq in triples:
            self._record_assignment(global_seq, origin, seq)

    def _record_assignment(self, global_seq: int, origin: int, seq: int) -> None:
        existing = self.assignments.get(global_seq)
        if existing is not None and existing != (origin, seq):
            raise AssertionError(
                f"member {self.member_id}: conflicting assignment for "
                f"global {global_seq}: {existing} vs {(origin, seq)}"
            )
        self.assignments[global_seq] = (origin, seq)
        self._assigned.add((origin, seq))
        # Non-sequencer members track the global counter so a later
        # sequencer handoff continues from the right number.
        if global_seq >= self._next_global:
            self._next_global = global_seq + 1

    def _try_deliver(self) -> None:
        if self.gated:
            return
        while True:
            key = self.assignments.get(self._next_deliver)
            if key is None:
                return
            payload = self.held.get(key)
            if payload is None:
                return
            del self.held[key]
            global_seq = self._next_deliver
            self._next_deliver += 1
            self.stats["to_delivered"] += 1
            if self.monitor is not None:
                self.monitor.ordered(global_seq, key[0], key[1])
            if self.on_to_deliver is not None:
                self.on_to_deliver(global_seq, key[0], key[1], payload)

    # ------------------------------------------------------------------
    # view-change hooks
    # ------------------------------------------------------------------
    def install_view(
        self,
        view_id: int,
        members: Tuple[int, ...],
        targets: Dict[int, int],
        decided: Tuple[Tuple[int, int, int], ...] = (),
        pending: Tuple[Tuple[int, int], ...] = (),
    ) -> None:
        """Adopt the new view after the flush completed.

        The flush guarantees every survivor holds the identical set of
        messages up to ``targets``, and ``decided`` — the DECIDE's
        assignment union — is the authoritative assignment knowledge of
        the new view.  Four deterministic steps run identically at every
        member (including a state-transfer joiner, whose only assignment
        knowledge *is* the DECIDE):

        1. **reconcile** — locally adopted assignments above the
           delivered prefix that are missing from the union (SEQUENCE
           messages racing the flush) are discarded, and the union is
           (re-)adopted, so every member's assignment state equals the
           union exactly;
        2. **drop** — assignments referencing messages beyond a departed
           origin's target are unrecoverable (nobody buffers the
           message) and are dropped;
        3. **compact** — global numbers above the delivered prefix are
           renumbered gap-free;
        4. **assign** — the flushed application messages the union left
           unassigned (the DECIDE's ``pending`` set) receive the next
           global numbers in (origin, seq) order, *locally at every
           member* — no SEQUENCE round-trip, and a joiner that cannot
           see the payloads still computes the same numbering.
        """
        departed = set(self.members) - set(members)
        self.members = tuple(sorted(members))
        self.view_id = view_id
        # 1. Reconcile with the authoritative union.
        union = set(decided)
        if decided:
            stale = [
                g
                for g, (origin, seq) in self.assignments.items()
                if g >= self._next_deliver and (g, origin, seq) not in union
            ]
            for g in stale:
                self._assigned.discard(self.assignments.pop(g))
            for g, origin, seq in decided:
                self._record_assignment(g, origin, seq)
        # 2. Drop assignments that can never be satisfied.
        droppable = [
            g
            for g, (origin, seq) in self.assignments.items()
            if origin in departed and seq > targets.get(origin, 0)
        ]
        for g in droppable:
            origin_seq = self.assignments.pop(g)
            self._assigned.discard(origin_seq)
        # 3. Compact global numbers above the delivered prefix.
        kept = sorted(g for g in self.assignments if g >= self._next_deliver)
        remap: Dict[int, Tuple[int, int]] = {}
        next_global = self._next_deliver
        for g in kept:
            remap[next_global] = self.assignments.pop(g)
            next_global += 1
        self.assignments.update(remap)
        self._next_global = next_global
        # Forget held messages from departed origins beyond their target.
        for (origin, seq) in list(self.held):
            if origin in departed and seq > targets.get(origin, 0):
                del self.held[(origin, seq)]
        # 4. Deterministic assignment of flushed-but-unassigned app
        #    messages.  Unrecoverable ones (departed origin beyond its
        #    target) are skipped like step 2 skips their assignments.
        for origin, seq in sorted(pending):
            if origin in departed and seq > targets.get(origin, 0):
                continue
            if (origin, seq) not in self._assigned:
                self._record_assignment(self._next_global, origin, seq)
                self.stats["install_assigned"] += 1
        self._try_deliver()

    # ------------------------------------------------------------------
    # rejoin (state transfer)
    # ------------------------------------------------------------------
    def reset_for_rejoin(self) -> None:
        """Restart with empty volatile state, gated: assignments and
        payloads accumulate from the merge view's DECIDE onwards, but
        nothing is delivered until :meth:`open_gate` replays the backlog
        above the snapshot's cut."""
        self.view_id = 0
        self.assignments = {}
        self.held = {}
        self._assigned = set()
        self._next_deliver = 1
        self._next_global = 1
        self.gated = True
        self._batch = []
        self._batch_timer_armed = False

    def open_gate(self, next_deliver: int) -> int:
        """Adopt the snapshot's delivery cut and replay the backlog.

        Everything the group delivered before ``next_deliver`` is
        covered by the snapshot; buffered traffic at or above it is
        delivered now, in order.  Returns the number of backlog
        messages replayed."""
        before = self.stats["to_delivered"]
        if next_deliver > self._next_deliver:
            # Payloads at globals below the cut were delivered inside
            # the snapshot; drop them from the hold buffer.
            for g in range(self._next_deliver, next_deliver):
                key = self.assignments.get(g)
                if key is not None:
                    self.held.pop(key, None)
            self._next_deliver = next_deliver
        if self._next_global < self._next_deliver:
            self._next_global = self._next_deliver
        self.gated = False
        self._try_deliver()
        return self.stats["to_delivered"] - before
