"""The assembled group communication stack (paper §3.4).

:class:`GroupCommunication` is the facade the DBSM replica uses: an
**atomic multicast** primitive (reliable + totally ordered) plus view
change notifications.  It wires together the reliable multicast, the
fixed-sequencer total order, gossip stability detection and the view
manager, and dispatches incoming datagrams by wire type.

Application messages larger than the protocol's safe packet size are
fragmented here and reassembled after total-order delivery: fragments
receive consecutive positions in the global order, and since every
member sees the same order, every member completes each message at the
same point in the delivery sequence — atomicity is preserved.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple

from ..core.runtime_api import ProtocolRuntime
from .config import GcsConfig
from .messages import (
    DATA,
    DECIDE,
    FLUSH_ACK,
    HEARTBEAT,
    NACK,
    PROPOSE,
    SEQUENCE,
    STABILITY,
    MarshalError,
    marshal,
    unmarshal,
)
from .reliable import ReliableMulticast
from .sequencer import TotalOrder
from .stability import StabilityState
from .views import ViewManager

__all__ = ["GroupCommunication"]

#: Fragment header: message group id, fragment index, fragment count.
_FRAG = struct.Struct("<QHH")

Deliver = Callable[[int, int, bytes], None]
ViewChange = Callable[[int, Tuple[int, ...]], None]


class GroupCommunication:
    """Atomic multicast endpoint for one group member."""

    def __init__(
        self,
        runtime: ProtocolRuntime,
        member_id: int,
        members: Dict[int, object],
        group_dest: object,
        config: Optional[GcsConfig] = None,
        endpoint_ids: Optional[Dict[object, int]] = None,
    ):
        self.runtime = runtime
        self.member_id = member_id
        self.config = config or GcsConfig()
        self.reliable = ReliableMulticast(
            runtime, member_id, members, group_dest, self.config
        )
        self.total_order = TotalOrder(
            runtime, member_id, tuple(members), self.reliable, self.config
        )
        self.stability = StabilityState(member_id, tuple(members))
        self.views = ViewManager(
            runtime,
            member_id,
            members,
            self.reliable,
            self.total_order,
            group_dest,
            self.config,
            on_view_change=self._view_installed,
        )
        #: Application callback: (global_seq, origin, payload).
        self.on_deliver: Optional[Deliver] = None
        #: Application callback: (view_id, members).
        self.on_view_change: Optional[ViewChange] = None
        self._endpoint_ids = dict(endpoint_ids or {})
        self._frag_group = 0
        self._reassembly: Dict[Tuple[int, int], list] = {}
        self._started = False
        self.stats = {"fragments_sent": 0, "messages_multicast": 0, "delivered": 0}
        self.total_order.on_to_deliver = self._on_ordered
        runtime.set_receiver(self._on_wire)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeats and stability gossip."""
        if self._started:
            return
        self._started = True
        self.views.start()
        self.runtime.schedule(self.config.stability_interval, self._stability_tick)

    @property
    def view_id(self) -> int:
        return self.views.view_id

    @property
    def members(self) -> Tuple[int, ...]:
        return self.views.members

    @property
    def is_sequencer(self) -> bool:
        return self.total_order.is_sequencer

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def multicast(self, payload: bytes) -> None:
        """Atomically multicast ``payload`` to the group.

        Large payloads are fragmented below the safe packet size; the
        group delivers the reassembled message exactly once, in total
        order, at every operational member."""
        self.stats["messages_multicast"] += 1
        limit = self.config.max_packet
        if len(payload) <= limit:
            self.total_order.multicast(_FRAG.pack(0, 0, 1) + payload)
            return
        self._frag_group += 1
        chunks = [payload[i : i + limit] for i in range(0, len(payload), limit)]
        for index, chunk in enumerate(chunks):
            header = _FRAG.pack(self._frag_group, index, len(chunks))
            self.total_order.multicast(header + chunk)
            self.stats["fragments_sent"] += 1

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_wire(self, source: object, buffer: bytes) -> None:
        try:
            msg = unmarshal(buffer)
        except MarshalError:
            return  # corrupt datagram: drop, reliability recovers
        physical = self._endpoint_ids.get(source)
        if physical is not None:
            self.views.note_heard(physical, msg.view_id)
        kind = msg.msg_type
        if kind == DATA:
            self.reliable.handle_data(msg)
            self.views.maybe_complete_sync()
        elif kind == NACK:
            self.reliable.handle_nack(msg)
        elif kind == STABILITY:
            self.stability.merge(msg)
            self._collect()
            self._catchup_from_gossip(msg)
        elif kind == HEARTBEAT:
            pass  # note_heard above is the whole effect
        elif kind == PROPOSE:
            self.views.handle_propose(msg)
        elif kind == FLUSH_ACK:
            self.views.handle_flush_ack(msg)
        elif kind == DECIDE:
            self.views.handle_decide(msg)

    def _on_ordered(self, global_seq: int, origin: int, seq: int, payload: bytes) -> None:
        group, index, count = _FRAG.unpack_from(payload)
        body = payload[_FRAG.size :]
        if count == 1:
            self._deliver(global_seq, origin, body)
            return
        key = (origin, group)
        parts = self._reassembly.setdefault(key, [None] * count)
        parts[index] = body
        if all(part is not None for part in parts):
            del self._reassembly[key]
            self._deliver(global_seq, origin, b"".join(parts))

    def _deliver(self, global_seq: int, origin: int, payload: bytes) -> None:
        self.stats["delivered"] += 1
        if self.on_deliver is not None:
            self.on_deliver(global_seq, origin, payload)

    # ------------------------------------------------------------------
    # stability gossip
    # ------------------------------------------------------------------
    def _stability_tick(self) -> None:
        self.stability.vote(self.reliable.contiguous_vector())
        self._collect()
        snapshot = self.stability.snapshot()
        stamped = type(snapshot)(
            sender=snapshot.sender,
            view_id=self.views.view_id,
            round_id=snapshot.round_id,
            stable=snapshot.stable,
            voted=snapshot.voted,
            mins=snapshot.mins,
        )
        self.runtime.send(self.reliable.group_dest, marshal(stamped))
        self.runtime.schedule(self.config.stability_interval, self._stability_tick)

    def _collect(self) -> None:
        self.reliable.collect_stable(self.stability.stable)

    def _catchup_from_gossip(self, msg) -> None:
        """Tail-loss detection: gossip reveals sequence numbers peers
        have received that we never saw.  Gap-driven NACKs only cover
        holes *below* a later arrival; when the newest messages from an
        origin are lost there is no later arrival, and this — learning
        reception state from the stability rounds — is what recovers
        them (Guo's protocol uses its gossip the same way)."""
        members = self.stability.members
        own = self.reliable.contiguous_vector()
        for slot, origin in enumerate(members):
            if slot >= len(msg.mins):
                break
            peer_has = msg.mins[slot]
            if peer_has >= (1 << 62):  # neutral element: peer not voted
                continue
            if peer_has > own.get(origin, 0):
                self.reliable.request_catchup(origin, peer_has)

    # ------------------------------------------------------------------
    def _view_installed(self, view_id: int, members: Tuple[int, ...]) -> None:
        self.stability.reset_membership(members)
        if self.on_view_change is not None:
            self.on_view_change(view_id, members)
