"""The assembled group communication stack (paper §3.4).

:class:`GroupCommunication` is the facade the replication protocols
use: an **atomic multicast** primitive (reliable + totally ordered),
view change notifications, and the rejoin/state-transfer machinery.  It
wires together the reliable multicast, the fixed-sequencer total order,
gossip stability detection, the view manager and the state-transfer
endpoint, and dispatches incoming datagrams by wire type.

Application messages larger than the protocol's safe packet size are
fragmented here and reassembled after total-order delivery: fragments
receive consecutive positions in the global order, and since every
member sees the same order, every member completes each message at the
same point in the delivery sequence — atomicity is preserved.

Rejoin support (see :mod:`repro.gcs.statetransfer`): :meth:`rejoin`
resets the stack to an empty-state outsider that announces itself and
re-enters through a merge view; the snapshot a donor serves is composed
here (the total-order delivery cut) plus whatever the replication
protocol contributes through :attr:`snapshot_provider` /
:attr:`snapshot_installer`.
"""

from __future__ import annotations

import pickle
import struct
from typing import Callable, Dict, Optional, Tuple

from ..core.runtime_api import ProtocolRuntime
from .config import GcsConfig
from .messages import (
    DATA,
    DECIDE,
    FLUSH_ACK,
    HEARTBEAT,
    NACK,
    PROPOSE,
    SEQUENCE,
    STABILITY,
    STATE,
    STATE_REQ,
    MarshalError,
    marshal,
    unmarshal_cached,
)
from .reliable import ReliableMulticast
from .sequencer import TotalOrder
from .stability import StabilityState
from .statetransfer import StateTransfer
from .views import ViewManager

__all__ = ["GroupCommunication"]

#: Fragment header: message group id, fragment index, fragment count.
_FRAG = struct.Struct("<QHH")

Deliver = Callable[[int, int, bytes], None]
ViewChange = Callable[[int, Tuple[int, ...]], None]


class GroupCommunication:
    """Atomic multicast endpoint for one group member."""

    def __init__(
        self,
        runtime: ProtocolRuntime,
        member_id: int,
        members: Dict[int, object],
        group_dest: object,
        config: Optional[GcsConfig] = None,
        endpoint_ids: Optional[Dict[object, int]] = None,
    ):
        self.runtime = runtime
        self.member_id = member_id
        self.config = config or GcsConfig()
        self.reliable = ReliableMulticast(
            runtime, member_id, members, group_dest, self.config
        )
        self.total_order = TotalOrder(
            runtime, member_id, tuple(members), self.reliable, self.config
        )
        self.stability = StabilityState(member_id, tuple(members))
        self.views = ViewManager(
            runtime,
            member_id,
            members,
            self.reliable,
            self.total_order,
            group_dest,
            self.config,
            on_view_change=self._view_installed,
        )
        self.transfer = StateTransfer(
            runtime, member_id, members, self.config
        )
        self.transfer.capture = self._capture_snapshot
        self.transfer.install = self._install_snapshot
        self.transfer.candidates = self._donor_candidates
        self.transfer.on_live = self._on_live
        #: Application callback: (global_seq, origin, payload).
        self.on_deliver: Optional[Deliver] = None
        #: Invariant-monitoring probe (observe-only; None when off).
        self.monitor = None
        #: Application callback: (view_id, members).
        self.on_view_change: Optional[ViewChange] = None
        #: Replication-protocol hooks for state transfer: the provider
        #: returns the protocol's snapshot metadata (a plain dict), the
        #: installer adopts one and returns its orphaned-commit count.
        self.snapshot_provider: Optional[Callable[[], Dict[str, object]]] = None
        self.snapshot_installer: Optional[
            Callable[[Dict[str, object]], int]
        ] = None
        #: Fired when a rejoin completes (snapshot installed, backlog
        #: replayed, member live).
        self.on_live: Optional[Callable[[], None]] = None
        #: Fired when the stack discovers the group excluded this member
        #: while it was alive (partition healed, false suspicion): the
        #: owner must reset the replication protocol and call
        #: ``rejoin(silent=False)``.
        self.on_excluded: Optional[Callable[[], None]] = None
        self._outdated_since: Optional[float] = None
        self._endpoint_ids = dict(endpoint_ids or {})
        self._frag_group = 0
        self._reassembly: Dict[Tuple[int, int], list] = {}
        self._started = False
        self._epoch = 0
        self._last_joined: Tuple[int, ...] = ()
        self.stats = {
            "fragments_sent": 0,
            "messages_multicast": 0,
            "delivered": 0,
            "rejoins": 0,
        }
        self.total_order.on_to_deliver = self._on_ordered
        runtime.set_receiver(self._on_wire)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeats and stability gossip."""
        if self._started:
            return
        self._started = True
        self._epoch += 1
        self.views.start()
        self.runtime.schedule(
            self.config.stability_interval, self._stability_tick, self._epoch
        )

    def rejoin(self, silent: bool = True) -> None:
        """Reset to an empty-state outsider and re-enter the group.

        The volatile protocol state of the previous incarnation —
        windows, buffers, held messages, assignments, membership — is
        discarded (a restarted process has none of it); the member
        announces itself, re-enters through a merge view with its
        receive windows fast-forwarded past the garbage-collected
        history, and goes live once a state-transfer snapshot covers
        that history's effects.  ``silent=False`` skips the announcement
        silence window — only valid when the group has provably already
        excluded this member (the exclusion-detection path).
        """
        self.stats["rejoins"] += 1
        self._reassembly.clear()
        self._outdated_since = None
        self.reliable.reset_for_rejoin(self.views.addresses)
        self.total_order.reset_for_rejoin()
        self.stability = StabilityState(self.member_id, (self.member_id,))
        self.transfer.begin_rejoin()
        self.views.reset_for_rejoin(silent=silent)
        self._started = False
        self.start()

    @property
    def view_id(self) -> int:
        return self.views.view_id

    @property
    def members(self) -> Tuple[int, ...]:
        return self.views.members

    @property
    def is_sequencer(self) -> bool:
        return self.total_order.is_sequencer

    @property
    def live(self) -> bool:
        """False while this member is (re)joining: between a
        :meth:`rejoin` and the completion of its state transfer the
        stack orders traffic but delivers nothing."""
        return not (self.views.joining or self.transfer.transferring)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def multicast(self, payload: bytes) -> None:
        """Atomically multicast ``payload`` to the group.

        Large payloads are fragmented below the safe packet size; the
        group delivers the reassembled message exactly once, in total
        order, at every operational member."""
        self.stats["messages_multicast"] += 1
        limit = self.config.max_packet
        if len(payload) <= limit:
            self.total_order.multicast(_FRAG.pack(0, 0, 1) + payload)
            return
        self._frag_group += 1
        chunks = [payload[i : i + limit] for i in range(0, len(payload), limit)]
        for index, chunk in enumerate(chunks):
            header = _FRAG.pack(self._frag_group, index, len(chunks))
            self.total_order.multicast(header + chunk)
            self.stats["fragments_sent"] += 1

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_wire(self, source: object, buffer: bytes) -> None:
        try:
            # Cached decode: the same multicast buffer arrives at every
            # member, so only the first receiver pays for the parse.
            msg = unmarshal_cached(buffer)
        except MarshalError:
            return  # corrupt datagram: drop, reliability recovers
        kind = msg.msg_type
        physical = self._endpoint_ids.get(source)
        if physical is not None:
            self.views.note_heard(
                physical, msg.view_id, heartbeat=(kind == HEARTBEAT)
            )
            if self._detect_exclusion(msg.view_id):
                return  # traffic from a view we are not part of
        if self.views.joining and kind in (DATA, NACK, STABILITY):
            # An outsider has no window/round context for group traffic;
            # it only speaks the membership and state-transfer protocols
            # until the merge view installs.
            return
        if kind == DATA:
            self.reliable.handle_data(msg)
            self.views.maybe_complete_sync()
        elif kind == NACK:
            self.reliable.handle_nack(msg)
        elif kind == STABILITY:
            self.stability.merge(msg)
            self._collect()
            self._catchup_from_gossip(msg)
        elif kind == HEARTBEAT:
            pass  # note_heard above is the whole effect
        elif kind == PROPOSE:
            self.views.handle_propose(msg)
        elif kind == FLUSH_ACK:
            self.views.handle_flush_ack(msg)
        elif kind == DECIDE:
            self.views.handle_decide(msg)
        elif kind == STATE_REQ:
            self.transfer.handle_request(msg)
        elif kind == STATE:
            self.transfer.handle_state(msg)

    def _detect_exclusion(self, peer_view_id: int) -> bool:
        """Exclusion detection: a *member* of a higher view always ends
        up installing it (the coordinator retransmits the DECIDE until
        every member adopts), so persistently hearing higher-view
        traffic while stable — with no view change of our own in
        progress — proves the group excluded us while we were alive
        (partition healed, false suspicion).  Triggers ``on_excluded``
        so the owner resets us into the rejoin path."""
        views = self.views
        if (
            peer_view_id <= views.view_id
            or views.joining
            or views.state != ViewManager.STABLE
        ):
            return False
        now = self.runtime.now()
        if self._outdated_since is None:
            self._outdated_since = now
            return False
        if now - self._outdated_since <= self.config.suspect_after:
            return False
        self._outdated_since = None
        if self.on_excluded is not None:
            self.on_excluded()
            return True
        return False

    def _on_ordered(self, global_seq: int, origin: int, seq: int, payload: bytes) -> None:
        group, index, count = _FRAG.unpack_from(payload)
        body = payload[_FRAG.size :]
        if count == 1:
            self._deliver(global_seq, origin, body)
            return
        key = (origin, group)
        parts = self._reassembly.setdefault(key, [None] * count)
        parts[index] = body
        if all(part is not None for part in parts):
            del self._reassembly[key]
            self._deliver(global_seq, origin, b"".join(parts))

    def _deliver(self, global_seq: int, origin: int, payload: bytes) -> None:
        self.stats["delivered"] += 1
        if self.monitor is not None:
            self.monitor.deliver(global_seq, origin)
        if self.on_deliver is not None:
            self.on_deliver(global_seq, origin, payload)

    # ------------------------------------------------------------------
    # stability gossip
    # ------------------------------------------------------------------
    def _stability_tick(self, epoch: int = 0) -> None:
        if epoch and epoch != self._epoch:
            return  # superseded incarnation's chain
        self.runtime.schedule(
            self.config.stability_interval, self._stability_tick, epoch
        )
        if self.views.joining:
            return  # outsiders have no reception state to gossip
        self.stability.vote(self.reliable.contiguous_vector())
        self._collect()
        snapshot = self.stability.snapshot()
        stamped = type(snapshot)(
            sender=snapshot.sender,
            view_id=self.views.view_id,
            round_id=snapshot.round_id,
            stable=snapshot.stable,
            voted=snapshot.voted,
            mins=snapshot.mins,
        )
        self.runtime.send(self.reliable.group_dest, marshal(stamped))

    def _collect(self) -> None:
        self.reliable.collect_stable(self.stability.stable)

    def _catchup_from_gossip(self, msg) -> None:
        """Tail-loss detection: gossip reveals sequence numbers peers
        have received that we never saw.  Gap-driven NACKs only cover
        holes *below* a later arrival; when the newest messages from an
        origin are lost there is no later arrival, and this — learning
        reception state from the stability rounds — is what recovers
        them (Guo's protocol uses its gossip the same way)."""
        members = self.stability.members
        own = self.reliable.contiguous_vector()
        for slot, origin in enumerate(members):
            if slot >= len(msg.mins):
                break
            peer_has = msg.mins[slot]
            if peer_has >= (1 << 62):  # neutral element: peer not voted
                continue
            if peer_has > own.get(origin, 0):
                self.reliable.request_catchup(origin, peer_has)

    # ------------------------------------------------------------------
    def _view_installed(
        self, view_id: int, members: Tuple[int, ...], joined: Tuple[int, ...]
    ) -> None:
        self._last_joined = joined
        self._outdated_since = None
        self.stability.reset_membership(members)
        if self.member_id in joined:
            self.transfer.start_transfer()
        if self.on_view_change is not None:
            self.on_view_change(view_id, members)

    # ------------------------------------------------------------------
    # state transfer (rejoin)
    # ------------------------------------------------------------------
    def _donor_candidates(self) -> Tuple[int, ...]:
        """Donor preference order: established members first, freshly
        joined ones (who would refuse) last."""
        members = [m for m in self.views.members if m != self.member_id]
        established = [m for m in members if m not in self._last_joined]
        joined = [m for m in members if m in self._last_joined]
        return tuple(established + joined)

    def _capture_snapshot(self) -> Optional[bytes]:
        """Donor side: a consistent cut of this member's delivered state.

        Runs synchronously inside the STATE_REQ receive job — between
        total-order deliveries — so the protocol metadata corresponds
        exactly to the delivery position.  A member that is itself
        (re)joining refuses (returns None)."""
        if self.views.joining or self.total_order.gated:
            return None
        if self.snapshot_provider is None:
            return None
        state = {
            "next_deliver": self.total_order._next_deliver,
            "protocol": self.snapshot_provider(),
        }
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    def _install_snapshot(self, blob: bytes) -> Tuple[int, int]:
        """Joiner side: adopt the snapshot, open the delivery gate and
        replay the buffered backlog.  Returns (backlog, orphans)."""
        state = pickle.loads(blob)
        orphans = 0
        if self.snapshot_installer is not None:
            orphans = self.snapshot_installer(state["protocol"])
        backlog = self.total_order.open_gate(int(state["next_deliver"]))
        return backlog, orphans

    def _on_live(self) -> None:
        if self.on_live is not None:
            self.on_live()
