"""Tunables of the group communication prototype.

Defaults are calibrated for the paper's LAN scenarios (§4.1, §5): a
100 Mbit/s switched Ethernet, packets restricted to a safe size below
the Ethernet MTU (§4.2), NACK timers in the tens of milliseconds, and a
stability-gossip period long enough that its traffic is negligible in
steady state yet short enough to keep buffers small.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["GcsConfig"]


@dataclass
class GcsConfig:
    """Knobs for the reliable/total-order/membership stack."""

    #: Per-origin share of the unstable-message buffer pool (§5.3).  When
    #: a sender's share is exhausted its new multicasts wait for garbage
    #: collection — increasing this mitigates sequencer blocking.
    buffer_share: int = 64
    #: Receiver-initiated retransmission timer (seconds): how long a gap
    #: may stand before a NACK is sent to the origin.
    nack_timeout: float = 0.080
    #: Retransmission request ceiling per NACK message.
    nack_batch: int = 32
    #: Stability gossip period (seconds).
    stability_interval: float = 0.120
    #: CPU charged for processing one NACK (buffer lookups, resend path)
    #: plus per requested message.  Calibrated so protocol CPU under 5 %
    #: random loss lands near the paper's Figure 7(c) (~1.5x fault-free).
    nack_processing_cost: float = 250e-6
    nack_per_message_cost: float = 60e-6
    #: CPU charged on receiving a retransmitted message (out-of-order
    #: reordering path of the prototype).
    retransmit_processing_cost: float = 150e-6
    #: Rate-based flow control: initial transmissions per second.
    send_rate: float = 4000.0
    #: Token-bucket burst allowance (messages).
    send_burst: int = 64
    #: Sequencer batching window (seconds): assignments accumulated for
    #: this long ship in one SEQUENCE message.
    sequence_batch_interval: float = 0.002
    #: Failure-detector heartbeat period (seconds).
    heartbeat_interval: float = 0.200
    #: Silence threshold before a member is suspected (seconds).  Keep
    #: well above any injected scheduling latency or drift to avoid
    #: false suspicions (see ARCHITECTURE.md).
    suspect_after: float = 2.0
    #: View-change message retransmission period (seconds).
    view_retransmit: float = 0.100
    #: Largest DATA payload shipped in one packet; larger application
    #: messages are fragmented by the session layer.  The prototype uses
    #: a safe value below the Ethernet MTU (§4.2).
    max_packet: int = 1400
    #: State-transfer request retry period (seconds): how long a joiner
    #: waits for a complete snapshot before re-requesting (rotating to
    #: the next donor candidate, which survives a donor crash).
    state_retry: float = 0.250

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GcsConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
