"""Wire formats of the group communication prototype.

All protocol messages marshal to compact binary buffers (``struct``
little-endian framing).  The marshaling deliberately mirrors the paper's
prototype conventions: 64-bit identifiers, explicit counts, and payload
padding so that simulated traffic volume matches a real deployment
(§3.3).  Marshaling cost is charged to the simulated CPU through the
runtime's per-byte send/receive overheads.

Message taxonomy:

========== =====================================================
``DATA``       application payload with per-sender FIFO sequence
``NACK``       receiver-initiated retransmission request
``SEQUENCE``   total-order assignments from the fixed sequencer
``STABILITY``  gossip round state (S, W, M) for garbage collection
``HEARTBEAT``  failure-detector liveness beacon
``PROPOSE``    view-change proposal from the coordinator
``FLUSH_ACK``  member state summary answering a proposal
``DECIDE``     view-change decision installing the new view
``STATE_REQ``  joiner's request for a state-transfer snapshot
``STATE``      one fragment of a donor's state-transfer snapshot
========== =====================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "DATA",
    "NACK",
    "SEQUENCE",
    "STABILITY",
    "HEARTBEAT",
    "PROPOSE",
    "FLUSH_ACK",
    "DECIDE",
    "STATE_REQ",
    "STATE",
    "DataMsg",
    "NackMsg",
    "SequenceMsg",
    "StabilityMsg",
    "HeartbeatMsg",
    "ProposeMsg",
    "FlushAckMsg",
    "DecideMsg",
    "StateReqMsg",
    "StateMsg",
    "marshal",
    "unmarshal",
    "MarshalError",
]

DATA = 1
NACK = 2
SEQUENCE = 3
STABILITY = 4
HEARTBEAT = 5
PROPOSE = 6
FLUSH_ACK = 7
DECIDE = 8
STATE_REQ = 9
STATE = 10

_HEADER = struct.Struct("<BHI")  # type, sender, view_id


class MarshalError(ValueError):
    """Raised on malformed or truncated buffers."""


@dataclass(frozen=True)
class DataMsg:
    sender: int
    view_id: int
    seq: int
    payload: bytes
    #: True when this transmission is a retransmission (for stats only).
    retransmit: bool = False

    msg_type = DATA


@dataclass(frozen=True)
class NackMsg:
    sender: int  # who is asking
    view_id: int
    origin: int  # whose messages are missing
    missing: Tuple[int, ...]  # sequence numbers requested

    msg_type = NACK


@dataclass(frozen=True)
class SequenceMsg:
    sender: int  # the sequencer
    view_id: int
    #: (global_seq, origin, origin_seq) triples, consecutive globals.
    assignments: Tuple[Tuple[int, int, int], ...]

    msg_type = SEQUENCE


@dataclass(frozen=True)
class StabilityMsg:
    sender: int
    view_id: int
    round_id: int
    stable: Tuple[int, ...]  # S vector, indexed by member slot
    voted: Tuple[int, ...]  # W set (member ids)
    mins: Tuple[int, ...]  # M vector, indexed by member slot

    msg_type = STABILITY


@dataclass(frozen=True)
class HeartbeatMsg:
    sender: int
    view_id: int

    msg_type = HEARTBEAT


@dataclass(frozen=True)
class ProposeMsg:
    sender: int  # coordinator
    view_id: int  # the *proposed* view id
    members: Tuple[int, ...]

    msg_type = PROPOSE


@dataclass(frozen=True)
class FlushAckMsg:
    sender: int
    view_id: int  # the proposed view being acknowledged
    #: Per-origin highest contiguous sequence received.
    contiguous: Tuple[Tuple[int, int], ...]
    #: Total-order assignments this member knows: (global, origin, seq).
    assignments: Tuple[Tuple[int, int, int], ...]
    #: Application messages received but not yet assigned a global
    #: number: (origin, seq) keys.  The decide unions these so the new
    #: view can order them deterministically without the old sequencer.
    pending: Tuple[Tuple[int, int], ...] = ()

    msg_type = FLUSH_ACK


@dataclass(frozen=True)
class DecideMsg:
    sender: int  # coordinator
    view_id: int  # the decided view id
    members: Tuple[int, ...]
    #: Per-origin target contiguous sequence everyone must reach.
    targets: Tuple[Tuple[int, int], ...]
    #: Union of known assignments (authoritative for the new view).
    assignments: Tuple[Tuple[int, int, int], ...]
    #: Flushed application messages left unassigned by the old view's
    #: sequencer: every member assigns them the next global numbers in
    #: (origin, seq) order at install, locally and deterministically.
    pending: Tuple[Tuple[int, int], ...] = ()
    #: Members admitted into this view with empty volatile state: they
    #: skip the flush gap-fill and instead acquire a state-transfer
    #: snapshot from an established member before going live.
    joined: Tuple[int, ...] = ()

    msg_type = DECIDE


@dataclass(frozen=True)
class StateReqMsg:
    """A joiner asking an established member to serve it a snapshot."""

    sender: int  # the joiner
    view_id: int  # the joiner's installed view

    msg_type = STATE_REQ


@dataclass(frozen=True)
class StateMsg:
    """One fragment of a state-transfer snapshot (donor → joiner).

    Fragments of one capture share a ``snapshot_id``; a joiner discards
    partial captures when a retry triggers a fresh one."""

    sender: int  # the donor
    view_id: int
    snapshot_id: int
    frag_index: int
    frag_count: int
    payload: bytes

    msg_type = STATE


# ----------------------------------------------------------------------
# marshal
# ----------------------------------------------------------------------
def marshal(msg) -> bytes:
    """Encode a protocol message into its wire representation."""
    head = _HEADER.pack(msg.msg_type, msg.sender, msg.view_id)
    if msg.msg_type == DATA:
        body = struct.pack("<Q?I", msg.seq, msg.retransmit, len(msg.payload))
        return head + body + msg.payload
    if msg.msg_type == NACK:
        body = struct.pack("<HI", msg.origin, len(msg.missing))
        body += struct.pack(f"<{len(msg.missing)}Q", *msg.missing)
        return head + body
    if msg.msg_type == SEQUENCE:
        return head + _pack_triples(msg.assignments)
    if msg.msg_type == STABILITY:
        body = struct.pack("<I", msg.round_id)
        body += _pack_u64s(msg.stable)
        body += struct.pack("<I", len(msg.voted))
        body += struct.pack(f"<{len(msg.voted)}H", *msg.voted)
        body += _pack_u64s(msg.mins)
        return head + body
    if msg.msg_type == HEARTBEAT:
        return head
    if msg.msg_type == PROPOSE:
        body = struct.pack("<I", len(msg.members))
        body += struct.pack(f"<{len(msg.members)}H", *msg.members)
        return head + body
    if msg.msg_type == FLUSH_ACK:
        return (
            head
            + _pack_pairs(msg.contiguous)
            + _pack_triples(msg.assignments)
            + _pack_pairs(msg.pending)
        )
    if msg.msg_type == DECIDE:
        body = struct.pack("<I", len(msg.members))
        body += struct.pack(f"<{len(msg.members)}H", *msg.members)
        body += struct.pack("<I", len(msg.joined))
        body += struct.pack(f"<{len(msg.joined)}H", *msg.joined)
        return (
            head
            + body
            + _pack_pairs(msg.targets)
            + _pack_triples(msg.assignments)
            + _pack_pairs(msg.pending)
        )
    if msg.msg_type == STATE_REQ:
        return head
    if msg.msg_type == STATE:
        body = struct.pack(
            "<QHHI",
            msg.snapshot_id,
            msg.frag_index,
            msg.frag_count,
            len(msg.payload),
        )
        return head + body + msg.payload
    raise MarshalError(f"unknown message type {msg.msg_type}")


def unmarshal(buffer: bytes):
    """Decode a wire buffer back into its message object."""
    if len(buffer) < _HEADER.size:
        raise MarshalError("buffer shorter than header")
    msg_type, sender, view_id = _HEADER.unpack_from(buffer)
    view = memoryview(buffer)[_HEADER.size:]
    try:
        if msg_type == DATA:
            seq, retransmit, length = struct.unpack_from("<Q?I", view)
            offset = struct.calcsize("<Q?I")
            payload = bytes(view[offset : offset + length])
            if len(payload) != length:
                raise MarshalError("truncated DATA payload")
            return DataMsg(sender, view_id, seq, payload, retransmit)
        if msg_type == NACK:
            origin, count = struct.unpack_from("<HI", view)
            offset = struct.calcsize("<HI")
            missing = struct.unpack_from(f"<{count}Q", view, offset)
            return NackMsg(sender, view_id, origin, tuple(missing))
        if msg_type == SEQUENCE:
            return SequenceMsg(sender, view_id, _unpack_triples(view)[0])
        if msg_type == STABILITY:
            (round_id,) = struct.unpack_from("<I", view)
            offset = 4
            stable, offset = _unpack_u64s(view, offset)
            (w_count,) = struct.unpack_from("<I", view, offset)
            offset += 4
            voted = struct.unpack_from(f"<{w_count}H", view, offset)
            offset += 2 * w_count
            mins, offset = _unpack_u64s(view, offset)
            return StabilityMsg(sender, view_id, round_id, stable, tuple(voted), mins)
        if msg_type == HEARTBEAT:
            return HeartbeatMsg(sender, view_id)
        if msg_type == PROPOSE:
            (count,) = struct.unpack_from("<I", view)
            members = struct.unpack_from(f"<{count}H", view, 4)
            return ProposeMsg(sender, view_id, tuple(members))
        if msg_type == FLUSH_ACK:
            contiguous, offset = _unpack_pairs(view, 0)
            assignments, offset = _unpack_triples(view, offset)
            pending, _ = _unpack_pairs(view, offset)
            return FlushAckMsg(sender, view_id, contiguous, assignments, pending)
        if msg_type == DECIDE:
            (count,) = struct.unpack_from("<I", view)
            offset = 4
            members = struct.unpack_from(f"<{count}H", view, offset)
            offset += 2 * count
            (joined_count,) = struct.unpack_from("<I", view, offset)
            offset += 4
            joined = struct.unpack_from(f"<{joined_count}H", view, offset)
            offset += 2 * joined_count
            targets, offset = _unpack_pairs(view, offset)
            assignments, offset = _unpack_triples(view, offset)
            pending, _ = _unpack_pairs(view, offset)
            return DecideMsg(
                sender,
                view_id,
                tuple(members),
                targets,
                assignments,
                pending,
                tuple(joined),
            )
        if msg_type == STATE_REQ:
            return StateReqMsg(sender, view_id)
        if msg_type == STATE:
            snapshot_id, frag_index, frag_count, length = struct.unpack_from(
                "<QHHI", view
            )
            offset = struct.calcsize("<QHHI")
            payload = bytes(view[offset : offset + length])
            if len(payload) != length:
                raise MarshalError("truncated STATE payload")
            return StateMsg(
                sender, view_id, snapshot_id, frag_index, frag_count, payload
            )
    except struct.error as exc:
        raise MarshalError(f"truncated message of type {msg_type}: {exc}") from exc
    raise MarshalError(f"unknown message type {msg_type}")


# ----------------------------------------------------------------------
# encoding helpers
# ----------------------------------------------------------------------
def _pack_u64s(values: Tuple[int, ...]) -> bytes:
    return struct.pack("<I", len(values)) + struct.pack(f"<{len(values)}Q", *values)


def _unpack_u64s(view, offset: int) -> Tuple[Tuple[int, ...], int]:
    (count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    values = struct.unpack_from(f"<{count}Q", view, offset)
    return tuple(values), offset + 8 * count


def _pack_pairs(pairs: Tuple[Tuple[int, int], ...]) -> bytes:
    out = struct.pack("<I", len(pairs))
    for a, b in pairs:
        out += struct.pack("<HQ", a, b)
    return out


def _unpack_pairs(view, offset: int) -> Tuple[Tuple[Tuple[int, int], ...], int]:
    (count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    pairs = []
    for _ in range(count):
        a, b = struct.unpack_from("<HQ", view, offset)
        offset += struct.calcsize("<HQ")
        pairs.append((a, b))
    return tuple(pairs), offset


def _pack_triples(triples: Tuple[Tuple[int, int, int], ...]) -> bytes:
    out = struct.pack("<I", len(triples))
    for g, origin, seq in triples:
        out += struct.pack("<QHQ", g, origin, seq)
    return out


def _unpack_triples(view, offset: int = 0):
    (count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    triples = []
    for _ in range(count):
        g, origin, seq = struct.unpack_from("<QHQ", view, offset)
        offset += struct.calcsize("<QHQ")
        triples.append((g, origin, seq))
    return tuple(triples), offset
