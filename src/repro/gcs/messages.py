"""Wire formats of the group communication prototype.

All protocol messages marshal to compact binary buffers (``struct``
little-endian framing).  The marshaling deliberately mirrors the paper's
prototype conventions: 64-bit identifiers, explicit counts, and payload
padding so that simulated traffic volume matches a real deployment
(§3.3).  Marshaling cost is charged to the simulated CPU through the
runtime's per-byte send/receive overheads.

Message taxonomy:

========== =====================================================
``DATA``       application payload with per-sender FIFO sequence
``NACK``       receiver-initiated retransmission request
``SEQUENCE``   total-order assignments from the fixed sequencer
``STABILITY``  gossip round state (S, W, M) for garbage collection
``HEARTBEAT``  failure-detector liveness beacon
``PROPOSE``    view-change proposal from the coordinator
``FLUSH_ACK``  member state summary answering a proposal
``DECIDE``     view-change decision installing the new view
``STATE_REQ``  joiner's request for a state-transfer snapshot
``STATE``      one fragment of a donor's state-transfer snapshot
========== =====================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "DATA",
    "NACK",
    "SEQUENCE",
    "STABILITY",
    "HEARTBEAT",
    "PROPOSE",
    "FLUSH_ACK",
    "DECIDE",
    "STATE_REQ",
    "STATE",
    "DataMsg",
    "NackMsg",
    "SequenceMsg",
    "StabilityMsg",
    "HeartbeatMsg",
    "ProposeMsg",
    "FlushAckMsg",
    "DecideMsg",
    "StateReqMsg",
    "StateMsg",
    "marshal",
    "unmarshal",
    "unmarshal_cached",
    "pack_data",
    "MarshalError",
]

DATA = 1
NACK = 2
SEQUENCE = 3
STABILITY = 4
HEARTBEAT = 5
PROPOSE = 6
FLUSH_ACK = 7
DECIDE = 8
STATE_REQ = 9
STATE = 10

# Every fixed-layout fragment is a precompiled Struct: marshal/unmarshal
# run once per simulated datagram, and compiling the format string on
# each call is pure overhead on that path.
_HEADER = struct.Struct("<BHI")  # type, sender, view_id
_DATA_BODY = struct.Struct("<Q?I")  # seq, retransmit, payload length
_NACK_HEAD = struct.Struct("<HI")  # origin, missing count
_STATE_BODY = struct.Struct("<QHHI")  # snapshot id, frag index, count, length
_U32 = struct.Struct("<I")
_PAIR = struct.Struct("<HQ")  # (member, seq)
_TRIPLE = struct.Struct("<QHQ")  # (global, origin, seq)


class MarshalError(ValueError):
    """Raised on malformed or truncated buffers."""


@dataclass(frozen=True, slots=True)
class DataMsg:
    sender: int
    view_id: int
    seq: int
    payload: bytes
    #: True when this transmission is a retransmission (for stats only).
    retransmit: bool = False

    msg_type = DATA


@dataclass(frozen=True, slots=True)
class NackMsg:
    sender: int  # who is asking
    view_id: int
    origin: int  # whose messages are missing
    missing: Tuple[int, ...]  # sequence numbers requested

    msg_type = NACK


@dataclass(frozen=True, slots=True)
class SequenceMsg:
    sender: int  # the sequencer
    view_id: int
    #: (global_seq, origin, origin_seq) triples, consecutive globals.
    assignments: Tuple[Tuple[int, int, int], ...]

    msg_type = SEQUENCE


@dataclass(frozen=True, slots=True)
class StabilityMsg:
    sender: int
    view_id: int
    round_id: int
    stable: Tuple[int, ...]  # S vector, indexed by member slot
    voted: Tuple[int, ...]  # W set (member ids)
    mins: Tuple[int, ...]  # M vector, indexed by member slot

    msg_type = STABILITY


@dataclass(frozen=True, slots=True)
class HeartbeatMsg:
    sender: int
    view_id: int

    msg_type = HEARTBEAT


@dataclass(frozen=True, slots=True)
class ProposeMsg:
    sender: int  # coordinator
    view_id: int  # the *proposed* view id
    members: Tuple[int, ...]

    msg_type = PROPOSE


@dataclass(frozen=True, slots=True)
class FlushAckMsg:
    sender: int
    view_id: int  # the proposed view being acknowledged
    #: Per-origin highest contiguous sequence received.
    contiguous: Tuple[Tuple[int, int], ...]
    #: Total-order assignments this member knows: (global, origin, seq).
    assignments: Tuple[Tuple[int, int, int], ...]
    #: Application messages received but not yet assigned a global
    #: number: (origin, seq) keys.  The decide unions these so the new
    #: view can order them deterministically without the old sequencer.
    pending: Tuple[Tuple[int, int], ...] = ()

    msg_type = FLUSH_ACK


@dataclass(frozen=True, slots=True)
class DecideMsg:
    sender: int  # coordinator
    view_id: int  # the decided view id
    members: Tuple[int, ...]
    #: Per-origin target contiguous sequence everyone must reach.
    targets: Tuple[Tuple[int, int], ...]
    #: Union of known assignments (authoritative for the new view).
    assignments: Tuple[Tuple[int, int, int], ...]
    #: Flushed application messages left unassigned by the old view's
    #: sequencer: every member assigns them the next global numbers in
    #: (origin, seq) order at install, locally and deterministically.
    pending: Tuple[Tuple[int, int], ...] = ()
    #: Members admitted into this view with empty volatile state: they
    #: skip the flush gap-fill and instead acquire a state-transfer
    #: snapshot from an established member before going live.
    joined: Tuple[int, ...] = ()

    msg_type = DECIDE


@dataclass(frozen=True, slots=True)
class StateReqMsg:
    """A joiner asking an established member to serve it a snapshot."""

    sender: int  # the joiner
    view_id: int  # the joiner's installed view

    msg_type = STATE_REQ


@dataclass(frozen=True, slots=True)
class StateMsg:
    """One fragment of a state-transfer snapshot (donor → joiner).

    Fragments of one capture share a ``snapshot_id``; a joiner discards
    partial captures when a retry triggers a fresh one."""

    sender: int  # the donor
    view_id: int
    snapshot_id: int
    frag_index: int
    frag_count: int
    payload: bytes

    msg_type = STATE


# ----------------------------------------------------------------------
# marshal
# ----------------------------------------------------------------------
def pack_data(
    sender: int, view_id: int, seq: int, payload: bytes, retransmit: bool = False
) -> bytes:
    """Wire bytes of a DATA message, straight from its fields.

    Byte-identical to ``marshal(DataMsg(sender, view_id, seq, payload,
    retransmit))``.  The reliable layer sends and retransmits from
    payload bytes it already buffers, so it can skip building the
    dataclass only to tear it apart again here — DATA is the one message
    sent per transaction, making this the hottest marshal path.
    """
    return (
        _HEADER.pack(DATA, sender, view_id)
        + _DATA_BODY.pack(seq, retransmit, len(payload))
        + payload
    )


def marshal(msg) -> bytes:
    """Encode a protocol message into its wire representation."""
    if msg.msg_type == DATA:
        return pack_data(msg.sender, msg.view_id, msg.seq, msg.payload, msg.retransmit)
    head = _HEADER.pack(msg.msg_type, msg.sender, msg.view_id)
    if msg.msg_type == NACK:
        body = _NACK_HEAD.pack(msg.origin, len(msg.missing))
        body += struct.pack(f"<{len(msg.missing)}Q", *msg.missing)
        return head + body
    if msg.msg_type == SEQUENCE:
        return head + _pack_triples(msg.assignments)
    if msg.msg_type == STABILITY:
        return b"".join(
            (
                head,
                _U32.pack(msg.round_id),
                _pack_u64s(msg.stable),
                _U32.pack(len(msg.voted)),
                struct.pack(f"<{len(msg.voted)}H", *msg.voted),
                _pack_u64s(msg.mins),
            )
        )
    if msg.msg_type == HEARTBEAT:
        return head
    if msg.msg_type == PROPOSE:
        body = _U32.pack(len(msg.members))
        body += struct.pack(f"<{len(msg.members)}H", *msg.members)
        return head + body
    if msg.msg_type == FLUSH_ACK:
        return (
            head
            + _pack_pairs(msg.contiguous)
            + _pack_triples(msg.assignments)
            + _pack_pairs(msg.pending)
        )
    if msg.msg_type == DECIDE:
        return b"".join(
            (
                head,
                _U32.pack(len(msg.members)),
                struct.pack(f"<{len(msg.members)}H", *msg.members),
                _U32.pack(len(msg.joined)),
                struct.pack(f"<{len(msg.joined)}H", *msg.joined),
                _pack_pairs(msg.targets),
                _pack_triples(msg.assignments),
                _pack_pairs(msg.pending),
            )
        )
    if msg.msg_type == STATE_REQ:
        return head
    if msg.msg_type == STATE:
        body = _STATE_BODY.pack(
            msg.snapshot_id,
            msg.frag_index,
            msg.frag_count,
            len(msg.payload),
        )
        return head + body + msg.payload
    raise MarshalError(f"unknown message type {msg.msg_type}")


def unmarshal(buffer: bytes):
    """Decode a wire buffer back into its message object."""
    if len(buffer) < _HEADER.size:
        raise MarshalError("buffer shorter than header")
    msg_type, sender, view_id = _HEADER.unpack_from(buffer)
    view = memoryview(buffer)[_HEADER.size:]
    try:
        if msg_type == DATA:
            seq, retransmit, length = _DATA_BODY.unpack_from(view)
            offset = _DATA_BODY.size
            payload = bytes(view[offset : offset + length])
            if len(payload) != length:
                raise MarshalError("truncated DATA payload")
            return DataMsg(sender, view_id, seq, payload, retransmit)
        if msg_type == NACK:
            origin, count = _NACK_HEAD.unpack_from(view)
            missing = struct.unpack_from(f"<{count}Q", view, _NACK_HEAD.size)
            return NackMsg(sender, view_id, origin, tuple(missing))
        if msg_type == SEQUENCE:
            return SequenceMsg(sender, view_id, _unpack_triples(view)[0])
        if msg_type == STABILITY:
            (round_id,) = _U32.unpack_from(view)
            offset = 4
            stable, offset = _unpack_u64s(view, offset)
            (w_count,) = _U32.unpack_from(view, offset)
            offset += 4
            voted = struct.unpack_from(f"<{w_count}H", view, offset)
            offset += 2 * w_count
            mins, offset = _unpack_u64s(view, offset)
            return StabilityMsg(sender, view_id, round_id, stable, tuple(voted), mins)
        if msg_type == HEARTBEAT:
            return HeartbeatMsg(sender, view_id)
        if msg_type == PROPOSE:
            (count,) = _U32.unpack_from(view)
            members = struct.unpack_from(f"<{count}H", view, 4)
            return ProposeMsg(sender, view_id, tuple(members))
        if msg_type == FLUSH_ACK:
            contiguous, offset = _unpack_pairs(view, 0)
            assignments, offset = _unpack_triples(view, offset)
            pending, _ = _unpack_pairs(view, offset)
            return FlushAckMsg(sender, view_id, contiguous, assignments, pending)
        if msg_type == DECIDE:
            (count,) = _U32.unpack_from(view)
            offset = 4
            members = struct.unpack_from(f"<{count}H", view, offset)
            offset += 2 * count
            (joined_count,) = _U32.unpack_from(view, offset)
            offset += 4
            joined = struct.unpack_from(f"<{joined_count}H", view, offset)
            offset += 2 * joined_count
            targets, offset = _unpack_pairs(view, offset)
            assignments, offset = _unpack_triples(view, offset)
            pending, _ = _unpack_pairs(view, offset)
            return DecideMsg(
                sender,
                view_id,
                tuple(members),
                targets,
                assignments,
                pending,
                tuple(joined),
            )
        if msg_type == STATE_REQ:
            return StateReqMsg(sender, view_id)
        if msg_type == STATE:
            snapshot_id, frag_index, frag_count, length = _STATE_BODY.unpack_from(view)
            offset = _STATE_BODY.size
            payload = bytes(view[offset : offset + length])
            if len(payload) != length:
                raise MarshalError("truncated STATE payload")
            return StateMsg(
                sender, view_id, snapshot_id, frag_index, frag_count, payload
            )
    except struct.error as exc:
        raise MarshalError(f"truncated message of type {msg_type}: {exc}") from exc
    raise MarshalError(f"unknown message type {msg_type}")


#: Value-keyed decode memo.  A multicast datagram reaches all N group
#: members as the *same* bytes object, so a hit costs one dict probe
#: (identity short-circuit, cached hash) instead of a full decode.
#: Messages are frozen, so sharing one object between receivers is safe.
_DECODE_CACHE: dict = {}

#: Bound on the memo; cleared wholesale when reached.  Entries are tiny
#: (the decoded message aliases the buffer's payload bytes), and a full
#: clear keeps the policy deterministic and allocation-free.  Sized so a
#: whole campaign cell's distinct buffers usually fit: at 512 the heavy
#: cells clear several times per run and re-decode a third of their
#: traffic.
_DECODE_CACHE_LIMIT = 8192


def unmarshal_cached(buffer: bytes):
    """:func:`unmarshal` with a small value-keyed memo.

    Decoding is a pure function of the buffer, so cache hits and misses
    return value-identical messages — results never depend on cache
    state.  Raises :class:`MarshalError` exactly like :func:`unmarshal`
    (failures are never cached).
    """
    msg = _DECODE_CACHE.get(buffer)
    if msg is None:
        msg = unmarshal(buffer)
        if len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[buffer] = msg
    return msg


# ----------------------------------------------------------------------
# encoding helpers
# ----------------------------------------------------------------------
def _pack_u64s(values: Tuple[int, ...]) -> bytes:
    return struct.pack(f"<I{len(values)}Q", len(values), *values)


def _unpack_u64s(view, offset: int) -> Tuple[Tuple[int, ...], int]:
    (count,) = _U32.unpack_from(view, offset)
    offset += 4
    values = struct.unpack_from(f"<{count}Q", view, offset)
    return tuple(values), offset + 8 * count


def _pack_pairs(pairs: Tuple[Tuple[int, int], ...]) -> bytes:
    pack = _PAIR.pack
    return _U32.pack(len(pairs)) + b"".join(pack(a, b) for a, b in pairs)


def _unpack_pairs(view, offset: int) -> Tuple[Tuple[Tuple[int, int], ...], int]:
    (count,) = _U32.unpack_from(view, offset)
    offset += 4
    unpack, size = _PAIR.unpack_from, _PAIR.size
    pairs = tuple(unpack(view, offset + size * k) for k in range(count))
    return pairs, offset + size * count


def _pack_triples(triples: Tuple[Tuple[int, int, int], ...]) -> bytes:
    pack = _TRIPLE.pack
    return _U32.pack(len(triples)) + b"".join(
        pack(g, origin, seq) for g, origin, seq in triples
    )


def _unpack_triples(view, offset: int = 0):
    (count,) = _U32.unpack_from(view, offset)
    offset += 4
    unpack, size = _TRIPLE.unpack_from, _TRIPLE.size
    triples = tuple(unpack(view, offset + size * k) for k in range(count))
    return triples, offset + size * count
