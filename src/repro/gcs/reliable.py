"""View-synchronous reliable multicast (paper §3.4, bottom layer).

Message flow follows the paper's two-phase design:

1. **dissemination** — messages go out over IP multicast on LANs,
   falling back to unicast fan-out when the destination set spans
   segments; initial transmissions are paced by the rate-based flow
   control;
2. **reliability** — a window-based, receiver-initiated mechanism:
   receivers detect sequence gaps and NACK the origin (or any live
   member once the origin is suspected); every member buffers every
   message until the gossip-based stability detector declares it
   received by all, so anyone can serve a retransmission.

Fairness gives each origin a fixed share of the buffer pool; a sender
whose share is full must wait for garbage collection before transmitting
new messages — this queue is observable via :attr:`ReliableMulticast.blocked_sends`
and is the bottleneck the paper exposes under random loss (§5.3).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.runtime_api import ProtocolRuntime
from .config import GcsConfig
from .flowcontrol import TokenBucket
from .messages import DataMsg, NackMsg, marshal, pack_data
from .window import BufferPool, ReceiveWindow

__all__ = ["ReliableMulticast"]

FifoDeliver = Callable[[int, int, bytes], None]


class ReliableMulticast:
    """One member's reliable-multicast endpoint.

    The stack above registers ``on_fifo_deliver(origin, seq, payload)``;
    deliveries are per-origin FIFO with no cross-origin ordering (total
    order is the next layer up).  Incoming wire messages are dispatched
    to :meth:`handle_data` / :meth:`handle_nack` by the stack.
    """

    def __init__(
        self,
        runtime: ProtocolRuntime,
        member_id: int,
        members: Dict[int, object],
        group_dest: object,
        config: Optional[GcsConfig] = None,
    ):
        self.runtime = runtime
        self.member_id = member_id
        self.group_dest = group_dest
        self.config = config or GcsConfig()
        self.pool = BufferPool(share=self.config.buffer_share)
        self.bucket = TokenBucket(self.config.send_rate, self.config.send_burst)
        self.windows: Dict[int, ReceiveWindow] = {}
        self._delivered_up_to: Dict[int, int] = {}
        self._install_members(members, fresh=True)
        self.on_fifo_deliver: Optional[FifoDeliver] = None
        #: Origins currently considered crashed: NACKs for their messages
        #: are redirected to live members.
        self.suspected: set = set()
        #: Final flush target of each departed origin (from the DECIDE,
        #: so identical at every member).  Folded into the contiguous
        #: vector so a later merge view resumes the origin's numbering
        #: above its *entire* old stream — assigned or not.
        self._departed_tops: Dict[int, int] = {}
        self._next_seq = 0
        self._blocked: Deque[bytes] = deque()
        self._frozen = False
        self._nack_timers: Dict[int, object] = {}
        self.stats = {
            "sent": 0,
            "retransmits_served": 0,
            "nacks_sent": 0,
            "duplicates": 0,
            "blocked_events": 0,
            "blocked_time": 0.0,
        }
        self._blocked_since: Optional[float] = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _install_members(self, members: Dict[int, object], fresh: bool) -> None:
        """Adopt ``members`` as the current membership view.

        The single place the membership map is copied and the per-origin
        windows/delivery cursors are kept in step with it.  With
        ``fresh`` every window is rebuilt from scratch (initial start,
        rejoin with empty state); otherwise surviving origins keep their
        windows, departed ones are dropped (their flushed messages were
        already delivered) and newcomers start clean.
        """
        self.members = dict(members)
        if fresh:
            self.windows = {m: ReceiveWindow() for m in self.members}
            self._delivered_up_to = {m: 0 for m in self.members}
            return
        for origin in list(self.windows):
            if origin not in members:
                del self.windows[origin]
                self._delivered_up_to.pop(origin, None)
        for origin in members:
            self.windows.setdefault(origin, ReceiveWindow())
            self._delivered_up_to.setdefault(origin, 0)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def multicast(self, payload: bytes) -> None:
        """Reliably multicast ``payload`` to the group (including self).

        If the member's buffer share is exhausted or a view change is in
        progress the message is queued and sent when space/thaw arrives.
        """
        if self._frozen or self._blocked or not self.pool.has_room(self.member_id):
            if self._blocked_since is None:
                self._blocked_since = self.runtime.now()
                self.stats["blocked_events"] += 1
            self._blocked.append(payload)
            return
        self._transmit(payload)

    @property
    def blocked_sends(self) -> int:
        return len(self._blocked)

    def _transmit(self, payload: bytes) -> None:
        self._next_seq += 1
        seq = self._next_seq
        self.pool.store(self.member_id, seq, payload)
        wire = pack_data(self.member_id, 0, seq, payload)
        delay = self.bucket.reserve(self.runtime.now())
        if delay > 0:
            self.runtime.schedule(delay, self._send_wire, wire)
        else:
            self._send_wire(wire)
        self.stats["sent"] += 1
        # Self-delivery: our own message joins the FIFO stream directly.
        self._accept(self.member_id, seq, payload)

    def _send_wire(self, wire: bytes) -> None:
        self.runtime.send(self.group_dest, wire)

    def _drain_blocked(self) -> None:
        while (
            self._blocked
            and not self._frozen
            and self.pool.has_room(self.member_id)
        ):
            self._transmit(self._blocked.popleft())
        if not self._blocked and self._blocked_since is not None:
            self.stats["blocked_time"] += self.runtime.now() - self._blocked_since
            self._blocked_since = None

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def handle_data(self, msg: DataMsg) -> None:
        origin = msg.sender
        if origin not in self.windows:
            return  # departed member: view synchrony discards its traffic
        if msg.retransmit:
            # the out-of-order recovery path is measurably heavier than
            # the fast path in the prototype (Figure 7(c))
            self.runtime.charge(self.config.retransmit_processing_cost)
        window = self.windows[origin]
        if not window.receive(msg.seq):
            self.stats["duplicates"] += 1
            return
        self.pool.store(origin, msg.seq, msg.payload)
        self._deliver_ready(origin)
        if window.gaps():
            self._arm_nack_timer(origin)

    def handle_nack(self, msg: NackMsg) -> None:
        """Serve a retransmission request from our buffer pool.

        Any member holding the message may serve it (buffers hold all
        unstable messages), which keeps recovery working after the
        origin crashes."""
        requester = self.members.get(msg.sender)
        if requester is None:
            return
        self.runtime.charge(
            self.config.nack_processing_cost
            + self.config.nack_per_message_cost * len(msg.missing)
        )
        for seq in msg.missing:
            payload = self.pool.get(msg.origin, seq)
            if payload is None:
                continue
            again = pack_data(msg.origin, 0, seq, payload, retransmit=True)
            self.runtime.send(requester, again)
            self.stats["retransmits_served"] += 1

    def _accept(self, origin: int, seq: int, payload: bytes) -> None:
        window = self.windows[origin]
        window.receive(seq)
        self.pool.store(origin, seq, payload)
        self._deliver_ready(origin)

    def _deliver_ready(self, origin: int) -> None:
        window = self.windows[origin]
        while self._delivered_up_to[origin] < window.contiguous:
            seq = self._delivered_up_to[origin] + 1
            payload = self.pool.get(origin, seq)
            assert payload is not None, (
                f"member {self.member_id}: message ({origin}, {seq}) "
                "reached the contiguous prefix but is not buffered — "
                "stability must never collect undelivered messages"
            )
            self._delivered_up_to[origin] = seq
            if self.on_fifo_deliver is not None:
                self.on_fifo_deliver(origin, seq, payload)

    # ------------------------------------------------------------------
    # gap recovery
    # ------------------------------------------------------------------
    def _arm_nack_timer(self, origin: int) -> None:
        if origin in self._nack_timers:
            return
        handle = self.runtime.schedule(
            self.config.nack_timeout, self._nack_fire, origin
        )
        self._nack_timers[origin] = handle

    def _nack_fire(self, origin: int) -> None:
        self._nack_timers.pop(origin, None)
        window = self.windows.get(origin)
        if window is None:
            return
        missing = window.gaps(self.config.nack_batch)
        if not missing:
            return
        target = self._retransmission_source(origin)
        if target is not None:
            nack = NackMsg(self.member_id, 0, origin, tuple(missing))
            self.runtime.send(target, marshal(nack))
            self.stats["nacks_sent"] += 1
        self._arm_nack_timer(origin)

    def request_catchup(self, origin: int, up_to: int) -> None:
        """Explicitly request everything missing from ``origin`` up to
        ``up_to`` (used by the view-change flush)."""
        window = self.windows.get(origin)
        if window is None:
            return
        missing = [
            seq
            for seq in range(window.contiguous + 1, up_to + 1)
            if not window.has(seq)
        ]
        for start in range(0, len(missing), self.config.nack_batch):
            chunk = tuple(missing[start : start + self.config.nack_batch])
            target = self._retransmission_source(origin)
            if target is not None and chunk:
                self.runtime.send(
                    target, marshal(NackMsg(self.member_id, 0, origin, chunk))
                )
                self.stats["nacks_sent"] += 1
        if missing:
            self._arm_nack_timer(origin)

    def _retransmission_source(self, origin: int):
        """The origin itself, or — once it is suspected — the next live
        member (rotating by NACK count so load spreads)."""
        if origin not in self.suspected and origin in self.members:
            return self.members[origin]
        live = [
            m
            for m in sorted(self.members)
            if m != self.member_id and m not in self.suspected
        ]
        if not live:
            return None
        return self.members[live[self.stats["nacks_sent"] % len(live)]]

    # ------------------------------------------------------------------
    # stability integration
    # ------------------------------------------------------------------
    def contiguous_vector(self) -> Dict[int, int]:
        """Per-origin contiguous reception prefix (the stability vote).

        Departed origins report their final flush top: their history is
        fully received as far as the group is concerned, and a merge
        view's targets must resume above it."""
        vector = {m: w.contiguous for m, w in self.windows.items()}
        for origin, top in self._departed_tops.items():
            if vector.get(origin, 0) < top:
                vector[origin] = top
        return vector

    def collect_stable(self, stable: Dict[int, int]) -> int:
        """Garbage-collect messages stable at all members; unblocks
        senders waiting on their buffer share."""
        freed = self.pool.collect(stable)
        if freed:
            self._drain_blocked()
        return freed

    # ------------------------------------------------------------------
    # rejoin (state transfer)
    # ------------------------------------------------------------------
    def reset_for_rejoin(self, members: Dict[int, object]) -> None:
        """Restart with empty volatile state ahead of a rejoin.

        Frozen until the merge view installs; the windows are recreated
        and fast-forwarded at install time, and our own FIFO numbering
        restarts at zero to be resumed above everything the group ever
        saw from our previous incarnations (see
        :meth:`fast_forward_origin`)."""
        self._install_members(members, fresh=True)
        self.pool = BufferPool(share=self.config.buffer_share)
        self.suspected = set()
        self._departed_tops = {}
        self._next_seq = 0
        self._blocked.clear()
        self._blocked_since = None
        self._frozen = True
        for handle in self._nack_timers.values():
            cancel = getattr(handle, "cancel", None)
            if cancel is not None:
                cancel()
        self._nack_timers = {}

    def fast_forward_origin(self, origin: int, seq: int) -> None:
        """Skip ``origin``'s stream up to ``seq``: received-but-undeliverable
        history whose effects arrive via state transfer instead.  For our
        own origin this also moves the send numbering past every sequence
        number any previous incarnation ever used, so incarnations can
        never collide in windows, buffers or assignments."""
        window = self.windows.setdefault(origin, ReceiveWindow())
        window.fast_forward(seq)
        self._departed_tops.pop(origin, None)
        if self._delivered_up_to.get(origin, 0) < seq:
            self._delivered_up_to[origin] = seq
        if origin == self.member_id and self._next_seq < seq:
            self._next_seq = seq

    def reset_origin(self, origin: int) -> None:
        """Forget everything about ``origin``'s stream (a member
        readmitted with empty state restarts its numbering above its
        flush target, so the old window must not NACK the gap)."""
        self.windows[origin] = ReceiveWindow()
        self._delivered_up_to[origin] = 0
        timer = self._nack_timers.pop(origin, None)
        if timer is not None:
            cancel = getattr(timer, "cancel", None)
            if cancel is not None:
                cancel()

    # ------------------------------------------------------------------
    # view-change hooks
    # ------------------------------------------------------------------
    def freeze(self) -> None:
        """Stop initiating new multicasts (view change in progress)."""
        self._frozen = True

    def thaw(self) -> None:
        self._frozen = False
        self._drain_blocked()

    def note_departed_top(self, origin: int, top: int) -> None:
        """Record a departed origin's final flush target (from the
        DECIDE — deterministic) ahead of :meth:`reset_membership`."""
        if top > self._departed_tops.get(origin, 0):
            self._departed_tops[origin] = top

    def reset_membership(self, members: Dict[int, object]) -> None:
        """Install the new view's membership: departed origins' windows
        are dropped (their flushed messages were already delivered)."""
        self._install_members(members, fresh=False)
        # Suspicions about departed members are moot once the view drops
        # them; members retained by the view get a clean slate too.
        self.suspected &= set(members)
