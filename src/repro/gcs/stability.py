"""Gossip-based stability detection (paper §3.4, after Guo's protocol).

The goal is to determine which messages have been received by **all**
operational processes so they can be discarded from buffers — the key
element in the performance of reliable multicast.  Detection works in
asynchronous rounds by gossiping:

* ``S`` — a vector of sequence numbers of known-stable messages;
* ``W`` — the set of processes that have voted in the current round;
* ``M`` — a vector of sequence numbers already received by the voters.

Each process adds its vote to ``W`` and lowers ``M`` to its own
*contiguous* reception prefix.  When ``W`` contains all operational
processes, ``S`` is raised to ``M`` and a new round starts.  Because a
round can only garbage-collect the **contiguous common prefix**, loss
injected independently at each participant dramatically shortens that
prefix and slows collection — the root cause of the sequencer blocking
the paper diagnoses in §5.3.

While a round is open, the merge operation (union of W, element-wise
min of M, element-wise max of S) is a join-semilattice, so gossip order
cannot matter.  Round *completion* — raising S when W covers the
membership — is a monotone side effect whose timing depends on arrival
order; any outcome is safe (S never exceeds true stability) and all
members reconverge through the max-merge of S carried by every later
gossip message.  Hypothesis tests assert exactly these properties.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .messages import StabilityMsg

__all__ = ["StabilityState"]

_INFINITY = (1 << 62)


class StabilityState:
    """One member's view of the current stability round."""

    def __init__(self, member_id: int, members: Sequence[int]):
        if member_id not in members:
            raise ValueError("member_id must be one of members")
        self.member_id = member_id
        self.members: Tuple[int, ...] = tuple(sorted(members))
        self.round_id = 1
        self.stable: Dict[int, int] = {m: 0 for m in self.members}
        self.voted: set = set()
        self.mins: Dict[int, int] = {m: _INFINITY for m in self.members}
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    def reset_membership(self, members: Sequence[int]) -> None:
        """Install a new view: departed members leave the vectors, new
        rounds restart, accumulated stability survives."""
        self.members = tuple(sorted(members))
        self.stable = {m: self.stable.get(m, 0) for m in self.members}
        self.round_id += 1
        self._new_round()

    def vote(self, contiguous: Dict[int, int]) -> None:
        """Add the local vote: our contiguous reception prefix per origin."""
        self.voted.add(self.member_id)
        for origin in self.members:
            own = contiguous.get(origin, 0)
            if own < self.mins[origin]:
                self.mins[origin] = own
        self._maybe_complete()

    def merge(self, msg: StabilityMsg) -> None:
        """Fold a peer's gossip into the local state (semilattice join)."""
        if msg.round_id > self.round_id:
            # The peer is ahead: adopt its round wholesale, then re-vote.
            self.round_id = msg.round_id
            self.voted = set(msg.voted) & set(self.members)
            self.mins = self._vector_from(msg.mins, default=_INFINITY)
        elif msg.round_id == self.round_id:
            self.voted.update(m for m in msg.voted if m in self.members)
            incoming = self._vector_from(msg.mins, default=_INFINITY)
            for origin in self.members:
                if incoming[origin] < self.mins[origin]:
                    self.mins[origin] = incoming[origin]
        # Stability knowledge is monotonic: take the max regardless of round.
        incoming_stable = self._vector_from(msg.stable, default=0)
        for origin in self.members:
            if incoming_stable[origin] > self.stable[origin]:
                self.stable[origin] = incoming_stable[origin]
        self._maybe_complete()

    def snapshot(self) -> StabilityMsg:
        """The gossip message describing the local state."""
        return StabilityMsg(
            sender=self.member_id,
            view_id=0,  # stamped by the stack on send
            round_id=self.round_id,
            stable=tuple(self.stable[m] for m in self.members),
            voted=tuple(sorted(self.voted)),
            mins=tuple(
                self.mins[m] if self.mins[m] < _INFINITY else _INFINITY
                for m in self.members
            ),
        )

    # ------------------------------------------------------------------
    def _maybe_complete(self) -> None:
        if not set(self.members) <= self.voted:
            return
        for origin in self.members:
            floor = self.mins[origin]
            if floor < _INFINITY and floor > self.stable[origin]:
                self.stable[origin] = floor
        self.rounds_completed += 1
        self.round_id += 1
        self._new_round()

    def _new_round(self) -> None:
        self.voted = set()
        self.mins = {m: _INFINITY for m in self.members}

    def _vector_from(self, values: Tuple[int, ...], default: int) -> Dict[int, int]:
        """Map a wire vector (indexed by sorted member slot) to a dict.

        Vectors from peers with a different member count (mid view
        change) are padded with the neutral element."""
        out = {}
        for slot, origin in enumerate(self.members):
            out[origin] = values[slot] if slot < len(values) else default
        return out
