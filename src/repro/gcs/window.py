"""Receive windows and the shared message buffer pool.

Two pieces of bookkeeping underpin the reliable multicast layer:

* :class:`ReceiveWindow` — per-origin tracking of which sequence numbers
  have arrived: the highest *contiguous* prefix (what stability
  detection can vote on) plus the set of out-of-order arrivals (whose
  gaps drive receiver-initiated NACKs);
* :class:`BufferPool` — every member buffers every message it has seen
  until stability detection declares it received-by-all.  Fairness is
  enforced by giving each origin a fixed **share** of the pool (§5.3);
  when an origin's share is exhausted its new sends must wait for
  garbage collection — the exact mechanism whose interaction with the
  fixed sequencer the paper exposes under random loss.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["ReceiveWindow", "BufferPool"]


class ReceiveWindow:
    """Tracks received sequence numbers from one origin (seqs start at 1)."""

    __slots__ = ("contiguous", "_pending")

    def __init__(self) -> None:
        #: Highest n such that every sequence in [1, n] has arrived.
        self.contiguous = 0
        self._pending: set = set()

    def receive(self, seq: int) -> bool:
        """Record arrival of ``seq``.  Returns False for duplicates."""
        if seq <= self.contiguous or seq in self._pending:
            return False
        self._pending.add(seq)
        while self.contiguous + 1 in self._pending:
            self._pending.discard(self.contiguous + 1)
            self.contiguous += 1
        return True

    def has(self, seq: int) -> bool:
        return seq <= self.contiguous or seq in self._pending

    def fast_forward(self, seq: int) -> None:
        """Mark everything up to ``seq`` as received without holding the
        payloads (state transfer covers their effects).  Out-of-order
        arrivals at or below ``seq`` are absorbed."""
        if seq <= self.contiguous:
            return
        self.contiguous = seq
        self._pending = {s for s in self._pending if s > seq}
        while self.contiguous + 1 in self._pending:
            self._pending.discard(self.contiguous + 1)
            self.contiguous += 1

    def gaps(self, limit: int = 64) -> List[int]:
        """Missing sequence numbers below the highest arrival (at most
        ``limit`` of them) — the NACK candidates."""
        if not self._pending:
            return []
        top = max(self._pending)
        missing = []
        for seq in range(self.contiguous + 1, top):
            if seq not in self._pending:
                missing.append(seq)
                if len(missing) >= limit:
                    break
        return missing

    def highest_seen(self) -> int:
        return max(self._pending) if self._pending else self.contiguous

    def out_of_order_count(self) -> int:
        return len(self._pending)


class BufferPool:
    """Unstable-message store with per-origin shares.

    ``share`` is the maximum number of unstable messages a single origin
    may occupy (the paper's fairness rule).  Messages are keyed by
    (origin, seq); :meth:`collect` releases everything at or below the
    per-origin stable watermark, returning how many were freed.
    """

    def __init__(self, share: int = 64):
        if share < 1:
            raise ValueError("share must be >= 1")
        self.share = share
        self._messages: Dict[Tuple[int, int], bytes] = {}
        self._per_origin: Dict[int, int] = {}
        self.stats = {"stored": 0, "collected": 0, "peak_occupancy": 0}

    def occupancy(self, origin: int) -> int:
        return self._per_origin.get(origin, 0)

    def has_room(self, origin: int) -> bool:
        """Can ``origin`` buffer one more message within its share?"""
        return self.occupancy(origin) < self.share

    def store(self, origin: int, seq: int, payload: bytes) -> None:
        key = (origin, seq)
        if key in self._messages:
            return
        self._messages[key] = payload
        count = self._per_origin.get(origin, 0) + 1
        self._per_origin[origin] = count
        self.stats["stored"] += 1
        if count > self.stats["peak_occupancy"]:
            self.stats["peak_occupancy"] = count

    def get(self, origin: int, seq: int) -> Optional[bytes]:
        return self._messages.get((origin, seq))

    def purge_origin_above(self, origin: int, seq: int) -> int:
        """Drop ``origin``'s buffered messages with sequence above
        ``seq`` — out-of-order remnants of a dead incarnation whose gaps
        will never fill (sequences at or below ``seq`` stay: lagging
        survivors may still gap-fill the old stream from us)."""
        doomed = [
            key for key in self._messages if key[0] == origin and key[1] > seq
        ]
        for key in doomed:
            del self._messages[key]
            self._per_origin[origin] -= 1
        return len(doomed)

    def collect(self, stable: Dict[int, int]) -> int:
        """Drop every buffered (origin, seq) with seq <= stable[origin]."""
        doomed = [
            key
            for key in self._messages
            if key[1] <= stable.get(key[0], 0)
        ]
        for origin, seq in doomed:
            del self._messages[(origin, seq)]
            self._per_origin[origin] -= 1
        self.stats["collected"] += len(doomed)
        return len(doomed)

    def total_buffered(self) -> int:
        return len(self._messages)

    def origins(self) -> Iterable[int]:
        return tuple(o for o, n in self._per_origin.items() if n > 0)
