"""Data-placement layer: fragment maps, placement policies, routing.

Supports the ``"partial"`` replication protocol: the database is split
into warehouse-keyed fragments, each replicated by its own GCS group,
and every transaction is routed to exactly the fragment groups its
read/write sets touch.
"""

from .fragments import (
    DEFAULT_PLACEMENT,
    PLACEMENT_POLICIES,
    FragmentMap,
    fragment_of_site,
    sites_of_fragment,
)
from .router import RoutingDecision, TransactionRouter

__all__ = [
    "DEFAULT_PLACEMENT",
    "PLACEMENT_POLICIES",
    "FragmentMap",
    "RoutingDecision",
    "TransactionRouter",
    "fragment_of_site",
    "sites_of_fragment",
]
