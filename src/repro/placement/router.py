"""Transaction routing: which fragment groups must certify a transaction.

The router classifies a transaction from its read and write sets:
single-fragment transactions certify through their one group's total
order; cross-fragment transactions are atomically multicast to exactly
the groups they touch.  Classification is a pure function of the sets
plus the home fragment, so every site — origin or remote — computes the
same answer from the same marshalled request.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Tuple

from ..db.tuples import is_table_lock
from .fragments import FragmentMap

__all__ = ["RoutingDecision", "TransactionRouter"]


class RoutingDecision(NamedTuple):
    """Where a transaction must be certified.

    ``fragments`` is the sorted, de-duplicated tuple of touched
    fragments; ``home`` is the fragment of the transaction's home
    warehouse.  ``is_cross`` distinguishes the genuine-multicast path.
    """

    fragments: Tuple[int, ...]
    home: int

    @property
    def is_cross(self) -> bool:
        return len(self.fragments) > 1


class TransactionRouter:
    """Maps read/write sets to the set of fragment groups they touch."""

    __slots__ = ("fragment_map", "_all_fragments")

    def __init__(self, fragment_map: FragmentMap):
        self.fragment_map = fragment_map
        self._all_fragments = tuple(range(fragment_map.fragments))

    def route(
        self,
        read_set: Iterable[int],
        write_set: Iterable[int],
        home_fragment: int,
    ) -> RoutingDecision:
        """Classify a transaction.

        Whole-table locks (read-set escalation) touch every fragment —
        the table's rows are spread across all of them.  Unmappable ids
        (item catalog, fresh insert rows) constrain nothing: the item
        catalog is read-only and replicated everywhere, and a fresh row
        can never conflict.  A transaction whose sets pin no fragment at
        all (read-only against the catalog, or empty) stays home.
        """
        if not 0 <= home_fragment < self.fragment_map.fragments:
            raise ValueError(f"home fragment {home_fragment} out of range")
        touched = set()
        fragment_of_tuple = self.fragment_map.fragment_of_tuple
        for tuple_id in read_set:
            if is_table_lock(tuple_id):
                return RoutingDecision(self._all_fragments, home_fragment)
            fragment = fragment_of_tuple(tuple_id)
            if fragment is not None:
                touched.add(fragment)
        for tuple_id in write_set:
            if is_table_lock(tuple_id):
                return RoutingDecision(self._all_fragments, home_fragment)
            fragment = fragment_of_tuple(tuple_id)
            if fragment is not None:
                touched.add(fragment)
        if not touched:
            touched.add(home_fragment)
        return RoutingDecision(tuple(sorted(touched)), home_fragment)
