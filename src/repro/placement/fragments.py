"""Data placement: fragmenting the TPC-C database across replica groups.

The full-replication protocols keep a complete copy of the database at
every site, so every write-set is a full-group broadcast.  Partial
replication (Sutra & Shapiro, *Fault-Tolerant Partial Replication in
Large-Scale Database Systems*) splits the database into *fragments*,
each replicated by its own group: a transaction that touches a single
fragment pays only that group's total order.

Fragments are keyed on TPC-C warehouse ranges — the natural sharding
unit, since every update transaction is anchored at a home warehouse.
Ownership is derived from the schema's row formulas through
:func:`repro.tpcc.schema.warehouse_of_tuple`, the single inverse of the
layout math, so the placement layer never re-derives warehouse sizing.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..tpcc.schema import warehouse_of_tuple, warehouses_for_clients

__all__ = [
    "PLACEMENT_POLICIES",
    "DEFAULT_PLACEMENT",
    "FragmentMap",
    "fragment_of_site",
    "sites_of_fragment",
]

#: Registered warehouse->fragment placement policies.
#:
#: ``range``        — contiguous warehouse blocks per fragment; aligns
#:                    with the contiguous client blocks sites serve, so
#:                    a client's home warehouse tends to live in its own
#:                    site's fragment.
#: ``round-robin``  — warehouse ``w`` goes to fragment ``w % fragments``;
#:                    deliberately locality-hostile, the control arm for
#:                    the scale-out experiment.
PLACEMENT_POLICIES: Tuple[str, ...] = ("range", "round-robin")
DEFAULT_PLACEMENT = "range"


def fragment_of_site(site: int, sites: int, fragments: int) -> int:
    """The fragment whose group site ``site`` belongs to.

    Sites are carved into contiguous blocks, one block per fragment,
    mirroring the contiguous-range carve used for warehouses under the
    ``range`` policy.  With ``fragments == 1`` every site maps to
    fragment 0 (full replication).
    """
    if not 0 <= site < sites:
        raise ValueError(f"site {site} out of range for {sites} sites")
    if not 1 <= fragments <= sites:
        raise ValueError(f"{fragments} fragments need at least that many sites")
    return ((site + 1) * fragments - 1) // sites


def sites_of_fragment(fragment: int, sites: int, fragments: int) -> Tuple[int, ...]:
    """The (contiguous, ascending) site indices replicating ``fragment``."""
    if not 0 <= fragment < fragments:
        raise ValueError(f"fragment {fragment} out of range")
    if not 1 <= fragments <= sites:
        raise ValueError(f"{fragments} fragments need at least that many sites")
    lo = fragment * sites // fragments
    hi = (fragment + 1) * sites // fragments
    return tuple(range(lo, hi))


class FragmentMap:
    """Immutable warehouse->fragment ownership map.

    Precomputes the owner of every warehouse at construction, so lookups
    on the certification hot path are a tuple index.
    """

    __slots__ = ("warehouses", "fragments", "policy", "_owner")

    def __init__(self, warehouses: int, fragments: int, policy: str = DEFAULT_PLACEMENT):
        if warehouses < 1:
            raise ValueError("need at least one warehouse")
        if not 1 <= fragments <= warehouses:
            raise ValueError(
                f"{fragments} fragments need at least {fragments} warehouses "
                f"(have {warehouses})"
            )
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        self.warehouses = warehouses
        self.fragments = fragments
        self.policy = policy
        if policy == "range":
            self._owner = tuple(
                ((w + 1) * fragments - 1) // warehouses for w in range(warehouses)
            )
        else:  # round-robin
            self._owner = tuple(w % fragments for w in range(warehouses))

    @classmethod
    def for_clients(
        cls, clients: int, fragments: int, policy: str = DEFAULT_PLACEMENT
    ) -> "FragmentMap":
        """Build the map for a scenario's client count, sizing warehouses
        through the same helper the workload generator uses."""
        return cls(warehouses_for_clients(clients), fragments, policy)

    # -- lookups ----------------------------------------------------------
    def fragment_of_warehouse(self, warehouse: int) -> int:
        if not 0 <= warehouse < self.warehouses:
            raise ValueError(
                f"warehouse {warehouse} out of range for {self.warehouses}"
            )
        return self._owner[warehouse]

    def warehouses_of_fragment(self, fragment: int) -> Tuple[int, ...]:
        if not 0 <= fragment < self.fragments:
            raise ValueError(f"fragment {fragment} out of range")
        return tuple(
            w for w, owner in enumerate(self._owner) if owner == fragment
        )

    def fragment_of_tuple(self, tuple_id: int) -> Optional[int]:
        """The fragment owning ``tuple_id``, or ``None`` when the id
        carries no warehouse (table locks, item catalog, fresh inserts)."""
        warehouse = warehouse_of_tuple(tuple_id)
        if warehouse is None:
            return None
        return self.fragment_of_warehouse(warehouse)

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FragmentMap):
            return NotImplemented
        return (
            self.warehouses == other.warehouses
            and self.fragments == other.fragments
            and self.policy == other.policy
        )

    def __hash__(self) -> int:
        return hash((self.warehouses, self.fragments, self.policy))

    def __repr__(self) -> str:
        return (
            f"FragmentMap(warehouses={self.warehouses}, "
            f"fragments={self.fragments}, policy={self.policy!r})"
        )
