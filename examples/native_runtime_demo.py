#!/usr/bin/env python
"""The same protocol code on a real network (paper §2.3).

The group communication stack is written against an abstraction layer
with two implementations: the simulation bridge used by every
experiment, and a native bridge over ``threading.Timer`` + UDP sockets —
the analogue of the paper's java.util.Timer / DatagramSocket bridge.
This demo runs a 3-member group on real loopback sockets and shows
atomic multicast delivering identical total orders, with zero changes to
the protocol classes.

Run:  python examples/native_runtime_demo.py
"""

import time

from repro.core.runtime_api import NativeProtocolRuntime
from repro.gcs.config import GcsConfig
from repro.gcs.stack import GroupCommunication

MEMBERS = 3
MESSAGES = 12


def main() -> None:
    runtimes = [NativeProtocolRuntime(("127.0.0.1", 0), seed=i) for i in range(MEMBERS)]
    addresses = {i: rt.local_address() for i, rt in enumerate(runtimes)}
    endpoint_ids = {addr: i for i, addr in addresses.items()}
    # loopback has no IP multicast group here: the stack falls back to
    # unicast fan-out, exactly like the protocol does on WANs (§3.4)
    config = GcsConfig(heartbeat_interval=0.2, stability_interval=0.2)
    stacks = []
    delivered = {i: [] for i in range(MEMBERS)}
    for i, runtime in enumerate(runtimes):
        fan_out = [addr for j, addr in addresses.items() if j != i]
        stack = GroupCommunication(
            runtime, i, addresses, fan_out, config=config,
            endpoint_ids=endpoint_ids,
        )
        stack.on_deliver = (
            lambda gseq, origin, payload, member=i:
            delivered[member].append((gseq, origin, payload.decode()))
        )
        stacks.append(stack)
    for runtime in runtimes:
        runtime.start()
    for stack in stacks:
        stack.start()

    print(f"{MEMBERS} members on real UDP sockets: {list(addresses.values())}")
    for k in range(MESSAGES):
        stacks[k % MEMBERS].multicast(f"msg-{k} from member {k % MEMBERS}".encode())
        time.sleep(0.02)

    deadline = time.time() + 10.0
    while time.time() < deadline and any(
        len(delivered[i]) < MESSAGES for i in range(MEMBERS)
    ):
        time.sleep(0.05)

    orders = [tuple((g, o) for g, o, _ in delivered[i]) for i in range(MEMBERS)]
    for i in range(MEMBERS):
        print(f"member {i} delivered {len(delivered[i])} messages")
    assert all(len(delivered[i]) == MESSAGES for i in range(MEMBERS)), (
        "not all messages delivered in time"
    )
    assert orders[0] == orders[1] == orders[2], "total order violated!"
    print("\nidentical total order at every member:")
    for gseq, origin, text in delivered[0]:
        print(f"  #{gseq:<3d} (origin {origin}) {text}")

    for runtime in runtimes:
        runtime.close()
    print("\nsame protocol classes, real network — no code changes (§2.3)")


if __name__ == "__main__":
    main()
