#!/usr/bin/env python
"""Cross-protocol comparison: DBSM certification vs primary-copy.

Declares one campaign spec whose only sweep axis is the replication
protocol — identical workload, seed, network and fault-free conditions;
the protocol is the single variable — expands it, and prints the
throughput / latency / abort-rate comparison the pluggable protocol
layer exists for, derived and rendered through :mod:`repro.analysis`
(one metrics table plus a baseline-vs-candidate delta table).

Expected shape: at this load the deferred-update DBSM spreads update
execution over all sites, while primary-copy funnels every update
through one primary — so DBSM sustains higher throughput and lower
latency, and primary-copy's aborts are write-lock conflicts piling up
at the primary rather than certification failures.

Set ``REPRO_WORKERS=2`` to run the protocols in parallel worker
processes (results are deterministic and identical either way).  The
same comparison is one command away for any registered campaign:
``python -m repro.runner run fig5 --protocol all`` followed by
``python -m repro.runner report <artifact-dir> --compare
protocol=dbsm,primary-copy``.

Run:  python examples/protocol_comparison.py
"""

from repro import CampaignSpec, available_protocols
from repro.analysis import ResultSet, render_comparison, render_text
from repro.runner import resolve_workers, run_campaign

SITES = 3
CLIENTS = 500
TRANSACTIONS = 1500

METRICS = (
    "throughput_tpm",
    "mean_latency_ms",
    "abort_rate",
    "cpu_total",
    "cpu_protocol",
    "net_kbps",
)

SPEC = CampaignSpec(
    name="protocol-comparison",
    description="one 3-site/500-client cell per registered protocol",
    kind="performance",
    label="{protocol}",
    axes=[("protocol", available_protocols())],
    template={
        "sites": SITES,
        "cpus_per_site": 1,
        "clients": CLIENTS,
        "transactions": TRANSACTIONS,
        "seed": 2005,
        "seed_per_clients": False,
    },
)


def main() -> None:
    workers = resolve_workers()
    print(
        f"{SITES} sites, {CLIENTS} clients, {TRANSACTIONS} transactions "
        f"per protocol, {workers} worker(s)"
    )
    campaign = run_campaign(SPEC.expand(), workers=workers, progress=workers > 1)
    for _, result in campaign.pairs():
        result.check_safety()  # identical commit sequences at all sites
    rs = ResultSet.from_campaign(campaign, spec=SPEC)
    print(render_text(rs.table(METRICS), title="protocol comparison"))
    protocols = rs.axis_values("protocol")
    if len(protocols) > 1:
        print(
            render_comparison(
                rs.compare(
                    {"protocol": protocols[0]},
                    {"protocol": protocols[1]},
                    ("throughput_tpm", "mean_latency_ms", "abort_rate"),
                )
            )
        )
    print(
        "\nsame workload, same group-communication substrate — the "
        "protocol is the only variable; both runs passed the §5.3 "
        "1-copy-serializability check"
    )


if __name__ == "__main__":
    main()
