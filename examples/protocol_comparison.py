#!/usr/bin/env python
"""Cross-protocol comparison: DBSM certification vs primary-copy.

Declares one campaign spec whose only sweep axis is the replication
protocol — identical workload, seed, network and fault-free conditions;
the protocol is the single variable — expands it, and prints the
throughput / latency / abort-rate comparison the pluggable protocol
layer exists for.

Expected shape: at this load the deferred-update DBSM spreads update
execution over all sites, while primary-copy funnels every update
through one primary — so DBSM sustains higher throughput and lower
latency, and primary-copy's aborts are write-lock conflicts piling up
at the primary rather than certification failures.

Set ``REPRO_WORKERS=2`` to run the protocols in parallel worker
processes (results are deterministic and identical either way).  The
same comparison is one command away for any registered campaign:
``python -m repro.runner run fig5 --protocol all``.

Run:  python examples/protocol_comparison.py
"""

from repro import CampaignSpec, available_protocols
from repro.runner import resolve_workers, run_campaign

SITES = 3
CLIENTS = 500
TRANSACTIONS = 1500

SPEC = CampaignSpec(
    name="protocol-comparison",
    description="one 3-site/500-client cell per registered protocol",
    kind="performance",
    label="{protocol}",
    axes=[("protocol", available_protocols())],
    template={
        "sites": SITES,
        "cpus_per_site": 1,
        "clients": CLIENTS,
        "transactions": TRANSACTIONS,
        "seed": 2005,
        "seed_per_clients": False,
    },
)


def main() -> None:
    workers = resolve_workers()
    print(
        f"{SITES} sites, {CLIENTS} clients, {TRANSACTIONS} transactions "
        f"per protocol, {workers} worker(s)\n"
    )
    campaign = run_campaign(SPEC.expand(), workers=workers, progress=workers > 1)
    print(
        f"{'protocol':<14s} {'tpm':>8s} {'latency':>9s} {'abort':>7s} "
        f"{'cpu':>6s} {'proto cpu':>9s} {'net KB/s':>9s}"
    )
    for protocol, result in campaign.pairs():
        result.check_safety()  # identical commit sequences at all sites
        total_cpu, protocol_cpu = result.cpu_usage()
        print(
            f"{protocol:<14s} {result.throughput_tpm():8.1f} "
            f"{result.mean_latency() * 1000:7.1f}ms "
            f"{result.abort_rate():6.2f}% "
            f"{total_cpu * 100:5.1f}% "
            f"{protocol_cpu * 100:8.2f}% "
            f"{result.network_kbps():9.1f}"
        )
    print(
        "\nsame workload, same group-communication substrate — the "
        "protocol is the only variable; both runs passed the §5.3 "
        "1-copy-serializability check"
    )


if __name__ == "__main__":
    main()
