#!/usr/bin/env python
"""Model validation curves: the Figure 3 micro-benchmarks.

Prints the CSRT-measured curves next to the real-system reference for
the three §4.2 validation benchmarks: UDP flood write bandwidth,
receiver bandwidth on Ethernet 100, and round-trip latency — including
the two published divergences (4 KB page penalty; SSFNet's missing MTU
enforcement).  Tables render through the shared
:mod:`repro.analysis` formatter.

Run:  python examples/validation_curves.py
"""

from repro.analysis import format_table
from repro.core.validation import (
    csrt_recv_bandwidth_bps,
    csrt_round_trip,
    csrt_send_bandwidth_bps,
    real_recv_bandwidth_bps,
    real_round_trip,
    real_send_bandwidth_bps,
)

SIZES = (64, 128, 256, 512, 1024, 2048, 4096)


def main() -> None:
    print(format_table(
        "Figure 3(a): bandwidth written (Mbit/s)",
        ("size", "real", "csrt"),
        [
            (
                size,
                f"{real_send_bandwidth_bps(size) / 1e6:8.1f}",
                f"{csrt_send_bandwidth_bps(size, duration=0.05) / 1e6:8.1f}",
            )
            for size in SIZES
        ],
    ))

    print(format_table(
        "Figure 3(b): bandwidth on Ethernet 100 (Mbit/s)",
        ("size", "real", "csrt"),
        [
            (
                size,
                f"{real_recv_bandwidth_bps(size) / 1e6:8.1f}",
                f"{csrt_recv_bandwidth_bps(size, duration=0.05) / 1e6:8.1f}",
            )
            for size in SIZES
        ],
    ))

    print(format_table(
        "Figure 3(c): round-trip (us); csrt* = MTU not enforced (SSFNet)",
        ("size", "real", "csrt", "csrt*"),
        [
            (
                size,
                f"{real_round_trip(size) * 1e6:9.1f}",
                f"{csrt_round_trip(size, rounds=15) * 1e6:9.1f}",
                f"{csrt_round_trip(size, rounds=15, enforce_mtu=False) * 1e6:9.1f}",
            )
            for size in SIZES
        ],
    ))
    print("\nthe protocol restricts packets to a safe size below the MTU, "
          "avoiding the divergence region (§4.2)")


if __name__ == "__main__":
    main()
