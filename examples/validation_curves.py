#!/usr/bin/env python
"""Model validation curves: the Figure 3 micro-benchmarks.

Prints the CSRT-measured curves next to the real-system reference for
the three §4.2 validation benchmarks: UDP flood write bandwidth,
receiver bandwidth on Ethernet 100, and round-trip latency — including
the two published divergences (4 KB page penalty; SSFNet's missing MTU
enforcement).

Run:  python examples/validation_curves.py
"""

from repro.core.validation import (
    csrt_recv_bandwidth_bps,
    csrt_round_trip,
    csrt_send_bandwidth_bps,
    real_recv_bandwidth_bps,
    real_round_trip,
    real_send_bandwidth_bps,
)

SIZES = (64, 128, 256, 512, 1024, 2048, 4096)


def main() -> None:
    print("Figure 3(a) — bandwidth written (Mbit/s)")
    print(f"{'size':>6s} {'real':>8s} {'csrt':>8s}")
    for size in SIZES:
        print(f"{size:6d} {real_send_bandwidth_bps(size)/1e6:8.1f} "
              f"{csrt_send_bandwidth_bps(size, duration=0.05)/1e6:8.1f}")

    print("\nFigure 3(b) — bandwidth on Ethernet 100 (Mbit/s)")
    print(f"{'size':>6s} {'real':>8s} {'csrt':>8s}")
    for size in SIZES:
        print(f"{size:6d} {real_recv_bandwidth_bps(size)/1e6:8.1f} "
              f"{csrt_recv_bandwidth_bps(size, duration=0.05)/1e6:8.1f}")

    print("\nFigure 3(c) — round-trip (us); csrt* = MTU not enforced (SSFNet)")
    print(f"{'size':>6s} {'real':>9s} {'csrt':>9s} {'csrt*':>9s}")
    for size in SIZES:
        print(f"{size:6d} {real_round_trip(size)*1e6:9.1f} "
              f"{csrt_round_trip(size, rounds=15)*1e6:9.1f} "
              f"{csrt_round_trip(size, rounds=15, enforce_mtu=False)*1e6:9.1f}")
    print("\nthe protocol restricts packets to a safe size below the MTU, "
          "avoiding the divergence region (§4.2)")


if __name__ == "__main__":
    main()
