#!/usr/bin/env python
"""Automated regression testing (paper §7).

"The resulting system has also been put to use for automated regression
tests ... the ability to autonomously run a set of realistic load and
fault scenarios and automatically check for performance or reliability
regressions has proved invaluable."

This demo records baselines for a small scenario matrix (a replicated
cluster, a loss-injected cluster), then re-checks them — clean by
construction, since the cost-model clock makes runs deterministic — and
finally shows a doctored baseline being caught as a regression.

The suite sweeps its scenarios through the campaign runner: set
``REPRO_WORKERS=2`` to record and check both scenarios in parallel
worker processes; determinism makes the comparison identical.

Run:  python examples/regression_suite.py
"""

import json
import tempfile
from pathlib import Path

from repro import ScenarioConfig, random_loss
from repro.core.regression import RegressionSuite
from repro.runner import resolve_workers


def main() -> None:
    suite = RegressionSuite({
        "replicated": ScenarioConfig(
            sites=3, cpus_per_site=1, clients=60, transactions=300, seed=11
        ),
        "replicated-lossy": ScenarioConfig(
            sites=3, cpus_per_site=1, clients=60, transactions=300, seed=12,
            faults={i: random_loss(0.05, seed=40 + i) for i in range(3)},
        ),
    }, workers=resolve_workers())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "baselines.json"

        print("recording baselines ...")
        baselines = suite.record(path)
        for name, baseline in sorted(baselines.items()):
            metrics = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(baseline.metrics.items())
            )
            print(f"  {name}: {metrics}")

        print("\nre-checking the unchanged tree ...")
        findings = suite.check(path)
        print(f"  findings: {findings or 'none — deterministic replay'}")

        print("\ninjecting a fake 2x-throughput baseline (simulating a "
              "code change that halved throughput) ...")
        data = json.loads(path.read_text())
        data["replicated"]["metrics"]["throughput_tpm"] *= 2.0
        path.write_text(json.dumps(data))
        findings = suite.check(path)
        for finding in findings:
            print(f"  {finding}")
        assert findings, "regression not detected?"
        print("\nregression caught — this is the §7 workflow")


if __name__ == "__main__":
    main()
