#!/usr/bin/env python
"""Automated regression testing (paper §7).

"The resulting system has also been put to use for automated regression
tests ... the ability to autonomously run a set of realistic load and
fault scenarios and automatically check for performance or reliability
regressions has proved invaluable."

This demo declares its scenario matrix as a campaign spec — a fault-free
replicated cluster and a loss-injected one, i.e. one ``fault`` axis —
builds a ``RegressionSuite`` straight from it with
``RegressionSuite.from_campaign``, records baselines, then re-checks
them — clean by construction, since the cost-model clock makes runs
deterministic — and finally shows a doctored baseline being caught as a
regression.

The suite sweeps its scenarios through the campaign runner: set
``REPRO_WORKERS=2`` to record and check both scenarios in parallel
worker processes; determinism makes the comparison identical.

Run:  python examples/regression_suite.py
"""

import json
import tempfile
from pathlib import Path

from repro import CampaignSpec
from repro.analysis import format_table
from repro.core.regression import RegressionSuite
from repro.runner import resolve_workers

SPEC = CampaignSpec(
    name="regression-demo",
    description="a replicated cluster, fault-free and under 5% random loss",
    kind="fault",
    label="loss={fault}",
    axes=[("fault", ("none", "random"))],
    template={"sites": 3, "clients": 60, "transactions": 300, "seed": 11},
)


def main() -> None:
    suite = RegressionSuite.from_campaign(SPEC, workers=resolve_workers())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "baselines.json"

        print("recording baselines ...")
        baselines = suite.record(path)
        metric_names = sorted(
            next(iter(baselines.values())).metrics
        )
        print(format_table(
            "recorded baselines",
            ("scenario",) + tuple(metric_names),
            [
                (name,)
                + tuple(
                    f"{baseline.metrics[m]:.4g}" for m in metric_names
                )
                for name, baseline in sorted(baselines.items())
            ],
        ))

        print("\nre-checking the unchanged tree ...")
        findings = suite.check(path)
        print(f"  findings: {findings or 'none — deterministic replay'}")

        print("\ninjecting a fake 2x-throughput baseline (simulating a "
              "code change that halved throughput) ...")
        data = json.loads(path.read_text())
        data["loss=none"]["metrics"]["throughput_tpm"] *= 2.0
        path.write_text(json.dumps(data))
        findings = suite.check(path)
        for finding in findings:
            print(f"  {finding}")
        assert findings, "regression not detected?"
        print("\nregression caught — this is the §7 workflow")


if __name__ == "__main__":
    main()
