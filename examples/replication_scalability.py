#!/usr/bin/env python
"""Replication scalability: centralized CPUs vs replicated sites.

Reproduces the headline comparison of the paper's §5.1 at a reduced
scale: a replicated database with N single-CPU sites tracks the
throughput of a centralized server with N CPUs — replication does not
limit throughput, while adding the resilience of multiple sites.

The three configurations are a campaign spec sweeping one ``system``
axis of ``[label, sites, cpus_per_site]`` triples (the Figure 5 idiom);
the summary is a :mod:`repro.analysis` metrics table over the campaign
(one registered metric per column).  Set ``REPRO_WORKERS=3`` to execute
the cells in parallel worker processes — the printed metrics are
identical either way, runs are deterministic.  The replicated cell uses
the DBSM; widen with ``SPEC.with_axis("protocol",
available_protocols())`` — or compare via ``python -m repro.runner run
fig5 --protocol all`` — for the passive-replication curve.

Run:  python examples/replication_scalability.py
"""

from repro import CampaignSpec
from repro.analysis import ResultSet, render_text
from repro.runner import resolve_workers, run_campaign

CLIENTS = 240
TRANSACTIONS = 1200

METRICS = (
    "throughput_tpm",
    "mean_latency_ms",
    "abort_rate",
    "cpu_total",
    "net_kbps",
)

SPEC = CampaignSpec(
    name="replication-scalability",
    description="N centralized CPUs vs N replicated single-CPU sites",
    kind="performance",
    label="{system}",
    axes=[
        (
            "system",
            (
                ("centralized, 1 CPU ", 1, 1),
                ("centralized, 3 CPUs", 1, 3),
                ("replicated, 3 sites", 3, 1),
            ),
        ),
    ],
    template={
        "clients": CLIENTS,
        "transactions": TRANSACTIONS,
        "seed": 99,
        "seed_per_clients": False,
    },
)


def main() -> None:
    workers = resolve_workers()
    print(f"{CLIENTS} clients, {TRANSACTIONS} transactions per run, "
          f"{workers} worker(s)")
    campaign = run_campaign(SPEC.expand(), workers=workers, progress=workers > 1)
    for _, result in campaign.pairs():
        if result.config.sites > 1:
            result.check_safety()
    rs = ResultSet.from_campaign(campaign, spec=SPEC)
    print(render_text(rs.table(METRICS), title="replication scalability"))
    print(
        "\nthe 3-site replicated system tracks the 3-CPU centralized one: "
        "certification adds latency, not a throughput ceiling (§5.1)"
    )


if __name__ == "__main__":
    main()
