#!/usr/bin/env python
"""Quickstart: run a replicated database under realistic load.

Builds a 3-site Database State Machine cluster on a simulated 100 Mbit/s
Ethernet, drives it with 150 TPC-C clients, and prints the numbers the
paper reports — throughput, latency, per-class abort rates, resource
usage — via the :mod:`repro.analysis` metric registry (every number a
report derives has a registered name), then verifies the safety
condition (every replica committed the same sequence of transactions).

Next steps: pass ``protocol="primary-copy"`` to compare passive
replication (see examples/protocol_comparison.py or
``python -m repro.runner --protocol``), and add ``faults={...}`` with
crash / recover / partition / heal actions to exercise the fault model
(see examples/fault_injection_campaign.py and README "Fault model &
recovery").

Run:  python examples/quickstart.py
"""

from repro import Scenario, ScenarioConfig
from repro.analysis import ResultSet, class_abort_table, get_metric, render_text

HEADLINE = (
    "sim_time",
    "throughput_tpm",
    "mean_latency_ms",
    "abort_rate",
    "cpu_total",
    "cpu_protocol",
    "disk",
    "net_kbps",
)


def main() -> None:
    config = ScenarioConfig(
        sites=3,  # replicated database with 3 single-CPU sites
        cpus_per_site=1,
        clients=150,  # closed-loop TPC-C terminals, 12 s mean think time
        transactions=1500,  # stop after this many completions
        seed=2005,
    )
    print(f"running {config.sites} sites / {config.clients} clients ...\n")
    result = Scenario(config).run()

    for name in HEADLINE:
        metric = get_metric(name)
        print(f"{name:<16s} {metric.fmt.format(metric(result)):>10s} "
              f"{metric.unit:<8s} {metric.description}")

    rs = ResultSet.from_results([("quickstart", result, {})])
    print(render_text(
        class_abort_table(rs, "protocol"),
        title="abort rates by class (%)",
        col_names={"dbsm": "abort %"},
    ))

    counts = result.check_safety()
    print(f"\nsafety check passed: every site committed the same sequence "
          f"({counts})")


if __name__ == "__main__":
    main()
