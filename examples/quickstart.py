#!/usr/bin/env python
"""Quickstart: run a replicated database under realistic load.

Builds a 3-site Database State Machine cluster on a simulated 100 Mbit/s
Ethernet, drives it with 150 TPC-C clients, and prints the numbers the
paper reports: throughput, latency, per-class abort rates, resource
usage — then verifies the safety condition (every replica committed the
same sequence of transactions).

Next steps: pass ``protocol="primary-copy"`` to compare passive
replication (see examples/protocol_comparison.py or
``python -m repro.runner --protocol``), and add ``faults={...}`` with
crash / recover / partition / heal actions to exercise the fault model
(see examples/fault_injection_campaign.py and README "Fault model &
recovery").

Run:  python examples/quickstart.py
"""

from repro import Scenario, ScenarioConfig


def main() -> None:
    config = ScenarioConfig(
        sites=3,  # replicated database with 3 single-CPU sites
        cpus_per_site=1,
        clients=150,  # closed-loop TPC-C terminals, 12 s mean think time
        transactions=1500,  # stop after this many completions
        seed=2005,
    )
    print(f"running {config.sites} sites / {config.clients} clients ...")
    result = Scenario(config).run()

    print(f"\nsimulated time        {result.sim_time:8.1f} s")
    print(f"throughput            {result.throughput_tpm():8.1f} committed tpm")
    print(f"mean latency          {result.mean_latency()*1000:8.1f} ms")
    print(f"abort rate            {result.abort_rate():8.2f} %")

    total_cpu, protocol_cpu = result.cpu_usage()
    print(f"CPU usage             {total_cpu*100:8.1f} % "
          f"(protocol real jobs: {protocol_cpu*100:.2f} %)")
    print(f"disk usage            {result.disk_usage()*100:8.1f} %")
    print(f"network               {result.network_kbps():8.1f} KB/s")

    print("\nabort rates by class (%):")
    for tx_class, rate in sorted(result.metrics.abort_rate_table().items()):
        print(f"  {tx_class:<20s} {rate:6.2f}")

    counts = result.check_safety()
    print(f"\nsafety check passed: every site committed the same sequence "
          f"({counts})")


if __name__ == "__main__":
    main()
