#!/usr/bin/env python
"""Fault-injection campaign: the §5.3 experiment end to end.

Runs the registered ``safety`` campaign — the paper's five fault types
(clock drift, scheduling latency, random loss, bursty loss, crash of a
member / of the sequencer) plus the recovery fault-loads
(crash→recover and partition→heal, for an ordinary member and for the
sequencer) — and for each cell verifies the safety condition (all
operational sites committed exactly the same transaction sequence, with
rejoined replicas bit-identical to the survivors) and reports the
performance impact and recovery metrics.

The whole matrix is one named campaign spec, so the identical run is
also available as ``python -m repro.runner run safety --set
transactions=600`` — and this script only *slices* the registered spec.
Knobs (the same ones every entry point honours — see README "Fault
model & recovery"): set ``REPRO_PROTOCOL=primary-copy`` to run the
matrix under passive replication instead of the DBSM (the command-line
equivalent is ``--protocol``), ``REPRO_WORKERS=N`` to spread cells
across N worker processes, and ``REPRO_ARTIFACT_DIR`` to make the
campaign resumable (a second invocation loads completed cells from
``$REPRO_ARTIFACT_DIR/faults/``, where the spec hash is also recorded
for provenance).

Run:  python examples/fault_injection_campaign.py
"""

from repro import get_campaign
from repro.core.env import env_choice
from repro.core.metrics import quantiles
from repro.protocols import available_protocols
from repro.runner import resolve_workers, run_campaign


def main() -> None:
    protocol = env_choice(
        "REPRO_PROTOCOL", "dbsm", available_protocols(), strict=True
    )
    spec = (
        get_campaign("safety")
        .with_axis("protocol", (protocol,))
        .with_axis("transactions", (600,))
    )
    workers = resolve_workers()
    campaign = run_campaign(
        spec.expand(),
        workers=workers,
        campaign="faults",
        progress=workers > 1,
        manifest=spec.manifest(),
    )
    print(f"protocol: {protocol}  (spec hash {spec.spec_hash()})\n")
    print(f"{'fault':<26s} {'records':>8s} {'tpm':>8s} "
          f"{'cert p50/p99 (ms)':>18s} {'commits/site':>22s}")
    for name, result in campaign.pairs():
        counts = result.check_safety()  # raises on divergence
        certs = result.metrics.certification_latencies()
        if certs:
            p50, p99 = quantiles(certs, (0.5, 0.99))
            cert_col = f"{p50*1000:7.1f} / {p99*1000:7.1f}"
        else:
            cert_col = "-"
        sites_col = " ".join(str(v) for v in counts.values())
        print(f"{name:<26s} {len(result.metrics.records):8d} "
              f"{result.throughput_tpm():8.1f} {cert_col:>18s} "
              f"{sites_col:>22s}")
    print("\nrecovery fault-loads (leave → state transfer → live):")
    for name, result in campaign.pairs():
        for event in result.completed_rejoins():
            print(f"  {name:<26s} site{event.site} rejoined in "
                  f"{event.time_to_rejoin():.2f}s  "
                  f"snapshot {event.snapshot_bytes} B  "
                  f"backlog {event.backlog_replayed}  "
                  f"orphans {event.orphaned_commits}")
    print("\nall campaigns passed the safety check: operational sites "
          "committed identical sequences; crashed sites hold a prefix; "
          "rejoined sites are bit-identical to the survivors")


if __name__ == "__main__":
    main()
