#!/usr/bin/env python
"""Fault-injection campaign: the §5.3 experiment end to end.

Runs the registered ``safety`` campaign — the paper's five fault types
(clock drift, scheduling latency, random loss, bursty loss, crash of a
member / of the sequencer) plus the recovery fault-loads
(crash→recover and partition→heal, for an ordinary member and for the
sequencer) — and for each cell verifies the safety condition (all
operational sites committed exactly the same transaction sequence, with
rejoined replicas bit-identical to the survivors) and reports the
performance impact and recovery metrics through :mod:`repro.analysis`
(one metrics table over the ``fault`` axis; recovery numbers are the
``time_to_rejoin`` / ``snapshot_bytes`` / ``backlog_replayed`` /
``orphaned_commits`` registered metrics, NaN — rendered ``–`` — for
cells without a completed rejoin).

The whole matrix is one named campaign spec, so the identical run is
also available as ``python -m repro.runner run safety --set
transactions=600`` — and this script only *slices* the registered spec;
with ``REPRO_ARTIFACT_DIR`` set, ``python -m repro.runner report
faults`` re-renders the stored results any time.  Knobs (the same ones
every entry point honours — see README "Fault model & recovery"): set
``REPRO_PROTOCOL=primary-copy`` to run the matrix under passive
replication instead of the DBSM (the command-line equivalent is
``--protocol``), ``REPRO_WORKERS=N`` to spread cells across N worker
processes, and ``REPRO_ARTIFACT_DIR`` to make the campaign resumable
(a second invocation loads completed cells from
``$REPRO_ARTIFACT_DIR/faults/``, where the spec hash is also recorded
for provenance).

Run:  python examples/fault_injection_campaign.py
"""

from repro import get_campaign
from repro.analysis import ResultSet, render_text
from repro.core.env import env_choice
from repro.protocols import available_protocols
from repro.runner import resolve_workers, run_campaign

IMPACT_METRICS = ("records", "throughput_tpm", "cert_p50_ms", "cert_p99_ms")
RECOVERY_METRICS = (
    "time_to_rejoin",
    "snapshot_bytes",
    "backlog_replayed",
    "orphaned_commits",
)


def main() -> None:
    protocol = env_choice(
        "REPRO_PROTOCOL", "dbsm", available_protocols(), strict=True
    )
    spec = (
        get_campaign("safety")
        .with_axis("protocol", (protocol,))
        .with_axis("transactions", (600,))
    )
    workers = resolve_workers()
    campaign = run_campaign(
        spec.expand(),
        workers=workers,
        campaign="faults",
        progress=workers > 1,
        manifest=spec.manifest(),
    )
    print(f"protocol: {protocol}  (spec hash {spec.spec_hash()})")
    commit_counts = {}
    for name, result in campaign.pairs():
        commit_counts[name] = result.check_safety()  # raises on divergence
    rs = ResultSet.from_campaign(campaign, spec=spec)
    print(render_text(rs.table(IMPACT_METRICS), title="fault impact"))
    print("\ncommits per operational site (identical sequences, §5.3):")
    for name, counts in commit_counts.items():
        sites_col = " ".join(str(v) for v in counts.values())
        print(f"  {name:<30s} {sites_col}")
    print(
        render_text(
            rs.table(RECOVERY_METRICS),
            title="recovery fault-loads (leave → state transfer → live)",
        )
    )
    print("\nall campaigns passed the safety check: operational sites "
          "committed identical sequences; crashed sites hold a prefix; "
          "rejoined sites are bit-identical to the survivors")


if __name__ == "__main__":
    main()
