#!/usr/bin/env python
"""Fault-injection campaign: the §5.3 experiment end to end.

Runs a 3-site cluster under each of the paper's fault types — clock
drift, scheduling latency, random loss, bursty loss, crash of a member,
crash of the sequencer — and for each run verifies the safety condition
(all operational sites committed exactly the same transaction sequence)
and reports the performance impact.

The six cells run through the campaign runner: set ``REPRO_WORKERS=N``
to run them across N worker processes, and ``REPRO_ARTIFACT_DIR`` to
make the campaign resumable (a second invocation loads completed cells
from ``$REPRO_ARTIFACT_DIR/faults/``).

Run:  python examples/fault_injection_campaign.py
"""

from repro import ScenarioConfig
from repro.core.metrics import quantiles
from repro.core.scenarios import safety_fault_plans
from repro.runner import resolve_workers, run_campaign

FAULTS = ("clock-drift", "scheduling-latency", "random-loss",
          "bursty-loss", "crash-member", "crash-sequencer")


def main() -> None:
    plans = safety_fault_plans(sites=3, seed=7)
    grid = [
        (
            name,
            ScenarioConfig(
                sites=3,
                cpus_per_site=1,
                clients=90,
                transactions=600,
                seed=123,
                faults=plans[name],
                max_sim_time=600.0,
            ),
        )
        for name in FAULTS
    ]
    workers = resolve_workers()
    campaign = run_campaign(
        grid, workers=workers, campaign="faults", progress=workers > 1
    )
    print(f"{'fault':<22s} {'records':>8s} {'tpm':>8s} "
          f"{'cert p50/p99 (ms)':>18s} {'commits/site':>22s}")
    for name, result in campaign.pairs():
        counts = result.check_safety()  # raises on divergence
        certs = result.metrics.certification_latencies()
        if certs:
            p50, p99 = quantiles(certs, (0.5, 0.99))
            cert_col = f"{p50*1000:7.1f} / {p99*1000:7.1f}"
        else:
            cert_col = "-"
        sites_col = " ".join(str(v) for v in counts.values())
        print(f"{name:<22s} {len(result.metrics.records):8d} "
              f"{result.throughput_tpm():8.1f} {cert_col:>18s} "
              f"{sites_col:>22s}")
    print("\nall six campaigns passed the safety check: operational sites "
          "committed identical sequences; crashed sites hold a prefix")


if __name__ == "__main__":
    main()
