"""Ablation — read-set table-lock escalation (§3.3).

"The size of the read-set may render its multicast impractical.  In
this case, a threshold may be set, which defines when a table should be
locked instead of a large subset of its tuples."  The trade-off:
escalation shrinks termination messages but coarsens certification —
table locks conflict with every concurrent write on the table, so
delivery (the large-read-set class) aborts far more often.
"""

import pytest

from conftest import print_table

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.scenarios import scaled_transactions

THRESHOLDS = (None, 16)


@pytest.fixture(scope="module")
def escalation_sweep():
    results = {}
    for threshold in THRESHOLDS:
        config = ScenarioConfig(
            sites=3,
            cpus_per_site=1,
            clients=300,
            transactions=max(800, scaled_transactions() // 3),
            seed=61,
            readset_escalation_threshold=threshold,
            sample_interval=2.0,
            drain_time=8.0,
        )
        result = Scenario(config).run()
        result.check_safety()
        results[threshold] = result
    return results


def _delivery_message_bytes(threshold):
    """Mean marshaled termination-message size for delivery — the class
    whose read set is big enough to escalate (§3.3)."""
    import random

    from repro.dbsm.marshal import CommitRequest, marshal_request
    from repro.tpcc.workload import TpccWorkload

    workload = TpccWorkload(
        10, rng=random.Random(5), readset_escalation_threshold=threshold
    )
    sizes = []
    for _ in range(50):
        spec = workload.delivery(0)
        request = CommitRequest(
            origin=0,
            tx_id=1,
            start_seq=0,
            tx_class=spec.tx_class,
            read_set=spec.read_set,
            write_set=spec.write_set,
            write_bytes=spec.write_bytes(),
            commit_cpu=spec.commit_cpu,
            commit_sectors=spec.commit_sectors,
        )
        sizes.append(len(marshal_request(request)))
    return sum(sizes) / len(sizes)


def test_ablation_escalation_tradeoff(benchmark, escalation_sweep):
    message_bytes = benchmark.pedantic(
        lambda: {t: _delivery_message_bytes(t) for t in THRESHOLDS},
        rounds=1,
        iterations=1,
    )
    aborts = {
        threshold: (
            r.metrics.abort_rate("delivery"),
            r.metrics.abort_rate(),
        )
        for threshold, r in escalation_sweep.items()
    }
    rows = [
        (
            "off" if threshold is None else threshold,
            f"{message_bytes[threshold]:8.1f}",
            f"{aborts[threshold][0]:6.2f}",
            f"{aborts[threshold][1]:6.2f}",
        )
        for threshold in THRESHOLDS
    ]
    print_table(
        "Ablation: read-set escalation threshold (delivery class)",
        ("threshold", "termination msg bytes", "delivery abort %", "all abort %"),
        rows,
    )
    # escalation shrinks the termination message: the shipped read set
    # collapses from ~130 tuple ids to a handful of table locks
    assert message_bytes[16] < message_bytes[None] - 500
    # and coarsens conflicts: table locks collide with every concurrent
    # write on the table, so delivery aborts jump
    assert aborts[16][0] > aborts[None][0] + 5.0
