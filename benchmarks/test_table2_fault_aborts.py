"""Table 2 — abort rates with faults, 3 sites / 1000 clients (§5.3).

Random 5 % loss raises abort rates far more than bursty 5 % loss: the
certification delays lengthen every conflict window.  delivery and
payment — the contended classes — are hit hardest; read-only classes
stay at 0.00.

The per-class breakdown is the :mod:`repro.analysis` ``table2`` figure
builder (the ``abort_rate[class]`` metric family over the fault axis).
"""

import pytest

from repro.analysis import ResultSet, figure_table, render_figure
from repro.core.experiment import Scenario
from repro.core.scenarios import fault_config, scaled_transactions

FAULT_KINDS = ("none", "random", "bursty")


@pytest.fixture(scope="module")
def fault_table():
    items = []
    for kind in FAULT_KINDS:
        config = fault_config(
            kind,
            clients=1000,
            sites=3,
            transactions=scaled_transactions(),
            seed=55,
            sample_interval=2.0,
            drain_time=8.0,
        )
        result = Scenario(config).run()
        result.check_safety()
        items.append((kind, result, {"fault": kind}))
    return figure_table(ResultSet.from_results(items), "table2")


def test_table2_abort_rates_with_faults(benchmark, fault_table):
    benchmark.pedantic(
        lambda: fault_table.columns(), rounds=1, iterations=1
    )
    print(render_figure(fault_table, "table2"))

    value = fault_table.value
    # loss raises the overall abort rate (certification delays lengthen
    # every conflict window)
    assert value("All", "random") > value("All", "none")
    assert value("All", "bursty") >= value("All", "none") * 0.8
    # payment — the contended class — absorbs the damage
    assert value("payment-long", "random") > value("payment-long", "none")
    assert value("payment-short", "random") > value("payment-short", "none")
    # read-only classes stay clean no matter what
    for kind in FAULT_KINDS:
        assert value("orderstatus-short", kind) == 0.0
        assert value("stocklevel", kind) == 0.0
