"""Table 2 — abort rates with faults, 3 sites / 1000 clients (§5.3).

Random 5 % loss raises abort rates far more than bursty 5 % loss: the
certification delays lengthen every conflict window.  delivery and
payment — the contended classes — are hit hardest; read-only classes
stay at 0.00.
"""

import pytest

from conftest import print_table

from repro.core.experiment import Scenario
from repro.core.scenarios import fault_config, scaled_transactions

ROWS = (
    "delivery",
    "neworder",
    "payment-long",
    "payment-short",
    "orderstatus-long",
    "orderstatus-short",
    "stocklevel",
    "All",
)


@pytest.fixture(scope="module")
def fault_tables():
    tables = {}
    for kind in ("none", "random", "bursty"):
        config = fault_config(
            kind,
            clients=1000,
            sites=3,
            transactions=scaled_transactions(),
            seed=55,
            sample_interval=2.0,
            drain_time=8.0,
        )
        result = Scenario(config).run()
        result.check_safety()
        tables[kind] = result.metrics.abort_rate_table()
    return tables


def test_table2_abort_rates_with_faults(benchmark, fault_tables):
    benchmark.pedantic(
        lambda: {k: dict(v) for k, v in fault_tables.items()},
        rounds=1,
        iterations=1,
    )
    rows = [
        (cls,)
        + tuple(
            f"{fault_tables[kind].get(cls, 0.0):6.2f}"
            for kind in ("none", "random", "bursty")
        )
        for cls in ROWS
    ]
    print_table(
        "Table 2: abort rates with 3 sites and 1000 clients (%)",
        ("transaction", "no losses", "random 5%", "bursty 5%"),
        rows,
    )

    none, random_, bursty = (
        fault_tables["none"],
        fault_tables["random"],
        fault_tables["bursty"],
    )
    # loss raises the overall abort rate (certification delays lengthen
    # every conflict window)
    assert random_["All"] > none["All"]
    assert bursty["All"] >= none["All"] * 0.8
    # payment — the contended class — absorbs the damage
    assert random_["payment-long"] > none["payment-long"]
    assert random_["payment-short"] > none["payment-short"]
    # read-only classes stay clean no matter what
    for table in (none, random_, bursty):
        assert table["orderstatus-short"] == 0.0
        assert table["stocklevel"] == 0.0
