"""Figure 6 — resource usage (§5.2).

(a) CPU usage (simulated transaction jobs + real protocol jobs): one CPU
is the bottleneck by 500 clients; the 3-CPU server reaches the same
saturation near 1500; 6 CPUs / 6 sites handle the full load.
(b) Disk bandwidth: with 6 CPUs — centralized or replicated — the disk
becomes the bottleneck, the direct consequence of read-one/write-all.
(c) Network: bytes transmitted grow linearly with clients; 6 sites carry
more group-maintenance traffic than 3 sites.

Series derivation and printing go through :mod:`repro.analysis` (the
``fig6a``/``fig6b``/``fig6c`` figure builders).
"""

import pytest

from conftest import (
    assert_paper_shapes,
    figure_series,
    grid_resultset,
    run_point,
)

from repro.core.scenarios import CLIENT_LEVELS, SYSTEM_CONFIGS


def test_fig6a_cpu_usage(benchmark, performance_grid):
    total = figure_series(performance_grid, "fig6a")
    protocol = grid_resultset(performance_grid).pivot(
        "clients", "system", "cpu_protocol"
    ).columns()
    benchmark.pedantic(
        lambda: run_point("1 CPU", 1, 1, 100), rounds=1, iterations=1
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # one CPU approaches saturation by 500 clients
    assert total["1 CPU"][1] > 0.80
    # 3 CPUs reach a similar level only around 3x the load (1500)
    assert total["3 CPU"][1] < 0.75
    assert total["3 CPU"][3] > 0.75
    # replicated tracks centralized with the same CPU count (protocol
    # overhead is visible but small)
    assert total["3 Sites"][2] == pytest.approx(total["3 CPU"][2], abs=0.18)
    # protocol (real-job) share exists only in replicated runs and is small
    assert protocol["3 CPU"][2] == 0.0
    assert 0.0 < protocol["3 Sites"][2] < 0.10


def test_fig6b_disk_usage(benchmark, performance_grid):
    series = figure_series(performance_grid, "fig6b")
    benchmark.pedantic(
        lambda: run_point("6 CPU", 1, 6, 2000), rounds=1, iterations=1
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # with 6 CPUs, centralized or 6 sites, the disk becomes the
    # bottleneck at 2000 clients (read one / write all)
    assert series["6 CPU"][-1] > 0.7
    assert series["6 Sites"][-1] > 0.7
    # disk usage grows with client count on every curve
    for label, _, _ in SYSTEM_CONFIGS:
        assert series[label][-1] > series[label][0]
    # per-site disk load is the same replicated or not: every site
    # applies every write
    assert series["6 Sites"][-1] == pytest.approx(series["6 CPU"][-1], abs=0.2)


def test_fig6c_network(benchmark, performance_grid):
    series = figure_series(performance_grid, "fig6c")
    benchmark.pedantic(
        lambda: run_point("3 Sites", 3, 1, 100), rounds=1, iterations=1
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # centralized configurations produce no protocol traffic at all
    assert grid_resultset(performance_grid).value(
        "1 CPU c500", "net_kbps"
    ) == 0.0
    # traffic grows linearly-ish with clients/throughput
    three = series["3 Sites"]
    assert three[-1] > 2.5 * three[1] * (CLIENT_LEVELS[1] / CLIENT_LEVELS[-1]) * 2
    assert all(b >= a * 0.9 for a, b in zip(three, three[1:]))
    # 6 sites carry more group-maintenance traffic than 3 sites
    for i in range(len(CLIENT_LEVELS)):
        assert series["6 Sites"][i] > series["3 Sites"][i] * 0.95
    # a typical LAN comfortably handles the traffic (<< 100 Mbit/s)
    assert series["6 Sites"][-1] < 12_500  # KB/s == 100 Mbit
