"""Figure 6 — resource usage (§5.2).

(a) CPU usage (simulated transaction jobs + real protocol jobs): one CPU
is the bottleneck by 500 clients; the 3-CPU server reaches the same
saturation near 1500; 6 CPUs / 6 sites handle the full load.
(b) Disk bandwidth: with 6 CPUs — centralized or replicated — the disk
becomes the bottleneck, the direct consequence of read-one/write-all.
(c) Network: bytes transmitted grow linearly with clients; 6 sites carry
more group-maintenance traffic than 3 sites.
"""

import pytest

from conftest import assert_paper_shapes, print_table, run_point

from repro.core.scenarios import CLIENT_LEVELS, SYSTEM_CONFIGS


def test_fig6a_cpu_usage(benchmark, performance_grid):
    series = {}
    for label, _, _ in SYSTEM_CONFIGS:
        series[label] = [
            performance_grid[(label, c)].cpu_usage() for c in CLIENT_LEVELS
        ]
    benchmark.pedantic(
        lambda: run_point("1 CPU", 1, 1, 100), rounds=1, iterations=1
    )
    rows = []
    for i, clients in enumerate(CLIENT_LEVELS):
        rows.append(
            (clients,)
            + tuple(
                f"{series[label][i][0]*100:5.1f}"
                for label, _, _ in SYSTEM_CONFIGS
            )
        )
    print_table(
        "Figure 6(a): CPU usage (%)",
        ("clients",) + tuple(l for l, _, _ in SYSTEM_CONFIGS),
        rows,
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # one CPU approaches saturation by 500 clients
    assert series["1 CPU"][1][0] > 0.80
    # 3 CPUs reach a similar level only around 3x the load (1500)
    assert series["3 CPU"][1][0] < 0.75
    assert series["3 CPU"][3][0] > 0.75
    # replicated tracks centralized with the same CPU count (protocol
    # overhead is visible but small)
    assert series["3 Sites"][2][0] == pytest.approx(
        series["3 CPU"][2][0], abs=0.18
    )
    # protocol (real-job) share exists only in replicated runs and is small
    assert series["3 CPU"][2][1] == 0.0
    assert 0.0 < series["3 Sites"][2][1] < 0.10


def test_fig6b_disk_usage(benchmark, performance_grid):
    series = {}
    for label, _, _ in SYSTEM_CONFIGS:
        series[label] = [
            performance_grid[(label, c)].disk_usage() for c in CLIENT_LEVELS
        ]
    benchmark.pedantic(
        lambda: run_point("6 CPU", 1, 6, 2000), rounds=1, iterations=1
    )
    rows = [
        (clients,)
        + tuple(f"{series[l][i]*100:5.1f}" for l, _, _ in SYSTEM_CONFIGS)
        for i, clients in enumerate(CLIENT_LEVELS)
    ]
    print_table(
        "Figure 6(b): disk bandwidth usage (%)",
        ("clients",) + tuple(l for l, _, _ in SYSTEM_CONFIGS),
        rows,
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # with 6 CPUs, centralized or 6 sites, the disk becomes the
    # bottleneck at 2000 clients (read one / write all)
    assert series["6 CPU"][-1] > 0.7
    assert series["6 Sites"][-1] > 0.7
    # disk usage grows with client count on every curve
    for label, _, _ in SYSTEM_CONFIGS:
        assert series[label][-1] > series[label][0]
    # per-site disk load is the same replicated or not: every site
    # applies every write
    assert series["6 Sites"][-1] == pytest.approx(series["6 CPU"][-1], abs=0.2)


def test_fig6c_network(benchmark, performance_grid):
    series = {}
    for label in ("3 Sites", "6 Sites"):
        series[label] = [
            performance_grid[(label, c)].network_kbps() for c in CLIENT_LEVELS
        ]
    benchmark.pedantic(
        lambda: run_point("3 Sites", 3, 1, 100), rounds=1, iterations=1
    )
    rows = [
        (clients, f"{series['3 Sites'][i]:7.1f}", f"{series['6 Sites'][i]:7.1f}")
        for i, clients in enumerate(CLIENT_LEVELS)
    ]
    print_table(
        "Figure 6(c): network traffic (KB/s)",
        ("clients", "3 Sites", "6 Sites"),
        rows,
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # centralized configurations produce no protocol traffic at all
    assert performance_grid[("1 CPU", 500)].network_kbps() == 0.0
    # traffic grows linearly-ish with clients/throughput
    three = series["3 Sites"]
    assert three[-1] > 2.5 * three[1] * (CLIENT_LEVELS[1] / CLIENT_LEVELS[-1]) * 2
    assert all(b >= a * 0.9 for a, b in zip(three, three[1:]))
    # 6 sites carry more group-maintenance traffic than 3 sites
    for i in range(len(CLIENT_LEVELS)):
        assert series["6 Sites"][i] > series["3 Sites"][i] * 0.95
    # a typical LAN comfortably handles the traffic (<< 100 Mbit/s)
    assert series["6 Sites"][-1] < 12_500  # KB/s == 100 Mbit
