"""Figure 7 — performance under fault injection (§5.3).

3 sites, 750 clients, with (a) the ECDF of transaction latency and (b)
the ECDF of certification latency for: no faults, 5 % random loss, and
5 % bursty loss (mean burst 5 messages); (c) CPU usage by real protocol
jobs.  Expected shapes: random loss hurts far more than the same amount
of bursty loss — a long certification tail (the stability detector can
only collect the contiguous common prefix, so independent loss at each
site stalls garbage collection until the sequencer's buffer share
blocks); protocol CPU rises ~1.5x from retransmission work.

ECDF quantiles and the protocol-CPU table come from the
:mod:`repro.analysis` ``fig7a``/``fig7b``/``fig7c`` figure builders.
"""

import pytest

from conftest import assert_paper_shapes, bench_protocol

from repro.analysis import ResultSet, figure_table, render_figure
from repro.core.experiment import Scenario
from repro.core.scenarios import fault_config, scaled_transactions

FAULT_KINDS = ("none", "random", "bursty")


@pytest.fixture(scope="module")
def fault_runs():
    runs = {}
    for kind in FAULT_KINDS:
        config = fault_config(
            kind,
            clients=750,
            sites=3,
            transactions=scaled_transactions(),
            seed=77,
            protocol=bench_protocol(),
            sample_interval=2.0,
            drain_time=8.0,
        )
        runs[kind] = Scenario(config).run()
        runs[kind].check_safety()  # §5.3: safety holds under every load
    return runs


@pytest.fixture(scope="module")
def fault_rs(fault_runs):
    return ResultSet.from_results(
        (kind, fault_runs[kind], {"fault": kind}) for kind in FAULT_KINDS
    )


def test_fig7a_latency_ecdf(benchmark, fault_rs):
    table = benchmark.pedantic(
        lambda: figure_table(fault_rs, "fig7a"), rounds=1, iterations=1
    )
    print(render_figure(table, "fig7a"))
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # loss shifts the body of the distribution right: the median and
    # upper quartile under random loss clearly exceed the fault-free run
    p50 = {kind: table.value("p50", kind) for kind in FAULT_KINDS}
    p75 = {kind: table.value("p75", kind) for kind in FAULT_KINDS}
    assert p50["random"] > 1.15 * p50["none"]
    assert p75["random"] > 1.2 * p75["none"]
    # random loss dominates the same amount of bursty loss
    assert p75["random"] > p75["bursty"] * 0.95
    # but most transactions stay in the same order of magnitude
    assert p50["random"] < 4.0 * p50["none"]


def test_fig7b_certification_ecdf(benchmark, fault_rs, fault_runs):
    table = benchmark.pedantic(
        lambda: figure_table(fault_rs, "fig7b"), rounds=1, iterations=1
    )
    print(render_figure(table, "fig7b"))
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    median_none = table.value("p50", "none")
    p90_random = table.value("p90", "random")
    # the tail under random loss reaches tens of the fault-free median —
    # the paper's plot spans two orders of magnitude
    assert p90_random > 10 * median_none
    # 5% loss delays 30-40% of messages at the application (total-order
    # head-of-line blocking, §5.3): count certifications slower than 4x
    # the fault-free median
    threshold = 4 * median_none

    def delayed_fraction(kind):
        values = fault_runs[kind].metrics.certification_latencies()
        return sum(1 for v in values if v > threshold) / len(values)

    assert 0.15 < delayed_fraction("random") < 0.60
    # bursty loss delays visibly fewer messages than random loss
    assert delayed_fraction("bursty") < delayed_fraction("random")


def test_fig7c_protocol_cpu(benchmark, fault_rs):
    table = benchmark.pedantic(
        lambda: figure_table(fault_rs, "fig7c"), rounds=1, iterations=1
    )
    print(render_figure(table, "fig7c"))
    usage = {
        kind: table.value(kind, "cpu_protocol") * 100.0
        for kind in FAULT_KINDS
    }
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # retransmission work raises protocol CPU under loss (paper: 1.22 ->
    # ~1.90); both loss kinds land in the same band
    assert usage["random"] > 1.2 * usage["none"]
    assert usage["bursty"] > usage["none"]
    # magnitudes stay in the paper's single-digit band
    assert 0.2 < usage["none"] < 5.0
    assert usage["random"] < 10.0


def test_fig7_stability_backlog_diagnosis(benchmark, fault_runs):
    """§5.3's diagnosis: loss injected independently at each participant
    shortens the stable common prefix, so garbage collection lags and
    unstable-message backlogs grow toward the buffer shares — the
    precondition of the sequencer blocking the paper observes (its
    mitigation, a larger share, is the ablation bench)."""
    if not assert_paper_shapes():
        pytest.skip("stability-backlog diagnosis characterizes the dbsm prototype")
    peaks = benchmark.pedantic(
        lambda: {
            kind: max(
                s.gcs.reliable.pool.stats["peak_occupancy"] for s in run.sites
            )
            for kind, run in fault_runs.items()
        },
        rounds=1,
        iterations=1,
    )
    assert peaks["random"] > 1.3 * peaks["none"]
    assert peaks["bursty"] > peaks["none"]
    # blocking time under loss is at least never better than fault-free
    blocked = {
        kind: sum(s.gcs.reliable.stats["blocked_time"] for s in run.sites)
        for kind, run in fault_runs.items()
    }
    assert blocked["random"] >= blocked["none"]
