"""Ablation — sequencer batching window.

The fixed sequencer amortizes SEQUENCE traffic by batching assignments
over a small window.  Larger windows cut sequencer messages (and its
buffer-share pressure — §5.3) at the cost of added certification
latency; window 0 ships one SEQUENCE per transaction.
"""

import pytest

from conftest import print_table

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.scenarios import scaled_transactions
from repro.gcs.config import GcsConfig

import statistics

WINDOWS = (0.0, 0.002, 0.010)


@pytest.fixture(scope="module")
def batching_sweep():
    results = {}
    for window in WINDOWS:
        config = ScenarioConfig(
            sites=3,
            cpus_per_site=1,
            clients=300,
            transactions=max(800, scaled_transactions() // 3),
            seed=71,
            gcs=GcsConfig(sequence_batch_interval=window),
            sample_interval=2.0,
            drain_time=8.0,
        )
        result = Scenario(config).run()
        result.check_safety()
        results[window] = result
    return results


def test_ablation_sequence_batching(benchmark, batching_sweep):
    stats = benchmark.pedantic(
        lambda: {
            window: (
                result.sites[0].gcs.total_order.stats["sequence_msgs"],
                statistics.median(result.metrics.certification_latencies()),
            )
            for window, result in batching_sweep.items()
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"{window*1000:.0f} ms", stats[window][0], f"{stats[window][1]*1000:6.2f}")
        for window in WINDOWS
    ]
    print_table(
        "Ablation: sequencer batching window",
        ("window", "SEQUENCE msgs", "median cert latency (ms)"),
        rows,
    )
    # bigger windows send fewer SEQUENCE messages...
    assert stats[0.010][0] < stats[0.002][0] <= stats[0.0][0]
    # ...and cost certification latency
    assert stats[0.010][1] > stats[0.0][1]
    # the default window keeps the median in the paper's few-ms band
    assert stats[0.002][1] < 0.010
