"""Table 1 — abort rates (%) by transaction class (§5.2).

The paper's table compares, per class, centralized vs replicated
configurations at matched CPU counts: 500 clients × 1 CPU; 1000 clients
× {3 CPU, 3 sites}; 1500 clients × {6 CPU, 6 sites}.  Expected shape:
only payment (and slightly delivery) is impacted by replication — it
updates the small hot Warehouse table — while read-only classes show
0.00 and neworder stays flat; payment-long sits a near-constant offset
above payment-short.
"""

import pytest

from conftest import assert_paper_shapes, print_table, run_point

COLUMNS = (
    ("500c x 1CPU", "1 CPU", 1, 1, 500),
    ("1000c x 3CPU", "3 CPU", 1, 3, 1000),
    ("1000c x 3Sites", "3 Sites", 3, 1, 1000),
    ("1500c x 6CPU", "6 CPU", 1, 6, 1500),
    ("1500c x 6Sites", "6 Sites", 6, 1, 1500),
)

ROWS = (
    "delivery",
    "neworder",
    "payment-long",
    "payment-short",
    "orderstatus-long",
    "orderstatus-short",
    "stocklevel",
    "All",
)


@pytest.fixture(scope="module")
def table(performance_grid):
    del performance_grid  # ensures the shared grid is the one we reuse
    data = {}
    for column, label, sites, cpus, clients in COLUMNS:
        result = run_point(label, sites, cpus, clients)
        data[column] = result.metrics.abort_rate_table()
    return data


def test_table1_abort_rates(benchmark, table):
    benchmark.pedantic(
        lambda: {c: dict(v) for c, v in table.items()}, rounds=1, iterations=1
    )
    rows = []
    for tx_class in ROWS:
        rows.append(
            (tx_class,)
            + tuple(f"{table[c].get(tx_class, 0.0):6.2f}" for c, *_ in COLUMNS)
        )
    print_table(
        "Table 1: abort rates (%)",
        ("transaction",) + tuple(c for c, *_ in COLUMNS),
        rows,
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs

    # read-only classes never abort for concurrency reasons
    for column, *_ in COLUMNS:
        assert table[column]["orderstatus-short"] == 0.0
        assert table[column]["stocklevel"] == 0.0

    # payment dominates every column (the Warehouse hotspot)
    for column, *_ in COLUMNS:
        payment = table[column]["payment-long"]
        assert payment >= table[column]["neworder"]
        assert payment >= table[column]["delivery"]

    # payment-long sits a consistent offset above payment-short
    for column, *_ in COLUMNS:
        spread = table[column]["payment-long"] - table[column]["payment-short"]
        assert 2.0 < spread < 12.0, f"{column}: spread {spread:.2f}"

    # replication raises payment conflicts vs the same-CPU centralized
    # configuration (certification windows add to lock windows)
    assert (
        table["1000c x 3Sites"]["payment-short"]
        >= table["1000c x 3CPU"]["payment-short"] * 0.8
    )

    # neworder stays in the low band (intrinsic 1% + rare stock clashes)
    for column, *_ in COLUMNS:
        assert table[column]["neworder"] < 5.0
