"""Table 1 — abort rates (%) by transaction class (§5.2).

The paper's table compares, per class, centralized vs replicated
configurations at matched CPU counts: 500 clients × 1 CPU; 1000 clients
× {3 CPU, 3 sites}; 1500 clients × {6 CPU, 6 sites}.  Expected shape:
only payment (and slightly delivery) is impacted by replication — it
updates the small hot Warehouse table — while read-only classes show
0.00 and neworder stays flat; payment-long sits a near-constant offset
above payment-short.

The per-class breakdown is the :mod:`repro.analysis` ``table1`` figure
builder over the shared Figure 5 grid (the ``abort_rate[class]`` metric
family), selecting the paper's matched-load columns.
"""

import pytest

from conftest import assert_paper_shapes, grid_resultset

from repro.analysis import TABLE1_COLUMNS, figure_table, render_figure

COLUMN_LABELS = tuple(column for column, _, _ in TABLE1_COLUMNS)


@pytest.fixture(scope="module")
def table(performance_grid):
    # every matched-load cell is a Figure 5 grid point, so the table is
    # a pure selection over the session's shared grid
    return figure_table(grid_resultset(performance_grid), "table1")


def test_table1_abort_rates(benchmark, table):
    benchmark.pedantic(lambda: table.columns(), rounds=1, iterations=1)
    print(render_figure(table, "table1"))
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs

    # read-only classes never abort for concurrency reasons
    for column in COLUMN_LABELS:
        assert table.value("orderstatus-short", column) == 0.0
        assert table.value("stocklevel", column) == 0.0

    # payment dominates every column (the Warehouse hotspot)
    for column in COLUMN_LABELS:
        payment = table.value("payment-long", column)
        assert payment >= table.value("neworder", column)
        assert payment >= table.value("delivery", column)

    # payment-long sits a consistent offset above payment-short
    for column in COLUMN_LABELS:
        spread = table.value("payment-long", column) - table.value(
            "payment-short", column
        )
        assert 2.0 < spread < 12.0, f"{column}: spread {spread:.2f}"

    # replication raises payment conflicts vs the same-CPU centralized
    # configuration (certification windows add to lock windows)
    assert (
        table.value("payment-short", "1000c x 3Sites")
        >= table.value("payment-short", "1000c x 3CPU") * 0.8
    )

    # neworder stays in the low band (intrinsic 1% + rare stock clashes)
    for column in COLUMN_LABELS:
        assert table.value("neworder", column) < 5.0
