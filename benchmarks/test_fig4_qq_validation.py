"""Figure 4 — Q-Q validation of transaction latency (§4.2).

The paper runs TPC-C with 20 clients / 5000 transactions on the real
system and on the model, then compares latency distributions per group
(read-only vs update) with quantile-quantile plots: a good model puts
the points on the diagonal.  Our "real" sample is the reference latency
decomposition of the calibrated profiles (repro.core.validation); the
simulated sample is a full model run at the same load.
"""

import pytest

from conftest import print_table

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.metrics import qq_points
from repro.core.scenarios import scale
from repro.core.validation import reference_latency_sample
from repro.tpcc.profiles import default_profiles

TRANSACTIONS = max(1000, int(5000 * scale()))

READONLY = ("orderstatus-long", "orderstatus-short", "stocklevel")
UPDATE = ("neworder", "payment-long", "payment-short", "delivery")


@pytest.fixture(scope="module")
def validation_run():
    config = ScenarioConfig(
        sites=1,
        cpus_per_site=1,
        clients=20,
        transactions=TRANSACTIONS,
        seed=1717,
    )
    return Scenario(config).run()


def _simulated(result, classes):
    return [
        r.latency
        for r in result.metrics.records
        if r.committed and r.tx_class in classes
    ]


def _composition(result, classes):
    """Class labels with multiplicity, matching the simulated sample —
    the reference must be drawn from the same workload composition or
    the Q-Q plot compares different mixtures."""
    return tuple(
        r.tx_class
        for r in result.metrics.records
        if r.committed and r.tx_class in classes
    )


def _reference(composition, count):
    return reference_latency_sample(
        composition, default_profiles(), count=count, seed=99
    )


def _qq_print(simulated, reference, label):
    points = qq_points(simulated, reference, points=21)
    body = points[2:-2]
    rows = [
        (f"{qa*1000:8.2f}", f"{qb*1000:8.2f}", f"{(qa/qb if qb else 1):5.2f}")
        for qa, qb in body
    ]
    print_table(
        f"Figure 4 Q-Q ({label}): sim vs real quantiles (ms)",
        ("sim", "real", "ratio"),
        rows,
    )


def _qq_check_per_class(result, classes, tolerance):
    """Assert diagonal fit class by class.

    The mixtures are bimodal (e.g. orderstatus ~8 ms vs stocklevel
    ~40 ms), so mixture quantiles near a mode boundary are statistically
    unstable at 20-client sample sizes; the paper splits classes into
    homogeneous groups for its analysis (§4.1) and we assert on those."""
    for cls in classes:
        simulated = _simulated(result, (cls,))
        if len(simulated) < 20:
            continue  # too thin for a quantile comparison
        reference = _reference((cls,), len(simulated))
        points = qq_points(simulated, reference, points=11)
        for qa, qb in points[1:-1]:
            assert qa == pytest.approx(qb, rel=tolerance), (
                f"{cls}: quantile {qa*1000:.2f} ms vs {qb*1000:.2f} ms "
                f"off the diagonal"
            )


def test_fig4a_readonly_latency_qq(benchmark, validation_run):
    simulated = _simulated(validation_run, READONLY)
    assert len(simulated) > 30
    composition = _composition(validation_run, READONLY)
    reference = benchmark.pedantic(
        _reference, args=(composition, len(simulated)), rounds=1, iterations=1
    )
    _qq_print(simulated, reference, "read-only")
    _qq_check_per_class(validation_run, READONLY, tolerance=0.35)


def test_fig4b_update_latency_qq(benchmark, validation_run):
    simulated = _simulated(validation_run, UPDATE)
    assert len(simulated) > 200
    composition = _composition(validation_run, UPDATE)
    reference = benchmark.pedantic(
        _reference, args=(composition, len(simulated)), rounds=1, iterations=1
    )
    _qq_print(simulated, reference, "update")
    _qq_check_per_class(validation_run, UPDATE, tolerance=0.35)
