"""Figure 3 — validation of the centralized simulation runtime (§4.2).

Three micro-benchmarks compare the CSRT against the real test system:
(a) UDP flood sender bandwidth, (b) receiver bandwidth on Ethernet 100,
(c) round-trip latency.  The "Real" curves are the analytic encodings of
the paper's published measurements (DESIGN.md §3); the CSRT curves are
measured by running the flood/ping-pong code under the runtime.
"""

import pytest

from conftest import print_table

from repro.core.validation import (
    csrt_recv_bandwidth_bps,
    csrt_round_trip,
    csrt_send_bandwidth_bps,
    real_recv_bandwidth_bps,
    real_round_trip,
    real_send_bandwidth_bps,
)

SIZES = (64, 256, 512, 1024, 2048, 4096)


def test_fig3a_bandwidth_written(benchmark):
    """Fig 3(a): socket write bandwidth; real dips past the 4 KB page
    boundary, the simulated stack (no VM model) does not — the paper's
    documented, harmless divergence."""
    csrt = {
        size: benchmark.pedantic(
            csrt_send_bandwidth_bps, args=(size, 0.05), rounds=1, iterations=1
        )
        if size == SIZES[0]
        else csrt_send_bandwidth_bps(size, duration=0.05)
        for size in SIZES
    }
    rows = []
    for size in SIZES:
        real = real_send_bandwidth_bps(size)
        rows.append(
            (size, f"{real/1e6:8.1f}", f"{csrt[size]/1e6:8.1f}",
             f"{abs(csrt[size]-real)/real*100:5.1f}%")
        )
        assert csrt[size] == pytest.approx(real, rel=0.05)
    above = 6000
    assert csrt_send_bandwidth_bps(above, duration=0.05) > real_send_bandwidth_bps(above)
    print_table(
        "Figure 3(a): bandwidth written (Mbit/s)",
        ("size", "Real", "CSRT", "err"),
        rows,
    )


def test_fig3b_bandwidth_ethernet(benchmark):
    """Fig 3(b): receiver goodput capped by the Ethernet 100 wire."""
    csrt = {
        size: benchmark.pedantic(
            csrt_recv_bandwidth_bps, args=(size, 0.05), rounds=1, iterations=1
        )
        if size == SIZES[0]
        else csrt_recv_bandwidth_bps(size, duration=0.05)
        for size in SIZES
    }
    rows = []
    for size in SIZES:
        real = real_recv_bandwidth_bps(size)
        rows.append((size, f"{real/1e6:7.1f}", f"{csrt[size]/1e6:7.1f}"))
        assert csrt[size] == pytest.approx(real, rel=0.10)
        assert csrt[size] < 100e6  # never exceeds the wire
    print_table(
        "Figure 3(b): bandwidth on Ethernet 100 (Mbit/s)",
        ("size", "Real", "CSRT"),
        rows,
    )


def test_fig3c_round_trip(benchmark):
    """Fig 3(c): average round-trip; above ~1 KB the simulated stack
    diverges when the MTU is not enforced (SSFNet's behaviour), so the
    protocol restricts packets to a safe size (§4.2)."""
    csrt = {
        size: benchmark.pedantic(
            csrt_round_trip, args=(size, 20), rounds=1, iterations=1
        )
        if size == SIZES[0]
        else csrt_round_trip(size, rounds=20)
        for size in SIZES
    }
    rows = []
    for size in SIZES:
        real = real_round_trip(size)
        no_mtu = csrt_round_trip(size, rounds=20, enforce_mtu=False)
        rows.append(
            (size, f"{real*1e6:7.1f}", f"{csrt[size]*1e6:7.1f}", f"{no_mtu*1e6:7.1f}")
        )
        if size <= 1400:
            assert csrt[size] == pytest.approx(real, rel=0.15)
    # divergence above the MTU has the published sign: simulated faster
    assert csrt_round_trip(4096, rounds=20, enforce_mtu=False) < real_round_trip(4096)
    print_table(
        "Figure 3(c): average round-trip (us)",
        ("size", "Real", "CSRT(mtu)", "CSRT(ssfnet)"),
        rows,
    )
