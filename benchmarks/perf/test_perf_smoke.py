"""Perf-harness smoke bench: one tiny measured campaign end to end.

Runs the harness over the pinned ``smoke`` campaign at a small
transaction count and validates the emitted payload against the
``repro.bench/1`` schema.  Timings are informational — this bench
asserts the *machinery* (measurement, schema, guard), never a speed,
so it cannot flake on a slow host.
"""

from __future__ import annotations

import pytest

from repro.perf import run_perf, validate_bench


@pytest.fixture(scope="module")
def smoke_bench():
    payload, path = run_perf(
        campaigns=("smoke",), transactions=120, output="", bench_id=7
    )
    assert path is None  # output="" skips writing
    return payload


def test_smoke_bench_validates(smoke_bench):
    assert validate_bench(smoke_bench) is smoke_bench


def test_smoke_bench_measures_every_cell(smoke_bench):
    entry = smoke_bench["campaigns"]["smoke"]
    assert entry["cells"] == len(entry["cell_walls"])
    assert entry["transactions_total"] >= 120 * entry["cells"]
    assert entry["events_total"] > 0
    assert entry["cells_per_sec"] > 0
    assert entry["peak_rss_kb"] > 0


def test_smoke_bench_prints_rates(smoke_bench, capsys):
    entry = smoke_bench["campaigns"]["smoke"]
    print(
        f"perf smoke: {entry['cells_per_sec']:.2f} cells/s, "
        f"{entry['tx_per_sec']:.0f} tx/s, "
        f"{entry['events_per_sec']:.0f} events/s"
    )
    assert "cells/s" in capsys.readouterr().out
