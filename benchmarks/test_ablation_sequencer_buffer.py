"""Ablation — buffer share vs sequencer blocking (§5.3's mitigation).

The paper: "the buffer share of the sequencer process is exhausted and
the whole system blocked temporarily waiting for garbage collection.
The problem is mitigated by increasing available buffer space."  This
bench runs the random-loss scenario with increasing per-sender shares
and shows blocking time collapsing while throughput recovers.
"""

import pytest

from conftest import print_table

from repro.core.experiment import Scenario
from repro.core.scenarios import fault_config, prototype_gcs_config, scaled_transactions

SHARES = (24, 56, 256)


@pytest.fixture(scope="module")
def share_sweep():
    results = {}
    for share in SHARES:
        gcs = prototype_gcs_config()
        gcs.buffer_share = share
        config = fault_config(
            "random",
            clients=750,
            sites=3,
            transactions=max(1000, scaled_transactions() // 2),
            seed=91,
            gcs=gcs,
            sample_interval=2.0,
            drain_time=8.0,
        )
        result = Scenario(config).run()
        result.check_safety()
        results[share] = result
    return results


def test_ablation_buffer_share_mitigates_blocking(benchmark, share_sweep):
    stats = benchmark.pedantic(
        lambda: {
            share: (
                sum(s.gcs.reliable.stats["blocked_time"] for s in r.sites),
                sum(s.gcs.reliable.stats["blocked_events"] for s in r.sites),
                r.mean_latency() * 1000,
            )
            for share, r in share_sweep.items()
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (share, f"{stats[share][0]:7.2f}", stats[share][1], f"{stats[share][2]:7.1f}")
        for share in SHARES
    ]
    print_table(
        "Ablation: per-sender buffer share under 5% random loss",
        ("share", "blocked (s)", "block events", "mean latency (ms)"),
        rows,
    )
    blocked = {share: stats[share][0] for share in SHARES}
    # more buffer -> monotonically less blocking; the big share
    # eliminates it almost entirely
    assert blocked[SHARES[0]] >= blocked[SHARES[1]] >= blocked[SHARES[2]]
    assert blocked[SHARES[0]] > 0.5
    assert blocked[SHARES[2]] < 0.2 * max(blocked[SHARES[0]], 1e-9)
