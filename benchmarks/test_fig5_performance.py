"""Figure 5 — performance of centralized vs replicated configurations (§5.1).

Throughput (committed tpm), mean latency and abort rate against the
number of clients, for 1/3/6-CPU centralized servers and 3/6-site
replicated databases.  Expected shapes (paper): replication does not
limit throughput — each distributed system tracks the centralized system
with the same number of CPUs; a single CPU saturates near 500 clients;
3 sites scale to ~1500 clients and ~7000 tpm; 6 sites past 2000 clients
and ~9000 tpm.

Series derivation and printing go through :mod:`repro.analysis` (the
``fig5a``/``fig5b``/``fig5c`` figure builders), so the printed tables
are byte-identical to ``python -m repro.runner report --figure``.
"""

import pytest

from conftest import assert_paper_shapes, figure_series, run_point

from repro.core.scenarios import CLIENT_LEVELS, SYSTEM_CONFIGS


def test_fig5a_throughput(benchmark, performance_grid):
    series = figure_series(performance_grid, "fig5a")
    benchmark.pedantic(
        lambda: run_point("3 Sites", 3, 1, 500), rounds=1, iterations=1
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # replication does not limit throughput: same-CPU centralized vs
    # replicated within 20% over each system's documented scaling range
    # (3 sites scale gracefully up to about 1500 clients; 6 sites past
    # 2000 — §5.1; beyond saturation both systems thrash differently)
    for central, replicated, max_clients in (
        ("3 CPU", "3 Sites", 1500),
        ("6 CPU", "6 Sites", 2000),
    ):
        for i, clients in enumerate(CLIENT_LEVELS):
            if clients > max_clients:
                continue
            assert series[replicated][i] == pytest.approx(
                series[central][i], rel=0.20
            ), f"{replicated} vs {central} at {clients} clients"
    # a single CPU saturates around 500 clients: adding clients past 500
    # must not scale throughput linearly (factor 4 in offered load gives
    # well under 2x committed tpm)
    one_cpu = series["1 CPU"]
    assert one_cpu[-1] < 1.7 * one_cpu[1]
    # 6 sites scale past 2000 clients and 9000 tpm at full scale; at
    # reduced transaction counts the shape check is monotone growth
    six = series["6 Sites"]
    assert six[-1] > six[1] > six[0]
    # 3 sites reach ~7000 tpm at 1500 clients (±25%)
    assert series["3 Sites"][3] == pytest.approx(7000, rel=0.25)


def test_fig5b_latency(benchmark, performance_grid):
    series = figure_series(performance_grid, "fig5b")
    benchmark.pedantic(
        lambda: run_point("1 CPU", 1, 1, 500), rounds=1, iterations=1
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # saturation shows as sharply growing latency on the 1 CPU curve
    one_cpu = series["1 CPU"]
    assert one_cpu[-1] > 3 * one_cpu[0]
    # 6 CPU / 6 Sites stay far below the saturated single CPU
    assert series["6 CPU"][-1] < one_cpu[-1]
    # replicated latency exceeds same-CPU centralized (certification
    # round-trip + remote applies), but stays the same order
    assert series["3 Sites"][2] > series["3 CPU"][2]


def test_fig5c_abort_rate(benchmark, performance_grid):
    series = figure_series(performance_grid, "fig5c")
    benchmark.pedantic(
        lambda: run_point("3 CPU", 1, 3, 500), rounds=1, iterations=1
    )
    if not assert_paper_shapes():
        return  # shapes below are calibrated against the paper's dbsm runs
    # aborts grow with load on the saturated 1 CPU curve
    one_cpu = series["1 CPU"]
    assert one_cpu[-1] > one_cpu[0]
    # within each system's scaling range, aborts stay in the paper's
    # single-digit-to-low-teens band; far past saturation the hot
    # Warehouse lock is held for seconds and write-write aborts cascade
    # (the paper's Table 1 stops at each system's saturation point)
    in_range = {
        "1 CPU": 500,
        "3 CPU": 1500,
        "6 CPU": 2000,
        "3 Sites": 1500,
        "6 Sites": 2000,
    }
    for label, _, _ in SYSTEM_CONFIGS:
        for i, clients in enumerate(CLIENT_LEVELS):
            if clients <= in_range[label]:
                assert 0.0 <= series[label][i] < 15.0, (
                    f"{label} at {clients} clients: {series[label][i]:.2f}%"
                )
