"""Shared machinery for the paper-reproduction benchmarks.

Each ``test_fig*`` / ``test_table*`` module regenerates one figure or
table of the paper's evaluation (§4.2, §5).  The heavy client sweeps are
computed once per pytest session and shared across figures (Figures 5
and 6 and Table 1 read the same grid, exactly like the paper); the
``benchmark`` fixture times one representative scenario per figure so
``--benchmark-only`` reports the simulator's own cost.

The grid is executed through the campaign runner, so the standard knobs
apply: ``REPRO_SCALE`` (default 0.3) scales per-run transaction counts
(``REPRO_SCALE=1`` reproduces the paper's full 10 000-transaction runs);
``REPRO_WORKERS`` farms grid cells to that many worker processes; and
``REPRO_ARTIFACT_DIR`` persists per-cell results so a re-run only
computes missing cells.  Metrics are identical whichever path ran them.

``REPRO_PROTOCOL`` selects the replication protocol of the replicated
cells (default ``dbsm``), so the same Figure 5/6 performance grid and
Figure 7 fault grid can be regenerated per protocol and compared.  The
paper-shape assertions are calibrated against ``dbsm`` — the protocol
the paper measures — and other protocols legitimately diverge (that
divergence being the point of the comparison), so shape assertions are
enforced only for ``dbsm``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.analysis import ResultSet, format_table
from repro.campaigns import get_campaign
from repro.core.env import env_choice
from repro.core.experiment import Scenario, ScenarioConfig, ScenarioResult
from repro.core.scenarios import (
    CLIENT_LEVELS,
    SYSTEM_CONFIGS,
    performance_config,
)
from repro.protocols import available_protocols
from repro.runner import run_campaign

_grid_cache: Dict[Tuple[str, int], ScenarioResult] = {}


def bench_protocol() -> str:
    """The replication protocol under benchmark (``REPRO_PROTOCOL``).

    Strict: an unregistered value raises (naming the registry) instead
    of warn-and-fall-back — the protocol decides *what* the benchmark
    measures, and silently benchmarking ``dbsm`` under a typo'd name
    would green-light the wrong experiment.  (The CLI's ``--protocol``
    is equally strict via argparse choices.)"""
    return env_choice(
        "REPRO_PROTOCOL", "dbsm", available_protocols(), strict=True
    )


def assert_paper_shapes() -> bool:
    """Whether the paper's dbsm-calibrated shape assertions apply."""
    return bench_protocol() == "dbsm"


def point_config(sites: int, cpus: int, clients: int) -> ScenarioConfig:
    """One Figure 5/6 grid point: the canonical config plus the bench
    suite's tighter sampling/drain windows.  Centralized cells stay
    protocol-free — they are identical under every protocol, so their
    (expensive) artifacts are shared across REPRO_PROTOCOL values."""
    return performance_config(
        sites,
        cpus,
        clients,
        seed=42 + clients,
        protocol=bench_protocol() if sites > 1 else "dbsm",
        sample_interval=2.0,
        drain_time=5.0,
    )


def run_point(label: str, sites: int, cpus: int, clients: int) -> ScenarioResult:
    """One point of the Figure 5/6 grid, cached for the session."""
    key = (label, clients)
    if key not in _grid_cache:
        _grid_cache[key] = Scenario(point_config(sites, cpus, clients)).run()
    return _grid_cache[key]


@pytest.fixture(scope="session")
def performance_grid():
    """All (system config, client level) points of Figures 5/6, expanded
    from the registered ``fig5`` campaign spec and executed through the
    campaign runner (parallel when REPRO_WORKERS is set, resumable when
    REPRO_ARTIFACT_DIR is set).

    The spec's protocol-prefix label rule keeps the historical artifact
    names: centralized baselines and ``dbsm`` cells stay protocol-free
    (existing caches remain valid and the expensive centralized runs
    are shared), while any other REPRO_PROTOCOL value scopes its
    replicated cells so stored protocols never clobber each other."""
    spec = (
        get_campaign("fig5")
        .with_axis("protocol", (bench_protocol(),))
        # the bench suite's tighter sampling/drain windows (point_config)
        .with_axis("sample_interval", (2.0,))
        .with_axis("drain_time", (5.0,))
    )
    system_label = {
        (sites, cpus): label for label, sites, cpus in SYSTEM_CONFIGS
    }
    labelled, keys = [], []
    for label, config in spec.expand():
        key = (system_label[(config.sites, config.cpus_per_site)], config.clients)
        if key in _grid_cache:
            continue
        labelled.append((label, config))
        keys.append(key)
    campaign = run_campaign(
        labelled, campaign="fig5-grid", progress=True, manifest=spec.manifest()
    )
    for key, (_, result) in zip(keys, campaign.pairs()):
        _grid_cache[key] = result
    return dict(_grid_cache)


def grid_resultset(performance_grid) -> ResultSet:
    """The Figure 5/6 grid as an axis-tagged ResultSet, in the canonical
    SYSTEM_CONFIGS x CLIENT_LEVELS order (so figure tables keep the
    historical row/column ordering whatever order the cells ran in)."""
    return ResultSet.from_results(
        (
            f"{label} c{clients}",
            performance_grid[(label, clients)],
            {"system": label, "clients": clients},
        )
        for label, _, _ in SYSTEM_CONFIGS
        for clients in CLIENT_LEVELS
    )


def figure_series(performance_grid, figure_key):
    """Print one Figure 5/6 table and return its
    ``{system label: [value per client level]}`` series — the shared
    shape every fig5/fig6 assertion reads."""
    from repro.analysis import figure_table, render_figure

    table = figure_table(grid_resultset(performance_grid), figure_key)
    print(render_figure(table, figure_key))
    return table.columns()


def print_table(title: str, headers, rows) -> None:
    """Paper-style fixed-width table on stdout (shown with pytest -s);
    rendered by :mod:`repro.analysis` so every table in the suite shares
    one formatter."""
    print(format_table(title, headers, rows))
