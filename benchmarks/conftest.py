"""Shared machinery for the paper-reproduction benchmarks.

Each ``test_fig*`` / ``test_table*`` module regenerates one figure or
table of the paper's evaluation (§4.2, §5).  The heavy client sweeps are
computed once per pytest session and shared across figures (Figures 5
and 6 and Table 1 read the same grid, exactly like the paper); the
``benchmark`` fixture times one representative scenario per figure so
``--benchmark-only`` reports the simulator's own cost.

``REPRO_SCALE`` (default 0.3) scales per-run transaction counts;
``REPRO_SCALE=1`` reproduces the paper's full 10 000-transaction runs.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.core.experiment import Scenario, ScenarioConfig, ScenarioResult
from repro.core.scenarios import (
    CLIENT_LEVELS,
    SYSTEM_CONFIGS,
    scaled_transactions,
)

_grid_cache: Dict[Tuple[str, int], ScenarioResult] = {}


def run_point(label: str, sites: int, cpus: int, clients: int) -> ScenarioResult:
    """One point of the Figure 5/6 grid, cached for the session."""
    key = (label, clients)
    if key not in _grid_cache:
        config = ScenarioConfig(
            sites=sites,
            cpus_per_site=cpus,
            clients=clients,
            transactions=scaled_transactions(),
            seed=42 + clients,
            sample_interval=2.0,
            drain_time=5.0,
        )
        _grid_cache[key] = Scenario(config).run()
    return _grid_cache[key]


@pytest.fixture(scope="session")
def performance_grid():
    """All (system config, client level) points of Figures 5/6."""
    grid = {}
    for label, sites, cpus in SYSTEM_CONFIGS:
        for clients in CLIENT_LEVELS:
            grid[(label, clients)] = run_point(label, sites, cpus, clients)
    return grid


def print_table(title: str, headers, rows) -> None:
    """Paper-style fixed-width table on stdout (shown with pytest -s)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
