"""Shared machinery for the paper-reproduction benchmarks.

Each ``test_fig*`` / ``test_table*`` module regenerates one figure or
table of the paper's evaluation (§4.2, §5).  The heavy client sweeps are
computed once per pytest session and shared across figures (Figures 5
and 6 and Table 1 read the same grid, exactly like the paper); the
``benchmark`` fixture times one representative scenario per figure so
``--benchmark-only`` reports the simulator's own cost.

The grid is executed through the campaign runner, so the standard knobs
apply: ``REPRO_SCALE`` (default 0.3) scales per-run transaction counts
(``REPRO_SCALE=1`` reproduces the paper's full 10 000-transaction runs);
``REPRO_WORKERS`` farms grid cells to that many worker processes; and
``REPRO_ARTIFACT_DIR`` persists per-cell results so a re-run only
computes missing cells.  Metrics are identical whichever path ran them.

``REPRO_PROTOCOL`` selects the replication protocol of the replicated
cells (default ``dbsm``), so the same Figure 5/6 performance grid and
Figure 7 fault grid can be regenerated per protocol and compared.  The
paper-shape assertions are calibrated against ``dbsm`` — the protocol
the paper measures — and other protocols legitimately diverge (that
divergence being the point of the comparison), so shape assertions are
enforced only for ``dbsm``.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.core.experiment import Scenario, ScenarioConfig, ScenarioResult
from repro.core.scenarios import (
    CLIENT_LEVELS,
    SYSTEM_CONFIGS,
    performance_config,
)
from repro.protocols import available_protocols
from repro.runner import run_campaign

_grid_cache: Dict[Tuple[str, int], ScenarioResult] = {}


def bench_protocol() -> str:
    """The replication protocol under benchmark (``REPRO_PROTOCOL``)."""
    protocol = os.environ.get("REPRO_PROTOCOL", "dbsm")
    if protocol not in available_protocols():
        raise ValueError(
            f"REPRO_PROTOCOL={protocol!r} is not registered "
            f"(available: {', '.join(available_protocols())})"
        )
    return protocol


def assert_paper_shapes() -> bool:
    """Whether the paper's dbsm-calibrated shape assertions apply."""
    return bench_protocol() == "dbsm"


def point_config(sites: int, cpus: int, clients: int) -> ScenarioConfig:
    """One Figure 5/6 grid point: the canonical config plus the bench
    suite's tighter sampling/drain windows.  Centralized cells stay
    protocol-free — they are identical under every protocol, so their
    (expensive) artifacts are shared across REPRO_PROTOCOL values."""
    return performance_config(
        sites,
        cpus,
        clients,
        seed=42 + clients,
        protocol=bench_protocol() if sites > 1 else "dbsm",
        sample_interval=2.0,
        drain_time=5.0,
    )


def run_point(label: str, sites: int, cpus: int, clients: int) -> ScenarioResult:
    """One point of the Figure 5/6 grid, cached for the session."""
    key = (label, clients)
    if key not in _grid_cache:
        _grid_cache[key] = Scenario(point_config(sites, cpus, clients)).run()
    return _grid_cache[key]


@pytest.fixture(scope="session")
def performance_grid():
    """All (system config, client level) points of Figures 5/6,
    executed through the campaign runner (parallel when REPRO_WORKERS
    is set, resumable when REPRO_ARTIFACT_DIR is set)."""
    missing = [
        (label, sites, cpus, clients)
        for label, sites, cpus in SYSTEM_CONFIGS
        for clients in CLIENT_LEVELS
        if (label, clients) not in _grid_cache
    ]
    # Artifact labels scope replicated cells by protocol, so comparing
    # REPRO_PROTOCOL values never clobbers another protocol's stored
    # cells, while the (protocol-independent) centralized baselines and
    # the dbsm labels keep their historical names — existing caches stay
    # valid and the expensive centralized runs are shared.
    protocol = bench_protocol()

    def artifact_label(label: str, sites: int, clients: int) -> str:
        prefix = f"{protocol} " if sites > 1 and protocol != "dbsm" else ""
        return f"{prefix}{label} c{clients}"

    labelled = [
        (artifact_label(label, sites, clients), point_config(sites, cpus, clients))
        for label, sites, cpus, clients in missing
    ]
    campaign = run_campaign(labelled, campaign="fig5-grid", progress=True)
    for (label, _, _, clients), (_, result) in zip(missing, campaign.pairs()):
        _grid_cache[(label, clients)] = result
    return dict(_grid_cache)


def print_table(title: str, headers, rows) -> None:
    """Paper-style fixed-width table on stdout (shown with pytest -s)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
