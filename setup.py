"""Setuptools shim.

The project is declared in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose pip/setuptools
combination predates PEP 660 editable wheels (legacy ``setup.py develop``
path).
"""

from setuptools import setup

setup()
