"""Shared assembly helpers for the test suite.

Builds small protocol groups (network + CSRT + GCS) without the database
layers, so reliable-multicast / total-order / view tests run against the
same wiring the experiments use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.clock import CpuCostModel
from repro.core.cpu import CpuPool
from repro.core.csrt import SiteRuntime
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.kernel import Simulator
from repro.core.runtime_api import SimulatedProtocolRuntime
from repro.gcs.config import GcsConfig
from repro.gcs.stack import GroupCommunication
from repro.net.address import Endpoint, GroupAddress
from repro.net.network import Network
from repro.net.udp import UdpSocket

__all__ = ["GroupHarness", "make_group"]


class GroupHarness:
    """A running group of protocol stacks over a simulated LAN."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        stacks: List[GroupCommunication],
        runtimes: List[SiteRuntime],
        injectors: Dict[int, FaultInjector],
    ):
        self.sim = sim
        self.network = network
        self.stacks = stacks
        self.runtimes = runtimes
        self.injectors = injectors
        self.delivered: Dict[int, List[Tuple[int, int, bytes]]] = {
            s.member_id: [] for s in stacks
        }
        for stack in stacks:
            member = stack.member_id

            def on_deliver(gseq, origin, payload, member=member):
                self.delivered[member].append((gseq, origin, payload))

            stack.on_deliver = on_deliver

    def start(self) -> None:
        for stack in self.stacks:
            stack.start()

    def sequences(self) -> List[List[Tuple[int, int]]]:
        """Per-member (global_seq, origin) delivery orders."""
        return [
            [(g, o) for g, o, _ in self.delivered[s.member_id]]
            for s in self.stacks
        ]


def make_group(
    n: int = 3,
    config: Optional[GcsConfig] = None,
    fault_plans: Optional[Dict[int, FaultPlan]] = None,
    seed: int = 3,
) -> GroupHarness:
    """Wire ``n`` members on one simulated Ethernet segment."""
    sim = Simulator()
    network = Network(sim)
    group = GroupAddress("test", 9000)
    members = {i: Endpoint(f"m{i}", 9000) for i in range(n)}
    endpoint_ids = {addr: i for i, addr in members.items()}
    stacks: List[GroupCommunication] = []
    runtimes: List[SiteRuntime] = []
    injectors: Dict[int, FaultInjector] = {}
    plans = fault_plans or {}
    for i in range(n):
        host = network.add_host(f"m{i}")
        sock = UdpSocket(host, 9000)
        sock.join(group)
        injector = None
        if i in plans:
            injector = FaultInjector(plans[i])
            injectors[i] = injector
        runtime = SiteRuntime(
            sim,
            CpuPool(sim, 1, name=f"m{i}.cpu"),
            cost_model=CpuCostModel(),
            interceptor=injector,
            name=f"m{i}.rt",
        )
        runtime.network_send = sock.send
        sock.set_receiver(runtime.deliver)
        protocol_runtime = SimulatedProtocolRuntime(runtime, members[i], seed=seed + i)
        stack = GroupCommunication(
            protocol_runtime,
            i,
            members,
            group,
            config=config,
            endpoint_ids=endpoint_ids,
        )
        stacks.append(stack)
        runtimes.append(runtime)
    return GroupHarness(sim, network, stacks, runtimes, injectors)
