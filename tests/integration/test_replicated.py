"""Integration: the replicated database (3 sites over the GCS)."""

import pytest

from repro.core.experiment import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def result():
    config = ScenarioConfig(
        sites=3, cpus_per_site=1, clients=90, transactions=500, seed=21
    )
    return Scenario(config).run()


class TestReplicatedRun:
    def test_transactions_complete(self, result):
        assert len(result.metrics.records) >= 500

    def test_safety_all_sites_same_sequence(self, result):
        counts = result.check_safety()
        assert len(counts) == 3
        assert len(set(counts.values())) == 1

    def test_every_site_served_clients(self, result):
        for site in result.sites:
            assert site.server.stats["local_committed"] > 0

    def test_update_transactions_certified(self, result):
        certs = result.metrics.certification_latencies()
        assert len(certs) > 100
        assert all(c > 0 for c in certs)

    def test_remote_applies_happened(self, result):
        for site in result.sites:
            assert site.server.stats["remote_applied"] > 0

    def test_network_carried_protocol_traffic(self, result):
        assert result.capture.total_packets > 0
        assert result.network_kbps() > 0

    def test_protocol_cpu_charged(self, result):
        _, real = result.cpu_usage()
        assert real > 0.0

    def test_view_stayed_stable(self, result):
        for site in result.sites:
            assert site.gcs.view_id == 1

    def test_readonly_latency_unaffected_by_replication(self, result):
        """§5.1: read-only transactions commit locally, so their latency
        must not include any certification round-trip."""
        ro = result.metrics.latencies("orderstatus-short")
        certs = result.metrics.certification_latencies()
        assert ro, "no read-only samples"
        # read-only latencies are pure local processing: typically a few
        # ms; they must not be inflated past the median certified path
        import statistics

        assert statistics.median(ro) < statistics.median(
            result.metrics.latencies("payment-short")
        )

    def test_commit_watermark_advances_everywhere(self, result):
        for site in result.sites:
            assert site.replica.applied_watermark() > 0


class TestEquivalentCentralized:
    def test_throughput_close_to_same_cpu_centralized(self):
        """§5.1: the replicated system's throughput is very close to the
        centralized system with the same number of CPUs."""
        results = {}
        for label, sites, cpus in (("central", 1, 3), ("replicated", 3, 1)):
            config = ScenarioConfig(
                sites=sites,
                cpus_per_site=cpus,
                clients=120,
                transactions=500,
                seed=23,
            )
            results[label] = Scenario(config).run().throughput_tpm()
        assert results["replicated"] == pytest.approx(
            results["central"], rel=0.15
        )
