"""Integration: the §5.3 safety condition under every fault type.

"First, we ensure that all operational sites must commit exactly the
same sequence of transactions by comparing logs off-line after the
simulation has finished" — for clock drift, scheduling latency, random
loss, bursty loss, and crash.  The condition is protocol-independent:
every registered replication protocol must pass the same matrix (for
primary-copy, the crash plans additionally exercise primary failover —
site 0 is both the initial primary and the sequencer).
"""

import pytest

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.scenarios import safety_fault_plans
from repro.protocols import available_protocols

PLANS = safety_fault_plans(sites=3, seed=5)


@pytest.mark.parametrize("protocol", available_protocols())
@pytest.mark.parametrize("fault_name", sorted(PLANS))
def test_same_commit_sequence_under_fault(fault_name, protocol):
    config = ScenarioConfig(
        sites=3,
        cpus_per_site=1,
        clients=60,
        transactions=300,
        seed=31,
        protocol=protocol,
        faults=PLANS[fault_name],
        max_sim_time=600.0,
    )
    result = Scenario(config).run()
    counts = result.check_safety()  # raises SafetyViolation on divergence
    operational = [
        site for site in result.sites if not site.replica.crashed
    ]
    assert len(operational) >= 2
    assert all(counts[s.server.name] > 0 for s in operational)


def test_crash_blocks_only_faulty_sites_clients():
    """Crashes block clients connected to faulty replicas (§5.3); the
    survivors keep committing."""
    from repro.core.faults import FaultPlan

    config = ScenarioConfig(
        sites=3,
        cpus_per_site=1,
        clients=60,
        transactions=400,
        seed=37,
        faults={2: FaultPlan(crash_at=25.0)},
        max_sim_time=600.0,
    )
    result = Scenario(config).run()
    crashed_site = result.sites[2]
    survivor_commits = [
        len(s.replica.commit_log.entries) for s in result.sites[:2]
    ]
    crashed_commits = len(crashed_site.replica.commit_log.entries)
    assert all(c > crashed_commits for c in survivor_commits)
    # survivors agreed on a longer sequence; crashed is a prefix
    result.check_safety()


def test_sequencer_crash_survivors_commit_new_work():
    from repro.core.faults import FaultPlan

    config = ScenarioConfig(
        sites=3,
        cpus_per_site=1,
        clients=60,
        transactions=400,
        seed=41,
        faults={0: FaultPlan(crash_at=25.0)},
        max_sim_time=600.0,
    )
    result = Scenario(config).run()
    result.check_safety()
    survivors = result.sites[1:]
    assert all(s.gcs.view_id >= 2 for s in survivors)
    assert all(s.gcs.members == (1, 2) for s in survivors)
    # commits continued after the crash instant at survivors
    post_crash = [
        r
        for r in result.metrics.records
        if r.submit_time > 30.0 and r.committed and not r.readonly
    ]
    assert post_crash, "no update commits after the sequencer crash"
