"""Integration: determinism and the measured-clock mode.

Determinism under the cost-model clock is what the regression harness
(§7) builds on; the wall-clock (measured) mode is the paper's actual
profiling mechanism and must produce statistically similar results,
just not bit-identical ones.
"""

import pytest

from repro.core.csrt import MEASURED
from repro.core.experiment import Scenario, ScenarioConfig
from repro.runner import run_campaign


def config_for(seed=3, clock_mode="modeled", transactions=250):
    return ScenarioConfig(
        sites=3,
        cpus_per_site=1,
        clients=45,
        transactions=transactions,
        seed=seed,
        clock_mode=clock_mode,
    )


def run(seed=3, clock_mode="modeled", transactions=250):
    return Scenario(config_for(seed, clock_mode, transactions)).run()


class TestDeterminism:
    def test_identical_runs_bit_for_bit(self):
        # transaction ids come from a process-global counter, so two runs
        # in one process use different id ranges; everything observable —
        # timings, outcomes, commit order — must be identical.
        a = run(seed=3)
        b = run(seed=3)
        records_a = [(r.tx_class, r.submit_time, r.end_time, r.outcome)
                     for r in a.metrics.records]
        records_b = [(r.tx_class, r.submit_time, r.end_time, r.outcome)
                     for r in b.metrics.records]
        assert records_a == records_b
        logs_a = [[seq for seq, _ in log.sequence()] for log in a.commit_logs()]
        logs_b = [[seq for seq, _ in log.sequence()] for log in b.commit_logs()]
        assert logs_a == logs_b
        assert a.sim_time == b.sim_time

    def test_different_seeds_differ(self):
        a = run(seed=3)
        b = run(seed=4)
        assert a.throughput_tpm() != b.throughput_tpm()

    def test_sequential_workers1_and_pool_identical(self):
        """The same config + seed yields identical metrics whether run
        directly, through the runner in-process (workers=1), or in a
        worker process pool — the property every parallel campaign
        rests on."""
        config = config_for(seed=3, transactions=150)
        direct = Scenario(config).run()
        (_, in_process), = run_campaign(
            [("cell", config)], workers=1
        ).pairs()
        (_, pooled), = run_campaign(
            [("cell", config)], workers=2
        ).pairs()
        expect = self._observables(direct)
        assert self._observables(in_process) == expect
        assert self._observables(pooled) == expect

    @staticmethod
    def _observables(result):
        return {
            "records": [
                (r.tx_class, r.site, r.submit_time, r.end_time, r.outcome,
                 r.certification_latency)
                for r in result.metrics.records
            ],
            "commit_seqs": [
                [seq for seq, _ in log.sequence()]
                for log in result.commit_logs()
            ],
            "sim_time": result.sim_time,
            "throughput_tpm": result.throughput_tpm(),
            "abort_rate": result.abort_rate(),
            "cpu_usage": result.cpu_usage(),
            "network_kbps": result.network_kbps(),
            "safety": result.check_safety(),
        }


class TestMeasuredClock:
    def test_measured_mode_runs_and_stays_safe(self):
        """The paper's actual mechanism: real protocol code timed with
        the host's monotonic clock.  Nondeterministic, so assertions are
        behavioural only."""
        result = run(seed=5, clock_mode=MEASURED, transactions=150)
        assert len(result.metrics.records) >= 150
        result.check_safety()
        # real jobs consumed *measured* CPU time
        _, protocol_cpu = result.cpu_usage()
        assert protocol_cpu >= 0.0
        total_real = sum(
            cpu.busy_time["real"]
            for site in result.sites
            for cpu in site.cpus.cpus
        )
        assert total_real > 0.0

    def test_measured_mode_metrics_in_same_ballpark(self):
        modeled = run(seed=6, transactions=150)
        measured = run(seed=6, clock_mode=MEASURED, transactions=150)
        # throughput is think-time-dominated: the two clock modes agree
        assert measured.throughput_tpm() == pytest.approx(
            modeled.throughput_tpm(), rel=0.25
        )
