"""Seeded-bug efficacy: each runtime monitor catches exactly the class
of protocol bug it was built for, and none fires on correct code.

Three bugs are seeded by patching one site's protocol object after
``Scenario`` construction (the production source stays correct):

* a *leaky certifier* that skips one genuine conflict check — only the
  ``one-copy-sr`` monitor may flag it;
* a *swapping sequencer* that assigns two of one origin's messages in
  the wrong order (consistently at every site, so commit logs still
  agree) — only the ``gcs-ordering`` FIFO check may flag it;
* a *minority primary* whose view-majority rule is weakened so a
  partitioned singleton keeps committing — the ``primary-component``
  monitor must flag it.

The determinism guard at the bottom asserts monitors are provably free
when disabled: monitors-on and monitors-off runs produce bit-identical
result payloads, across the direct, sequential and pool runner paths.
"""

import dataclasses
import json

import pytest

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.faults import FaultPlan, crash_recover
from repro.runner.runner import run_campaign

MONITORS = ("one-copy-sr", "view-synchrony", "primary-component", "gcs-ordering")


def config(**overrides):
    base = dict(
        sites=3,
        cpus_per_site=1,
        clients=60,
        transactions=400,
        seed=21,
        monitors=("all",),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def by_monitor(result):
    counts = {name: 0 for name in MONITORS}
    for violation in result.violations:
        counts[violation.monitor] += 1
    return counts


class TestCleanRuns:
    """Correct protocol code triggers no monitor, under faults included."""

    @pytest.mark.parametrize("protocol", ["dbsm", "primary-copy"])
    def test_fault_free(self, protocol):
        result = Scenario(config(protocol=protocol)).run()
        assert result.violations == []
        assert result.check_safety()

    @pytest.mark.parametrize("protocol", ["dbsm", "primary-copy"])
    def test_crash_recover(self, protocol):
        result = Scenario(
            config(
                protocol=protocol,
                faults={1: crash_recover(15.0, 30.0)},
                max_sim_time=400.0,
            )
        ).run()
        assert result.violations == []
        assert result.recovery_events, "rejoin did not complete"


class TestLeakyCertifier:
    """Skipping one conflict check diverges the commit logs: the 1SR
    certifier flags it; the ordering/view/primary monitors stay quiet
    (delivery and membership are untouched)."""

    def seeded_run(self):
        # Escalated read sets make genuine certification conflicts
        # common enough to leak one deterministically.
        scenario = Scenario(config(readset_escalation_threshold=20))
        certifier = scenario.sites[1].replica.certifier
        genuine = certifier._conflicts
        skipped = {"count": 0}

        def leaky(request):
            if genuine(request):
                if skipped["count"] == 0:
                    skipped["count"] += 1
                    return False
                return True
            return False

        certifier._conflicts = leaky
        return scenario.run(), skipped["count"]

    def test_flagged_by_one_copy_sr_only(self):
        result, skipped = self.seeded_run()
        assert skipped > 0, "workload produced no conflict to leak"
        counts = by_monitor(result)
        assert counts["one-copy-sr"] > 0
        assert counts["gcs-ordering"] == 0
        assert counts["view-synchrony"] == 0
        assert counts["primary-component"] == 0

    def test_violation_is_cell_addressable(self):
        result, _ = self.seeded_run()
        violation = next(
            v for v in result.violations if v.monitor == "one-copy-sr"
        )
        assert violation.site in {"site0", "site1", "site2"}
        assert violation.sim_time >= 0.0
        assert "diverg" in violation.detail or "sequence" in violation.detail
        data = json.loads(json.dumps(result.to_dict()))
        assert data["violations"][0]["monitor"] == "one-copy-sr"


class TestSwappingSequencer:
    """Assigning two messages of one origin out of order — consistently
    at every site — breaks per-origin FIFO everywhere while commit logs
    still agree: only the gcs-ordering monitor may fire."""

    def seeded_run(self):
        scenario = Scenario(config())
        total_order = scenario.sites[0].gcs.total_order
        assert total_order.is_sequencer
        genuine = total_order._queue_assignment
        held = {}

        def swapping(origin, seq):
            if origin == 1 and "done" not in held:
                if "first" not in held:
                    held["first"] = (origin, seq)
                    return  # hold back until the origin's next message
                held["done"] = True
                genuine(origin, seq)  # later message gets earlier global
                genuine(*held.pop("first"))
                return
            genuine(origin, seq)

        total_order._queue_assignment = swapping
        return scenario.run()

    def test_flagged_by_gcs_ordering_only(self):
        result = self.seeded_run()
        counts = by_monitor(result)
        assert counts["gcs-ordering"] > 0
        assert counts["one-copy-sr"] == 0
        assert counts["view-synchrony"] == 0
        assert counts["primary-component"] == 0
        violation = next(
            v for v in result.violations if v.monitor == "gcs-ordering"
        )
        assert "FIFO" in violation.detail
        assert violation.seq > 0
        # The swap is consistent across sites: commit logs still agree.
        assert result.check_safety()


class TestMinorityPrimary:
    """A 2-of-5 minority partition whose majority rule is weakened
    installs a view without majority-of-predecessor and keeps
    committing; the primary-component monitor flags it.  (The run is
    split-brain by construction, so only this monitor is enabled — the
    1SR monitor would legitimately co-fire on the divergent logs.)"""

    def seeded_run(self):
        cfg = config(
            sites=5,
            monitors=("primary-component",),
            faults={
                3: FaultPlan(partition_at=5.0),
                4: FaultPlan(partition_at=5.0),
            },
            max_sim_time=200.0,
        )
        scenario = Scenario(cfg)
        for site in (3, 4):
            scenario.sites[site].gcs.views.majority = lambda: 2
        return scenario.run()

    def test_flagged_by_primary_component(self):
        result = self.seeded_run()
        assert result.violations, "minority commits went unflagged"
        assert {v.monitor for v in result.violations} == {"primary-component"}
        assert {v.site for v in result.violations} <= {"site3", "site4"}
        kinds = {
            "view" if "majority" in v.detail else "commit"
            for v in result.violations
        }
        assert "view" in kinds, "rogue view install itself went unflagged"


def strip_monitoring(result):
    payload = json.loads(json.dumps(result.to_dict()))
    payload.pop("violations", None)
    payload["config"].pop("monitors", None)
    return payload


class TestZeroCostWhenDisabled:
    """Monitors-on and monitors-off runs are bit-identical apart from
    the violations/monitors fields themselves."""

    def test_direct_path(self):
        cfg = config()
        on = Scenario(cfg).run()
        off = Scenario(dataclasses.replace(cfg, monitors=())).run()
        assert strip_monitoring(on) == strip_monitoring(off)

    def test_faulted_run(self):
        cfg = config(
            faults={1: crash_recover(15.0, 30.0)}, max_sim_time=400.0
        )
        on = Scenario(cfg).run()
        off = Scenario(dataclasses.replace(cfg, monitors=())).run()
        assert strip_monitoring(on) == strip_monitoring(off)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_runner_paths(self, workers):
        cfg = config(transactions=150)
        grid = [
            ("on", cfg),
            ("off", dataclasses.replace(cfg, monitors=())),
        ]
        campaign = run_campaign(grid, workers=workers)
        results = dict(campaign.pairs())
        assert strip_monitoring(results["on"]) == strip_monitoring(
            results["off"]
        )
        assert results["on"].violations == []
