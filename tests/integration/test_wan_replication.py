"""Integration: replication across WAN segments (§3.4, §5.2).

The group communication disseminates over IP multicast on LANs and
falls back to unicast when the destination set spans segments; the
paper argues the traffic volumes make WAN deployment realistic.  These
tests run the protocol harness across two segments with 20 ms one-way
latency and check the fallback, ordering, and the latency impact.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core.clock import CpuCostModel
from repro.core.cpu import CpuPool
from repro.core.csrt import SiteRuntime
from repro.core.kernel import Simulator
from repro.core.runtime_api import SimulatedProtocolRuntime
from repro.gcs.config import GcsConfig
from repro.gcs.stack import GroupCommunication
from repro.net.address import Endpoint, GroupAddress
from repro.net.network import Network
from repro.net.udp import UdpSocket

WAN_LATENCY = 0.020


def build_wan_group(n_east=2, n_west=1, wan_latency=WAN_LATENCY):
    sim = Simulator()
    network = Network(sim)
    network.set_wan_latency("east", "west", wan_latency)
    group = GroupAddress("wan", 9000)
    members = {}
    segments = {}
    for i in range(n_east + n_west):
        segment = "east" if i < n_east else "west"
        members[i] = Endpoint(f"m{i}", 9000)
        segments[i] = segment
    endpoint_ids = {a: i for i, a in members.items()}
    stacks = []
    delivered = {i: [] for i in members}
    for i, address in members.items():
        host = network.add_host(f"m{i}", segment=segments[i])
        sock = UdpSocket(host, 9000)
        sock.join(group)
        runtime = SiteRuntime(
            sim, CpuPool(sim, 1), cost_model=CpuCostModel(), name=f"m{i}.rt"
        )
        runtime.network_send = sock.send
        sock.set_receiver(runtime.deliver)
        protocol = SimulatedProtocolRuntime(runtime, address, seed=i)
        # multicast is not capable across segments: unicast fan-out
        capable = network.multicast_capable(f"m{i}", group)
        dest = group if capable else [a for j, a in members.items() if j != i]
        stack = GroupCommunication(
            protocol, i, members, dest,
            config=GcsConfig(stability_interval=0.05),
            endpoint_ids=endpoint_ids,
        )
        stack.on_deliver = (
            lambda g, o, p, member=i: delivered[member].append((g, o, p))
        )
        stacks.append(stack)
    return sim, network, stacks, delivered


class TestWanFallback:
    def test_group_spans_segments_forces_unicast(self):
        sim, network, stacks, delivered = build_wan_group()
        group = GroupAddress("wan", 9000)
        assert not network.multicast_capable("m0", group)

    def test_total_order_holds_across_wan(self):
        sim, network, stacks, delivered = build_wan_group()
        for stack in stacks:
            stack.start()
        for k in range(9):
            sim.schedule(0.01 * (k + 1), stacks[k % 3].multicast, b"w%d" % k)
        sim.run(until=5.0)
        orders = [
            [(g, o) for g, o, _ in delivered[i]] for i in range(3)
        ]
        assert all(len(order) == 9 for order in orders)
        assert orders[0] == orders[1] == orders[2]

    def test_wan_latency_shapes_delivery_time(self):
        """A cross-segment member's delivery lags by at least the WAN
        round trip through the sequencer."""
        sim, network, stacks, delivered = build_wan_group()
        for stack in stacks:
            stack.start()
        sent_at = 0.5
        sim.schedule(sent_at, stacks[2].multicast, b"from-west")
        sim.run(until=5.0)
        # member 2 is in the west; the sequencer (member 0) is east: the
        # DATA crosses the WAN, the SEQUENCE comes back
        arrival = None
        for g, o, p in delivered[2]:
            if p == b"from-west":
                arrival = g
        assert arrival is not None
        # total-order delivery at the *origin* still needed a WAN round
        # trip: DATA west->east plus SEQUENCE east->west
        # (we can't read the exact instant from the payload list, so
        # assert via a fresh run measuring time)
        sim2, network2, stacks2, delivered2 = build_wan_group()
        times = {}
        for i, stack in enumerate(stacks2):
            stack.on_deliver = (
                lambda g, o, p, member=i: times.setdefault(member, sim2.now)
            )
        for stack in stacks2:
            stack.start()
        sim2.schedule(sent_at, stacks2[2].multicast, b"x")
        sim2.run(until=5.0)
        assert times[2] - sent_at >= 2 * WAN_LATENCY

    def test_lan_only_group_keeps_multicast(self):
        sim, network, stacks, delivered = build_wan_group(n_east=3, n_west=0)
        group = GroupAddress("wan", 9000)
        assert network.multicast_capable("m0", group)
