"""Integration: the pluggable replication-protocol layer.

Every registered protocol must be deterministic and safety-clean on the
same (config, seed); primary-copy must additionally route updates to
the primary, serve reads locally, and fail over to the lowest-id
survivor when the primary crashes.
"""

import pytest

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.faults import FaultPlan
from repro.protocols import available_protocols
from repro.protocols.primary_copy import PrimaryCopyReplica


def config_for(protocol, seed=3, transactions=250, clients=45, **overrides):
    return ScenarioConfig(
        sites=3,
        cpus_per_site=1,
        clients=clients,
        transactions=transactions,
        seed=seed,
        protocol=protocol,
        **overrides,
    )


def observables(result):
    return {
        "records": [
            (r.tx_class, r.site, r.submit_time, r.end_time, r.outcome)
            for r in result.metrics.records
        ],
        "commit_seqs": [
            [seq for seq, _ in log.sequence()] for log in result.commit_logs()
        ],
        "sim_time": result.sim_time,
        "safety": result.check_safety(),
    }


@pytest.mark.parametrize("protocol", available_protocols())
class TestEveryProtocol:
    def test_deterministic_and_safe(self, protocol):
        a = Scenario(config_for(protocol)).run()
        b = Scenario(config_for(protocol)).run()
        assert observables(a) == observables(b)
        assert a.throughput_tpm() > 0

    def test_commit_logs_at_every_site(self, protocol):
        result = Scenario(config_for(protocol)).run()
        logs = result.commit_logs()
        assert len(logs) == 3
        assert all(len(log.entries) > 0 for log in logs)

    def test_site_stats_serialization_round_trip(self, protocol):
        result = Scenario(config_for(protocol)).run()
        clone = type(result).from_dict(result.to_dict())
        assert clone.site_stats == result.site_stats
        assert clone.check_safety() == result.check_safety()
        assert clone.config.protocol == protocol


class TestCrossProtocol:
    def test_protocols_diverge_on_identical_config(self):
        """Same workload, same seed — only the protocol differs, and the
        measured behavior differs with it (routing changes timings)."""
        dbsm = Scenario(config_for("dbsm")).run()
        pc = Scenario(config_for("primary-copy")).run()
        assert observables(dbsm) != observables(pc)
        # both are nonetheless complete and safe
        assert len(dbsm.metrics.records) >= 250
        assert len(pc.metrics.records) >= 250

    def test_explicit_dbsm_matches_default(self):
        """protocol="dbsm" is the default: threading the field through
        the scenario must not perturb the existing protocol's results."""
        default = Scenario(config_for("dbsm")).run()
        implicit = ScenarioConfig(
            sites=3, cpus_per_site=1, clients=45, transactions=250, seed=3
        )
        assert implicit.protocol == "dbsm"
        assert observables(Scenario(implicit).run()) == observables(default)


class TestPrimaryCopy:
    def test_updates_execute_on_primary_reads_locally(self):
        result = Scenario(config_for("primary-copy")).run()
        stats = result.site_stats
        # every write-set broadcast originated at the primary …
        assert stats["site0"]["submitted"] > 0
        assert stats["site1"]["submitted"] == 0
        assert stats["site2"]["submitted"] == 0
        # … backups forwarded their update transactions there …
        assert stats["site1"]["forwarded"] > 0
        assert stats["site2"]["forwarded"] > 0
        # … applied the primary's write-sets, and no failover happened
        assert stats["site1"]["backup_applies"] == stats["site1"]["sequenced"]
        assert all(stats[s]["failovers"] == 0 for s in stats)
        # read-only transactions committed at every site (served locally)
        for site in ("site0", "site1", "site2"):
            local_reads = [
                r
                for r in result.metrics.records
                if r.site == site and r.readonly and r.outcome == "commit"
            ]
            assert local_reads, f"no local read-only commits at {site}"

    def test_update_commits_recorded_at_primary_only(self):
        result = Scenario(config_for("primary-copy")).run()
        update_commits = [
            r
            for r in result.metrics.records
            if not r.readonly and r.outcome == "commit"
        ]
        assert update_commits
        assert {r.site for r in update_commits} == {"site0"}

    def test_primary_crash_fails_over_and_survivors_commit(self):
        config = config_for(
            "primary-copy",
            seed=41,
            transactions=400,
            clients=60,
            faults={0: FaultPlan(crash_at=25.0)},
            max_sim_time=600.0,
        )
        result = Scenario(config).run()
        result.check_safety()  # crashed primary's log is a prefix
        stats = result.site_stats
        # both survivors observed exactly one failover, to site 1
        assert stats["site1"]["failovers"] == 1
        assert stats["site2"]["failovers"] == 1
        for site in result.sites[1:]:
            assert isinstance(site.replica, PrimaryCopyReplica)
            assert site.replica.primary_id == 1
        # the new primary took over write-set broadcasting
        assert stats["site1"]["submitted"] > 0
        # update transactions kept committing after the crash instant
        post_crash = [
            r
            for r in result.metrics.records
            if r.submit_time > 30.0 and r.committed and not r.readonly
        ]
        assert post_crash, "no update commits after the primary crash"
        assert {r.site for r in post_crash} == {"site1"}
        # requests routed while no primary was reachable were parked and
        # later retried (deterministic for this seed)
        parked = stats["site1"]["parked"] + stats["site2"]["parked"]
        assert parked > 0
        survivors = [len(log.entries) for log in result.commit_logs()[1:]]
        crashed = len(result.commit_logs()[0].entries)
        assert all(c > crashed for c in survivors)

    def test_backup_crash_keeps_primary_serving(self):
        config = config_for(
            "primary-copy",
            seed=37,
            transactions=400,
            clients=60,
            faults={2: FaultPlan(crash_at=25.0)},
            max_sim_time=600.0,
        )
        result = Scenario(config).run()
        result.check_safety()
        stats = result.site_stats
        # no failover: the primary survived
        assert stats["site0"]["failovers"] == 0
        assert stats["site1"]["failovers"] == 0
        assert result.sites[0].replica.primary_id == 0
        survivor_commits = [
            len(log.entries) for log in result.commit_logs()[:2]
        ]
        crashed_commits = len(result.commit_logs()[2].entries)
        assert all(c > crashed_commits for c in survivor_commits)
