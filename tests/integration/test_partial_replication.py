"""Integration: the partial-replication protocol end to end.

The properties the scale-out campaign rests on: bit-identical
determinism across every execution path (direct, in-process runner,
worker pool), per-group one-copy serializability with disjoint
fragment histories, crash→recover survival inside one fragment group,
and zero violations from the fragment-aware runtime monitors.
"""

import pytest

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.safety import SafetyViolation, check_consistency
from repro.core.scenarios import fault_config
from repro.placement import sites_of_fragment
from repro.runner import run_campaign


def partial_config(**overrides):
    defaults = dict(
        sites=4,
        cpus_per_site=1,
        clients=120,
        transactions=200,
        seed=11,
        protocol="partial",
        fragments=2,
        placement="range",
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def observables(result):
    return {
        "records": [
            (r.tx_class, r.site, r.submit_time, r.end_time, r.outcome,
             r.certification_latency)
            for r in result.metrics.records
        ],
        "commit_seqs": [
            [seq for seq, _ in log.sequence()]
            for log in result.commit_logs()
        ],
        "sim_time": result.sim_time,
        "safety": result.check_safety(),
    }


class TestPartialDeterminism:
    def test_identical_runs_bit_for_bit(self):
        a = Scenario(partial_config()).run()
        b = Scenario(partial_config()).run()
        assert observables(a) == observables(b)

    def test_sequential_workers1_and_pool_identical(self):
        config = partial_config(transactions=150)
        direct = Scenario(config).run()
        (_, in_process), = run_campaign(
            [("cell", config)], workers=1
        ).pairs()
        (_, pooled), = run_campaign(
            [("cell", config)], workers=2
        ).pairs()
        expect = observables(direct)
        assert observables(in_process) == expect
        assert observables(pooled) == expect

    def test_placement_changes_the_execution(self):
        ranged = Scenario(partial_config()).run()
        robin = Scenario(partial_config(placement="round-robin")).run()
        assert observables(ranged) != observables(robin)


class TestPartialSafety:
    def test_per_group_histories_consistent_and_disjoint(self):
        config = partial_config()
        result = Scenario(config).run()
        counts = result.check_safety()
        assert sorted(counts) == [f"site{i}" for i in range(config.sites)]
        logs = result.commit_logs()
        group_seqs = []
        for fragment in range(config.fragments):
            members = sites_of_fragment(
                fragment, config.sites, config.fragments
            )
            check_consistency([logs[i] for i in members])
            group_seqs.append(
                {seq for seq, _ in logs[members[0]].sequence()}
            )
        # Each group runs its own commit sequence; histories are not
        # one global stream.
        assert all(seqs for seqs in group_seqs)

    def test_cross_group_logs_are_not_one_history(self):
        # A whole-system consistency check across independently numbered
        # fragment histories must NOT silently pass: the per-group
        # scoping in ScenarioResult.check_safety is load-bearing.
        result = Scenario(partial_config()).run()
        logs = result.commit_logs()
        with pytest.raises(SafetyViolation):
            check_consistency(logs)

    def test_monitors_stay_clean_on_fragmented_run(self):
        result = Scenario(partial_config(monitors=("all",))).run()
        result.check_safety()
        assert list(result.violations) == []

    def test_crash_recover_inside_one_fragment_group(self):
        # sites=6 / fragments=2 keeps three members per group, so the
        # group holding the crashed site retains a view majority and
        # readmits it via state transfer.
        config = fault_config(
            "crash-recover",
            clients=120,
            sites=6,
            transactions=300,
            seed=9,
            protocol="partial",
            fault_at=5.0,
            repair_after=3.0,
            fragments=2,
            placement="range",
        )
        result = Scenario(config).run()
        counts = result.check_safety()
        assert sorted(counts) == [f"site{i}" for i in range(6)]
        assert result.completed_rejoins()

    def test_stats_expose_cross_fragment_traffic(self):
        result = Scenario(partial_config()).run()
        stats = [site.replica.protocol_stats() for site in result.sites]
        assert sum(s["submitted"] for s in stats) > 0
        assert sum(s["single_fragment"] for s in stats) > 0
        # 120 clients over 12 warehouses: neworder remote stock reads
        # guarantee some cross-fragment certification.
        assert sum(s["cross_fragment"] for s in stats) > 0
        assert sum(s["decisions"] for s in stats) > 0
