"""Integration: the §7 automated regression harness."""

import json

import pytest

from repro.core.experiment import ScenarioConfig
from repro.core.regression import Regression, RegressionSuite
from repro.tpcc.profiles import default_profiles


def small_suite(**overrides):
    scenarios = {
        "replicated-light": ScenarioConfig(
            sites=3, cpus_per_site=1, clients=45, transactions=200, seed=5
        ),
        "centralized-light": ScenarioConfig(
            sites=1, cpus_per_site=1, clients=30, transactions=150, seed=6
        ),
    }
    return RegressionSuite(scenarios, **overrides)


class TestRecordCheckCycle:
    def test_clean_tree_reproduces_baseline(self, tmp_path):
        """Determinism: record then check on the same code = no findings."""
        path = tmp_path / "baselines.json"
        suite = small_suite()
        baselines = suite.record(path)
        assert set(baselines) == {"replicated-light", "centralized-light"}
        findings = suite.check(path)
        assert findings == []

    def test_baseline_file_is_readable_json(self, tmp_path):
        path = tmp_path / "baselines.json"
        small_suite().record(path)
        data = json.loads(path.read_text())
        entry = data["replicated-light"]
        assert entry["metrics"]["throughput_tpm"] > 0
        assert entry["completed"] >= 200

    def test_throughput_regression_detected(self, tmp_path):
        path = tmp_path / "baselines.json"
        suite = small_suite()
        suite.record(path)
        # simulate a performance regression: inflate the baseline so the
        # (unchanged) measured run looks slow
        data = json.loads(path.read_text())
        data["replicated-light"]["metrics"]["throughput_tpm"] *= 2.0
        path.write_text(json.dumps(data))
        findings = suite.check(path)
        assert any(
            f.metric == "throughput_tpm" and f.kind == "performance"
            for f in findings
        )

    def test_latency_regression_detected(self, tmp_path):
        path = tmp_path / "baselines.json"
        suite = small_suite()
        suite.record(path)
        data = json.loads(path.read_text())
        data["centralized-light"]["metrics"]["mean_latency"] /= 3.0
        path.write_text(json.dumps(data))
        findings = suite.check(path)
        assert any(f.metric == "mean_latency" for f in findings)

    def test_missing_scenario_is_reliability_finding(self, tmp_path):
        path = tmp_path / "baselines.json"
        suite = small_suite()
        suite.record(path)
        data = json.loads(path.read_text())
        del data["centralized-light"]
        path.write_text(json.dumps(data))
        findings = suite.check(path)
        assert any(
            f.scenario == "centralized-light" and f.kind == "reliability"
            for f in findings
        )

    def test_tolerances_are_configurable(self, tmp_path):
        path = tmp_path / "baselines.json"
        suite = small_suite(tolerances={"throughput_tpm": 0.9})
        suite.record(path)
        data = json.loads(path.read_text())
        data["replicated-light"]["metrics"]["throughput_tpm"] *= 1.5
        path.write_text(json.dumps(data))
        # 50% drop tolerated at 90% tolerance
        assert not any(
            f.metric == "throughput_tpm" for f in suite.check(path)
        )

    def test_parallel_suite_matches_sequential(self, tmp_path):
        """Recording with worker processes and checking sequentially (or
        vice versa) is clean: scenario metrics do not depend on which
        process ran them."""
        path = tmp_path / "baselines.json"
        small_suite(workers=2).record(path)
        assert small_suite(workers=1).check(path) == []
        assert small_suite(workers=2).check(path) == []

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            RegressionSuite({})

    def test_regression_str(self):
        finding = Regression("s", "throughput_tpm", 100.0, 50.0, "performance")
        text = str(finding)
        assert "s.throughput_tpm" in text and "performance" in text
