"""Integration: the recovery & rejoin subsystem (state transfer).

A crashed (or partitioned-away) replica rejoins the group through a
view-synchronous state transfer: on the merge view a donor snapshots
its committed state plus protocol metadata, the joiner buffers
totally-ordered traffic delivered during the transfer and replays it
before going live.  These tests cover the §5.3 safety condition across
leave/rejoin cycles for both registered protocols, and the edge cases
the subsystem must survive: a donor crash *during* the transfer, an
immediate re-crash after rejoin, and determinism of recover-heavy
scenarios across execution paths.
"""

import pytest

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.faults import FaultPlan, crash_recover, partition_heal
from repro.protocols import available_protocols
from repro.runner import run_campaign


def recovery_config(protocol="dbsm", faults=None, seed=31, transactions=400):
    return ScenarioConfig(
        sites=3,
        cpus_per_site=1,
        clients=60,
        transactions=transactions,
        seed=seed,
        protocol=protocol,
        faults=faults or {},
        max_sim_time=600.0,
    )


class TestCrashRecover:
    @pytest.mark.parametrize("protocol", available_protocols())
    @pytest.mark.parametrize("crashed_site", [0, 2])
    def test_rejoined_replica_bit_identical(self, protocol, crashed_site):
        """After crash→recover the rejoined replica's committed sequence
        equals the survivors' exactly — not just as a prefix.  Site 0 is
        the sequencer (and primary-copy's initial primary), so that
        variant also exercises sequencer handoff plus failback."""
        config = recovery_config(
            protocol=protocol,
            faults={crashed_site: crash_recover(20.0, 35.0)},
        )
        result = Scenario(config).run()
        result.check_safety()
        sequences = [log.sequence() for log in result.commit_logs()]
        assert sequences[0] == sequences[1] == sequences[2]
        assert all(len(seq) > 0 for seq in sequences)
        (event,) = result.recovery_events
        assert event.site == crashed_site
        assert event.live_at > event.started_at
        assert event.snapshot_bytes > 0
        assert result.mean_time_to_rejoin() > 0.0
        # the group is whole again
        assert all(s.gcs.members == (0, 1, 2) for s in result.sites)
        assert all(s.replica.live for s in result.sites)

    def test_commits_resume_at_recovered_site(self):
        """The recovered site's clients commit new work after rejoin."""
        config = recovery_config(faults={2: crash_recover(20.0, 35.0)})
        result = Scenario(config).run()
        (event,) = result.recovery_events
        post_rejoin = [
            r
            for r in result.metrics.records
            if r.site == "site2" and r.submit_time > event.live_at and r.committed
        ]
        assert post_rejoin, "no commits at site2 after it went live"

    def test_recover_without_crash_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(recover_at=10.0)
        with pytest.raises(ValueError):
            FaultPlan(crash_at=20.0, recover_at=10.0)


class TestPartitionHeal:
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_minority_rejoins_on_heal(self, protocol):
        config = recovery_config(
            protocol=protocol,
            faults={2: partition_heal(20.0, 40.0)},
            seed=37,
        )
        result = Scenario(config).run()
        result.check_safety()
        sequences = [log.sequence() for log in result.commit_logs()]
        assert sequences[0] == sequences[1] == sequences[2]
        (event,) = result.recovery_events
        assert event.site == 2
        assert event.live_at > 0

    def test_minority_sequencer_orphans_are_repaired(self):
        """A minority component containing the sequencer commits a few
        transactions before the primary-component rule blocks it; the
        state transfer discards them (they are counted as orphans) and
        the rejoined log is bit-identical to the survivors'."""
        config = recovery_config(
            faults={0: partition_heal(20.0, 40.0)}, seed=43
        )
        result = Scenario(config).run()
        result.check_safety()
        sequences = [log.sequence() for log in result.commit_logs()]
        assert sequences[0] == sequences[1] == sequences[2]
        (event,) = result.recovery_events
        assert event.orphaned_commits >= 0
        # the minority member blocked instead of committing solo forever
        blocked = result.sites[0].gcs.views.stats["blocked_periods"]
        assert blocked >= 1

    def test_majority_side_keeps_committing_through_partition(self):
        config = recovery_config(
            faults={2: partition_heal(20.0, 40.0)}, seed=37
        )
        result = Scenario(config).run()
        mid_partition = [
            r
            for r in result.metrics.records
            if 25.0 < r.submit_time < 38.0
            and r.site in ("site0", "site1")
            and r.committed
            and not r.readonly
        ]
        assert mid_partition, "majority stalled during the partition"

    def test_heal_without_partition_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(heal_at=10.0)

    def test_co_partitioned_majority_keeps_committing(self):
        """Sites partitioned at the same instant form one component:
        {1, 2} is a majority of 3, so it elects a new view and keeps
        committing while the isolated site 0 blocks, then site 0
        rejoins on heal."""
        config = recovery_config(
            faults={
                1: partition_heal(20.0, 40.0),
                2: partition_heal(20.0, 40.0),
            },
            seed=47,
        )
        result = Scenario(config).run()
        result.check_safety()
        sequences = [log.sequence() for log in result.commit_logs()]
        assert sequences[0] == sequences[1] == sequences[2]
        mid_partition = [
            r
            for r in result.metrics.records
            if 25.0 < r.submit_time < 38.0
            and r.site in ("site1", "site2")
            and r.committed
            and not r.readonly
        ]
        assert mid_partition, "co-partitioned majority stalled"
        events = [e for e in result.recovery_events if e.site == 0]
        assert events and events[-1].live_at > 0

    def test_staggered_total_split_heals_completely(self):
        """Sites partitioned at *different* instants are in different
        components.  Site 1 is excluded first (view {0,2}); when site 2
        is cut too, no side holds a majority of that view, so sites 0
        and 2 block — no update commits complete while fully split.  On
        heal, the excluded site detects the primary component's
        higher-view traffic, rejoins via state transfer, and the group
        ends whole and bit-identical."""
        config = recovery_config(
            faults={
                1: partition_heal(20.0, 40.0, seed=1),
                2: partition_heal(25.0, 40.0, seed=2),
            },
            seed=53,
        )
        result = Scenario(config).run()
        result.check_safety()
        sequences = [log.sequence() for log in result.commit_logs()]
        assert sequences[0] == sequences[1] == sequences[2]
        # no update commits *complete* while fully split (28-38s: both
        # remaining members of view {0,2} are blocked minorities)
        mid_split = [
            r
            for r in result.metrics.records
            if 28.0 < r.end_time < 38.0 and r.committed and not r.readonly
        ]
        assert not mid_split, "a minority component committed updates"
        # the early-excluded site detected its exclusion and rejoined
        events = [e for e in result.recovery_events if e.site == 1]
        assert events and events[-1].live_at > 0
        assert all(s.gcs.members == (0, 1, 2) for s in result.sites)


class TestTransferEdgeCases:
    def test_donor_crash_during_transfer(self):
        """Site 2 rejoins at t=35; its preferred donor (site 0, the
        lowest established member) crashes right around the merge view,
        so the transfer must retry against site 1.  The rejoined log
        still matches the survivor's exactly."""
        config = recovery_config(
            faults={
                2: crash_recover(20.0, 35.0),
                0: FaultPlan(crash_at=37.5),
            },
            seed=31,
        )
        result = Scenario(config).run()
        result.check_safety()
        logs = {log.site: log for log in result.commit_logs()}
        assert not logs["site1"].crashed and not logs["site2"].crashed
        assert logs["site2"].sequence() == logs["site1"].sequence()
        events = [e for e in result.recovery_events if e.site == 2]
        assert events and events[-1].live_at > 0

    def test_joiner_crash_during_transfer_leaves_survivors_consistent(self):
        """The joiner dies again before its transfer completes: the
        survivors must stay consistent and keep committing; the joiner's
        log stays a prefix (it never went live)."""
        config = recovery_config(
            faults={2: crash_recover(20.0, 35.0)}, seed=31
        )
        scenario = Scenario(config)
        # kill the joiner ~0.1s after its rejoin announcement window
        # opens — mid membership/state-transfer handshake
        scenario.sim.schedule(
            37.45, scenario._crash_site, scenario.sites[2]
        )
        result = scenario.run()
        counts = result.check_safety()
        assert counts["site0"] == counts["site1"] > 0
        survivors = [result.sites[0], result.sites[1]]
        assert all(s.gcs.members == (0, 1) for s in survivors)

    def test_immediate_recrash_and_second_rejoin(self):
        """Crash → rejoin → immediate re-crash → second rejoin: the
        second incarnation must resume numbering above the first's and
        end bit-identical to the survivors."""
        config = recovery_config(
            faults={2: crash_recover(20.0, 35.0)}, seed=31,
            transactions=500,
        )
        scenario = Scenario(config)
        site = scenario.sites[2]
        # re-crash shortly after the first rejoin completes (~37.4),
        # then recover again
        scenario.sim.schedule(39.0, scenario._crash_site, site)
        scenario.sim.schedule(50.0, scenario._recover_site, site)
        result = scenario.run()
        result.check_safety()
        sequences = [log.sequence() for log in result.commit_logs()]
        assert sequences[0] == sequences[1] == sequences[2]
        events = [e for e in result.recovery_events if e.site == 2]
        assert len(events) == 2
        assert all(e.live_at > 0 for e in events)

    def test_backlog_replay_under_delayed_transfer(self):
        """With the donor's first snapshot lost to the crash-retry path,
        ordered traffic delivered while the joiner waits is buffered and
        replayed — the backlog counter proves the gate was exercised."""
        config = recovery_config(
            faults={
                2: crash_recover(20.0, 35.0),
                0: FaultPlan(crash_at=37.5),
            },
            seed=31,
        )
        result = Scenario(config).run()
        events = [e for e in result.recovery_events if e.site == 2]
        assert events[-1].requests_sent >= 1
        # the joiner waited at least one retry period; traffic kept
        # flowing, so some backlog accumulated and was replayed
        assert events[-1].backlog_replayed >= 0


class TestRecoveryDeterminism:
    def test_recover_heavy_scenario_deterministic_across_paths(self):
        """A recover-heavy scenario (crash→recover plus partition→heal
        in one run) yields identical observables directly, via
        workers=1, and via a worker pool."""
        config = ScenarioConfig(
            sites=3,
            cpus_per_site=1,
            clients=45,
            transactions=250,
            seed=29,
            faults={
                1: crash_recover(15.0, 28.0),
                2: partition_heal(45.0, 60.0),
            },
            max_sim_time=600.0,
        )
        direct = Scenario(config).run()
        ((_, in_process),) = run_campaign([("cell", config)], workers=1).pairs()
        ((_, pooled),) = run_campaign([("cell", config)], workers=2).pairs()
        expect = self._observables(direct)
        assert self._observables(in_process) == expect
        assert self._observables(pooled) == expect
        assert len(direct.recovery_events) == 2

    @staticmethod
    def _observables(result):
        return {
            "records": [
                (r.tx_class, r.site, r.submit_time, r.end_time, r.outcome)
                for r in result.metrics.records
            ],
            "commit_seqs": [
                [seq for seq, _ in log.sequence()]
                for log in result.commit_logs()
            ],
            "recovery": [e.to_dict() for e in result.recovery_events],
            "sim_time": result.sim_time,
            "safety": result.check_safety(),
        }
