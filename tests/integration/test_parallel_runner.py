"""Integration: the parallel campaign runner end to end.

The acceptance bar for the runner subsystem: a grid executed with
``workers>1`` produces metrics identical to the sequential path, a
failed cell is recorded (with its traceback) without killing the rest of
the campaign, and a repeated invocation against the same artifact
directory skips completed cells.
"""

import pytest

from repro.core.experiment import Scenario, ScenarioConfig
from repro.core.faults import FaultPlan
from repro.core.scenarios import run_grid
from repro.runner import CampaignError, run_campaign


def grid_configs(transactions=120):
    """A miniature Fig. 5-style grid: centralized and replicated cells."""
    grid = []
    for label, sites, cpus in (("1 CPU", 1, 1), ("3 Sites", 3, 1)):
        for clients in (20, 40):
            grid.append(
                (
                    f"{label} c{clients}",
                    ScenarioConfig(
                        sites=sites,
                        cpus_per_site=cpus,
                        clients=clients,
                        transactions=transactions,
                        seed=42 + clients,
                    ),
                )
            )
    return grid


def observables(result):
    """Everything a figure reads, excluding process-global tx ids."""
    return {
        "throughput_tpm": result.throughput_tpm(),
        "mean_latency": result.mean_latency(),
        "abort_rate": result.abort_rate(),
        "cpu_usage": result.cpu_usage(),
        "disk_usage": result.disk_usage(),
        "network_kbps": result.network_kbps(),
        "sim_time": result.sim_time,
        "records": [
            (r.tx_class, r.site, r.submit_time, r.end_time, r.outcome,
             r.readonly, r.certification_latency, r.abort_reason)
            for r in result.metrics.records
        ],
        "commit_seqs": [
            [seq for seq, _ in log.sequence()] for log in result.commit_logs()
        ],
        "safety": result.check_safety(),
    }


class TestPoolMatchesSequential:
    def test_pool_grid_identical_to_sequential(self):
        grid = grid_configs()
        sequential = [
            (label, Scenario(config).run()) for label, config in grid
        ]
        in_process = run_campaign(grid, workers=1).pairs()
        pooled = run_campaign(grid, workers=2).pairs()
        for (label, direct), (_, single), (_, parallel) in zip(
            sequential, in_process, pooled
        ):
            assert observables(single) == observables(direct), label
            assert observables(parallel) == observables(direct), label

    def test_run_grid_rewired_through_runner(self):
        grid = grid_configs()[:2]
        old_style = [(label, Scenario(c).run()) for label, c in grid]
        for workers in (1, 2):
            rewired = run_grid(grid, workers=workers)
            assert [label for label, _ in rewired] == [l for l, _ in grid]
            for (_, a), (_, b) in zip(old_style, rewired):
                assert observables(a) == observables(b)


class TestWorkerFailureIsolation:
    #: Constructible and picklable, but Scenario assembly raises inside
    #: the worker: a plan cannot carry both loss models.
    BAD_PLAN = FaultPlan(random_loss_rate=0.05, bursty_loss_rate=0.05)

    def failing_grid(self):
        good = ScenarioConfig(sites=3, clients=20, transactions=100, seed=5)
        bad = ScenarioConfig(
            sites=3, clients=20, transactions=100, seed=5,
            faults={0: self.BAD_PLAN},
        )
        return [
            ("before", good),
            ("poison", bad),
            ("after", ScenarioConfig(sites=1, clients=20, transactions=100,
                                     seed=6)),
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failed_cell_recorded_rest_completes(self, workers):
        campaign = run_campaign(self.failing_grid(), workers=workers)
        assert [c.status for c in campaign.cells] == ["ok", "failed", "ok"]
        poison = campaign.get("poison")
        assert poison.result is None
        assert "choose either random or bursty loss" in poison.error
        assert "Traceback" in poison.error
        assert campaign.get("before").result.throughput_tpm() > 0
        assert campaign.get("after").result.throughput_tpm() > 0

    def test_pairs_surfaces_failure(self):
        campaign = run_campaign(self.failing_grid()[:2], workers=1)
        with pytest.raises(CampaignError) as excinfo:
            campaign.pairs()
        assert "poison" in str(excinfo.value)


class TestResumability:
    def test_second_invocation_skips_completed_cells(self, tmp_path, monkeypatch):
        grid = grid_configs(transactions=80)
        art = tmp_path / "campaign"
        first = run_campaign(grid, workers=2, artifact_dir=art)
        assert first.ok
        assert {c.source for c in first.cells} == {"worker"}

        # the repeat must not execute any scenario: break Scenario.run
        # in this process and keep workers=1 so the pool cannot dodge it
        monkeypatch.setattr(
            Scenario, "run",
            lambda self: pytest.fail("cell re-executed despite artifact"),
        )
        second = run_campaign(grid, workers=1, artifact_dir=art)
        assert {c.source for c in second.cells} == {"artifact"}
        for (label, a), (_, b) in zip(first.pairs(), second.pairs()):
            assert a.throughput_tpm() == b.throughput_tpm(), label
            assert a.check_safety() == b.check_safety(), label

    def test_changed_config_invalidates_only_that_cell(self, tmp_path):
        grid = grid_configs(transactions=80)
        art = tmp_path / "campaign"
        run_campaign(grid, workers=1, artifact_dir=art)
        label0, config0 = grid[0]
        changed = [(label0, ScenarioConfig(
            sites=config0.sites, cpus_per_site=config0.cpus_per_site,
            clients=config0.clients, transactions=config0.transactions,
            seed=config0.seed + 1,
        ))] + grid[1:]
        second = run_campaign(changed, workers=1, artifact_dir=art)
        assert second.get(label0).source == "in-process"
        assert all(
            second.get(label).source == "artifact" for label, _ in grid[1:]
        )

    def test_failed_cells_are_not_cached(self, tmp_path):
        bad = ScenarioConfig(
            sites=3, clients=20, transactions=100, seed=5,
            faults={0: TestWorkerFailureIsolation.BAD_PLAN},
        )
        art = tmp_path / "campaign"
        first = run_campaign([("poison", bad)], workers=1, artifact_dir=art)
        assert not first.ok
        second = run_campaign([("poison", bad)], workers=1, artifact_dir=art)
        assert second.get("poison").source == "in-process"  # re-attempted

    def test_custom_profiles_artifact_never_matches_defaults(self, tmp_path):
        """Pool results lose their custom profiles in transit; the
        artifact must still be keyed on the *requested* config so a
        default-profiles run does not false-match it (and an identical
        custom-profiles run does)."""
        from repro.tpcc.profiles import default_profiles

        def custom():
            return ScenarioConfig(
                sites=1, clients=10, transactions=60, seed=3,
                profiles=default_profiles(),
            )

        art = tmp_path / "campaign"
        first = run_campaign([("cell", custom())], workers=2, artifact_dir=art)
        assert first.get("cell").source == "worker"
        again = run_campaign([("cell", custom())], workers=1, artifact_dir=art)
        assert again.get("cell").source == "artifact"
        defaults = ScenarioConfig(sites=1, clients=10, transactions=60, seed=3)
        mismatch = run_campaign(
            [("cell", defaults)], workers=1, artifact_dir=art
        )
        assert mismatch.get("cell").source == "in-process"

    def test_env_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        grid = grid_configs(transactions=80)[:1]
        first = run_campaign(grid, campaign="env-test")
        assert first.get(grid[0][0]).source == "worker"
        assert (tmp_path / "env-test").is_dir()
        second = run_campaign(grid, campaign="env-test")
        assert second.get(grid[0][0]).source == "artifact"
