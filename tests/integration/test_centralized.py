"""Integration: the centralized baseline (1 site, N CPUs, no replication)."""

import pytest

from repro.core.experiment import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def result():
    config = ScenarioConfig(
        sites=1, cpus_per_site=1, clients=60, transactions=400, seed=11
    )
    return Scenario(config).run()


class TestCentralizedRun:
    def test_transactions_complete(self, result):
        assert len(result.metrics.records) >= 400

    def test_throughput_positive(self, result):
        assert result.throughput_tpm() > 0

    def test_no_certification_latencies(self, result):
        """Centralized runs have no replication protocol at all."""
        assert result.metrics.certification_latencies() == []
        assert result.capture.total_packets == 0

    def test_no_commit_logs(self, result):
        assert result.commit_logs() == []
        assert result.check_safety() == {}

    def test_cpu_was_used(self, result):
        total, real = result.cpu_usage()
        assert total > 0.0
        assert real == 0.0  # no protocol jobs exist

    def test_disk_was_used(self, result):
        assert result.disk_usage() > 0.0

    def test_all_classes_observed(self, result):
        classes = set(result.metrics.classes())
        assert {"neworder", "payment-long", "payment-short"} <= classes

    def test_readonly_classes_never_abort(self, result):
        assert result.metrics.abort_rate("orderstatus-short") == 0.0
        assert result.metrics.abort_rate("stocklevel") == 0.0


class TestMoreCpusMoreThroughputUnderLoad:
    def test_three_cpus_cut_latency(self):
        """With the same heavy load, 3 CPUs beat 1 CPU on latency."""
        lat = {}
        for cpus in (1, 3):
            config = ScenarioConfig(
                sites=1,
                cpus_per_site=cpus,
                clients=400,
                transactions=800,
                seed=13,
            )
            res = Scenario(config).run()
            lat[cpus] = res.mean_latency()
        assert lat[3] < lat[1]
