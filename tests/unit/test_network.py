"""Unit tests for the network fabric: links, routing, multicast, WAN."""

import pytest

from repro.core.kernel import Simulator
from repro.net.address import Endpoint, GroupAddress
from repro.net.capture import PacketCapture
from repro.net.link import RateLimitedLink, WIRE_OVERHEAD_BYTES
from repro.net.network import FRAGMENT_OVERHEAD_BYTES, Network
from repro.net.udp import UdpSocket


class TestRateLimitedLink:
    def test_transmission_time_includes_framing(self):
        sim = Simulator()
        link = RateLimitedLink(sim, "l", bandwidth_bps=100e6, latency=0.0)
        expected = (1000 + WIRE_OVERHEAD_BYTES) * 8 / 100e6
        assert link.transmission_time(1000) == pytest.approx(expected)

    def test_packets_serialize_back_to_back(self):
        sim = Simulator()
        link = RateLimitedLink(sim, "l", bandwidth_bps=1e6, latency=0.0)
        arrivals = []
        for _ in range(3):
            link.deliver(83, lambda: arrivals.append(sim.now))  # 1 ms each
        sim.run()
        assert arrivals == pytest.approx([0.001, 0.002, 0.003])

    def test_latency_added_after_serialization(self):
        sim = Simulator()
        link = RateLimitedLink(sim, "l", bandwidth_bps=1e6, latency=0.5)
        arrivals = []
        link.deliver(83, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] == pytest.approx(0.501)

    def test_tail_drop_when_queue_full(self):
        sim = Simulator()
        link = RateLimitedLink(sim, "l", bandwidth_bps=1e3, queue_bytes=100)
        accepted = [link.deliver(60, lambda: None) for _ in range(3)]
        assert accepted == [True, True, False]
        assert link.stats.packets_dropped == 1

    def test_stats_accumulate(self):
        sim = Simulator()
        link = RateLimitedLink(sim, "l", bandwidth_bps=1e6)
        link.deliver(100, lambda: None)
        sim.run()
        assert link.stats.packets_sent == 1
        assert link.stats.bytes_sent == 100 + WIRE_OVERHEAD_BYTES
        assert link.stats.busy_time > 0


class TestRouting:
    def make_net(self, **kwargs):
        sim = Simulator()
        net = Network(sim, **kwargs)
        hosts = [net.add_host(f"h{i}") for i in range(3)]
        socks = [UdpSocket(h, 5) for h in hosts]
        inbox = {i: [] for i in range(3)}
        for i, sock in enumerate(socks):
            sock.set_receiver(
                lambda src, p, i=i: inbox[i].append((sim.now, str(src), p))
            )
        return sim, net, socks, inbox

    def test_unicast_delivery(self):
        sim, net, socks, inbox = self.make_net()
        socks[0].send(Endpoint("h1", 5), b"hello")
        sim.run()
        assert len(inbox[1]) == 1
        assert inbox[1][0][2] == b"hello"
        assert inbox[2] == []

    def test_unicast_to_unknown_host_dropped(self):
        sim, net, socks, inbox = self.make_net()
        socks[0].send(Endpoint("nowhere", 5), b"x")
        sim.run()
        assert all(not msgs for msgs in inbox.values())

    def test_multicast_reaches_members_not_sender(self):
        sim, net, socks, inbox = self.make_net()
        group = GroupAddress("g", 5)
        for sock in socks:
            sock.join(group)
        socks[0].send(group, b"mc")
        sim.run()
        assert inbox[0] == []  # no loopback by default
        assert len(inbox[1]) == 1 and len(inbox[2]) == 1

    def test_multicast_consumes_one_egress_copy(self):
        sim, net, socks, inbox = self.make_net()
        group = GroupAddress("g", 5)
        for sock in socks:
            sock.join(group)
        socks[0].send(group, b"mc")
        sim.run()
        assert net.hosts["h0"].egress.stats.packets_sent == 1

    def test_send_to_explicit_list(self):
        sim, net, socks, inbox = self.make_net()
        socks[0].send([Endpoint("h1", 5), Endpoint("h2", 5)], b"uni")
        sim.run()
        assert len(inbox[1]) == 1 and len(inbox[2]) == 1
        assert net.hosts["h0"].egress.stats.packets_sent == 2

    def test_local_delivery_bypasses_links(self):
        sim, net, socks, inbox = self.make_net()
        socks[0].send(Endpoint("h0", 5), b"self")
        sim.run()
        assert len(inbox[0]) == 1
        assert net.hosts["h0"].egress.stats.packets_sent == 0

    def test_leave_group_stops_delivery(self):
        sim, net, socks, inbox = self.make_net()
        group = GroupAddress("g", 5)
        for sock in socks:
            sock.join(group)
        socks[2].leave(group)
        socks[0].send(group, b"mc")
        sim.run()
        assert inbox[2] == []


class TestWireSize:
    def test_below_mtu_unchanged(self):
        net = Network(Simulator(), mtu=1500)
        assert net.wire_size(1000) == 1000

    def test_fragmentation_overhead(self):
        net = Network(Simulator(), mtu=1500)
        assert net.wire_size(3000) == 3000 + FRAGMENT_OVERHEAD_BYTES

    def test_mtu_not_enforced_reproduces_ssfnet(self):
        net = Network(Simulator(), mtu=1500, enforce_mtu=False)
        assert net.wire_size(9000) == 9000


class TestWan:
    def test_wan_latency_between_segments(self):
        sim = Simulator()
        net = Network(sim, default_link_latency=0.0, switch_latency=0.0)
        net.add_host("a", segment="east")
        net.add_host("b", segment="west")
        net.set_wan_latency("east", "west", 0.040)
        sa = UdpSocket(net.hosts["a"], 1)
        sb = UdpSocket(net.hosts["b"], 1)
        arrival = []
        sb.set_receiver(lambda src, p: arrival.append(sim.now))
        sa.send(Endpoint("b", 1), b"x")
        sim.run()
        assert arrival[0] >= 0.040

    def test_multicast_capability_per_segment(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a", segment="east")
        net.add_host("b", segment="east")
        net.add_host("c", segment="west")
        group = GroupAddress("g", 1)
        net.join(group, "a")
        net.join(group, "b")
        assert net.multicast_capable("a", group)
        net.join(group, "c")
        assert not net.multicast_capable("a", group)

    def test_negative_wan_latency_rejected(self):
        net = Network(Simulator())
        with pytest.raises(ValueError):
            net.set_wan_latency("x", "y", -1.0)


class TestCaptureIntegration:
    def test_capture_records_traffic(self):
        sim = Simulator()
        capture = PacketCapture()
        net = Network(sim, capture=capture)
        net.add_host("a")
        net.add_host("b")
        sa = UdpSocket(net.hosts["a"], 1)
        UdpSocket(net.hosts["b"], 1)
        sa.send(Endpoint("b", 1), b"x" * 100)
        sim.run()
        assert capture.total_packets == 1
        assert capture.total_bytes == 100


class TestUdpSocket:
    def test_double_bind_rejected(self):
        sim = Simulator()
        net = Network(sim)
        host = net.add_host("a")
        UdpSocket(host, 1)
        with pytest.raises(ValueError):
            UdpSocket(host, 1)

    def test_closed_socket_rejects_send_and_ignores_receive(self):
        sim = Simulator()
        net = Network(sim)
        host = net.add_host("a")
        net.add_host("b")
        sock = UdpSocket(host, 1)
        sock.close()
        with pytest.raises(RuntimeError):
            sock.send(Endpoint("b", 1), b"x")
        # port freed: can rebind
        UdpSocket(host, 1)
